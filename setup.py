"""Legacy setup shim: the offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` falls back
to `setup.py develop` via --no-use-pep517."""
from setuptools import setup

setup()
