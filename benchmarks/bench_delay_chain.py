"""E2 -- the companion abstract's Figure 1(c): two-delay-element chain.

A quantity X = 50 transfers through two delay elements to Y via the
published reactions (consuming indicators + dimer accelerator), showing
"the expected alternation of the phases of the transfer, from X to Y
through red, green and blue" and "a very crisp transfer of signal values
across delay elements".
"""

import numpy as np

from repro import simulate
from repro.core.analysis import (effective_series, effective_value,
                                 rise_time, transfer_fidelity)
from repro.core.memory import build_delay_chain
from repro.reporting import markdown_table, plot_series

from common import run_once, save_report

INITIAL = 50.0


def _run():
    network, line, _ = build_delay_chain(n=2, initial=INITIAL)
    trajectory = simulate(network, 40.0, n_samples=1200)
    return line, trajectory


def test_bench_delay_chain_figure(benchmark):
    line, trajectory = run_once(benchmark, _run)

    stages = line.signal_species()
    rows = []
    for name in stages:
        series = effective_series(trajectory, name)
        peak_index = int(np.argmax(series))
        rows.append([name, float(series.max()),
                     float(trajectory.times[peak_index]),
                     float(series[-1])])
    table = markdown_table(["type", "peak quantity", "peak time",
                            "final quantity"], rows)
    figure = plot_series(
        trajectory.times,
        {name: effective_series(trajectory, name)
         for name in ["X", "R_d1", "B_d1", "R_d2", "B_d2", "Y"]},
        title="Delay chain transfer X -> ... -> Y (companion Fig 1c)")
    save_report("E2_delay_chain",
                "E2 -- two-delay-element chain (one-shot transfer)",
                table + "\n\n```\n" + figure + "\n```")

    # Shape assertions from the companion text.
    assert transfer_fidelity(trajectory, "X", "Y") > 0.999
    peaks = [float(np.max(effective_series(trajectory, n)))
             for n in stages]
    assert all(p > 0.8 * INITIAL for p in peaks), "crisp staircase"
    peak_times = [trajectory.times[int(np.argmax(
        effective_series(trajectory, n)))] for n in stages]
    assert all(b > a for a, b in zip(peak_times, peak_times[1:])), \
        "phases alternate in order"
    assert rise_time(trajectory, "Y") < 5.0
