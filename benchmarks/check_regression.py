"""Benchmark regression gate: current results vs committed baselines.

Compares the schema-versioned ``results/<name>.json`` records produced
by a fresh ``--json`` benchmark run against a baseline snapshot (the
committed records, stashed before the run).  Performance metrics may
not be more than ``--threshold`` (default 30%) worse than baseline;
correctness fields are informational only here -- the benchmarks assert
those themselves.

Usage::

    python check_regression.py --baseline DIR [--current DIR]
                               [--threshold 0.3]

Exit status 1 when any watched metric regressed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Watched performance metrics per experiment record.  ``lower`` means
#: smaller is better (wall seconds, solver effort); ``higher`` means
#: larger is better (throughput).
WATCHED = {
    "E1_clock": {"ode_wall_seconds": "lower"},
    "E3_moving_average": {"ode_wall_seconds": "lower"},
    "E14_stochastic": {"events_per_sec": "higher",
                       "ssa_wall_seconds": "lower"},
    "E17_batch": {"events_per_second": "higher"},
    "E15_faults": {"campaign_wall_seconds": "lower"},
    "E16_waves": {"probe_wall_seconds": "lower"},
    "E18_serve": {"jobs_per_second": "higher"},
    "E19_clocking": {"cycles_per_second": "higher"},
}


def _load(path: Path) -> dict | None:
    if not path.is_file():
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare(baseline_dir: Path, current_dir: Path,
            threshold: float) -> list[str]:
    """Regression messages (empty when everything is within bounds)."""
    failures: list[str] = []
    for experiment, metrics in sorted(WATCHED.items()):
        baseline = _load(baseline_dir / f"{experiment}.json")
        current = _load(current_dir / f"{experiment}.json")
        if baseline is None:
            print(f"{experiment}: no baseline record, skipping")
            continue
        if current is None:
            failures.append(f"{experiment}: current record missing "
                            f"(benchmark did not produce JSON)")
            continue
        for key, direction in metrics.items():
            if key not in baseline:
                print(f"{experiment}.{key}: not in baseline, skipping")
                continue
            if key not in current:
                failures.append(f"{experiment}.{key}: missing from "
                                f"current record")
                continue
            old, new = float(baseline[key]), float(current[key])
            if old <= 0.0:
                print(f"{experiment}.{key}: non-positive baseline "
                      f"({old:g}), skipping")
                continue
            ratio = new / old
            worse = ratio > 1.0 + threshold if direction == "lower" \
                else ratio < 1.0 - threshold
            status = "REGRESSED" if worse else "ok"
            print(f"{experiment}.{key}: {old:g} -> {new:g} "
                  f"({ratio:.2f}x, want {direction}) {status}")
            if worse:
                failures.append(
                    f"{experiment}.{key} regressed: {old:g} -> {new:g} "
                    f"({abs(ratio - 1.0):.0%} worse than baseline, "
                    f"threshold {threshold:.0%})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="directory holding baseline *.json records")
    parser.add_argument("--current", type=Path,
                        default=Path(__file__).parent / "results",
                        help="directory holding fresh *.json records")
    parser.add_argument("--threshold", type=float, default=0.3,
                        help="allowed fractional slowdown (default 0.3)")
    args = parser.parse_args(argv)
    failures = compare(args.baseline, args.current, args.threshold)
    if failures:
        print("\n".join(["", "Benchmark regressions detected:"]
                        + [f"  - {message}" for message in failures]))
        return 1
    print("\nNo benchmark regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
