"""Benchmark-harness options (loaded when running ``pytest benchmarks/``).

``--json``
    also write schema-versioned machine-readable records (one
    ``results/<name>.json`` per experiment) next to the markdown
    reports, for trend tracking and CI artifact upload.
``--seed``
    base RNG seed shared by the stochastic experiments; seeded runs are
    reproducible and CI can sweep seeds without editing the benchmarks.
"""

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("repro benchmarks")
    group.addoption("--json", action="store_true", dest="bench_json",
                    default=False,
                    help="write schema-versioned JSON records to "
                         "benchmarks/results/")
    group.addoption("--seed", action="store", dest="bench_seed",
                    type=int, default=0,
                    help="base seed for stochastic benchmarks")


@pytest.fixture
def bench_seed(request) -> int:
    """Base seed from ``--seed`` (default 0)."""
    return request.config.getoption("bench_seed")


@pytest.fixture
def bench_json(request) -> bool:
    """True when ``--json`` record output is requested."""
    return request.config.getoption("bench_json")
