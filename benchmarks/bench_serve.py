"""E18 -- serving-layer throughput and content-addressed cache wins.

The deterministic load generator (:mod:`repro.serve.loadgen`) drives a
:class:`~repro.serve.SimulationService` with a fixed job mix -- ODE
trajectories over the conformance random-network family plus one
sharded SSA sweep -- submitted round-robin so the first pass is all
cold misses and every later pass is all cache hits.  Headline numbers:
jobs/second over the whole run, p50/p99 latency, and the cold-vs-hit
p50 split.

Two properties are *gates*, not observations:

- a cache hit must be at least :data:`HIT_SPEEDUP_FLOOR` times faster
  than the cold computation at p50 (the whole point of
  content-addressing results);
- a duplicate job's response must be **byte-identical across worker
  counts** -- an ensemble computed on a wide pool is the same bytes as
  on a narrow one, so cached results are portable between service
  configurations.
"""

import asyncio

from common import run_once, save_json, save_report
from repro.reporting import markdown_table
from repro.serve import (SimulationService, build_job_mix,
                         canonical_result_bytes, generate_load)

N_DISTINCT = 6
REPEATS = 4
T_FINAL = 4.0
N_SAMPLES = 200
SWEEP_RUNS = 16
SWEEP_T_FINAL = 0.5

#: Conservative floor for the cold-p50 / hit-p50 ratio.  Measured
#: speedups on this mix are orders of magnitude (hits resolve from the
#: store without touching an engine); the floor is the acceptance
#: criterion while the committed record plus check_regression.py's 30%
#: gate track the actual throughput.
HIT_SPEEDUP_FLOOR = 10.0


def _workers_bitwise(base_seed) -> bool:
    """One sharded sweep job, served at two pool widths, same bytes."""
    spec = build_job_mix(
        N_DISTINCT, seed=base_seed, t_final=T_FINAL,
        n_samples=N_SAMPLES, sweep_runs=SWEEP_RUNS,
        sweep_t_final=SWEEP_T_FINAL)[-1]
    assert spec.kind == "sweep"

    async def run_with(n_workers):
        async with SimulationService(n_workers=n_workers) as service:
            return await service.run(spec)
    narrow = asyncio.run(run_with(1))
    wide = asyncio.run(run_with(2))
    return canonical_result_bytes(narrow) == \
        canonical_result_bytes(wide)


def _run(base_seed):
    report = generate_load(
        n_distinct=N_DISTINCT, repeats=REPEATS, seed=base_seed,
        n_workers=2, t_final=T_FINAL, n_samples=N_SAMPLES,
        sweep_runs=SWEEP_RUNS, sweep_t_final=SWEEP_T_FINAL)
    result = report.to_dict()
    result["workers_bitwise"] = _workers_bitwise(base_seed)
    return result


def test_bench_serve(benchmark, bench_seed, bench_json):
    result = run_once(benchmark, lambda: _run(bench_seed))

    body = markdown_table(
        ["metric", "value"],
        [["jobs", f"{result['jobs']}"],
         ["distinct specs", f"{result['distinct']}"],
         ["cache hit rate", f"{result['cache_hit_rate']:.2f}"],
         ["jobs/second", f"{result['jobs_per_second']:,.1f}"],
         ["p50 latency", f"{result['p50_ms']:.3f} ms"],
         ["p99 latency", f"{result['p99_ms']:.3f} ms"],
         ["cold p50", f"{result['cold_p50_ms']:.3f} ms"],
         ["hit p50", f"{result['hit_p50_ms']:.3f} ms"],
         ["hit speedup", f"{result['hit_speedup']:,.0f}x"]])
    body += (f"\n\n{N_DISTINCT} distinct jobs x {REPEATS} passes "
             f"(ODE trajectories t_final={T_FINAL:g} plus one "
             f"{SWEEP_RUNS}-run SSA sweep), 2 ensemble workers.  "
             f"Duplicate-job responses byte-identical across worker "
             f"counts: "
             f"{'OK' if result['workers_bitwise'] else 'FAILED'}.\n")
    save_report("E18_serve",
                "E18 -- serving layer: throughput and cache wins",
                body)
    save_json("E18_serve", result, seed=bench_seed,
              enabled=bench_json)

    assert result["workers_bitwise"]
    assert result["cache_hit_rate"] == (REPEATS - 1) / REPEATS
    assert result["hit_speedup"] >= HIT_SPEEDUP_FLOOR
