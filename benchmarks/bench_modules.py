"""E7 -- combinational module accuracy table.

Every rate-independent module evaluated over an input grid (deterministic
semantics), plus the iterative constructs over integer grids (exact
stochastic semantics).
"""

from fractions import Fraction

from repro import simulate
from repro.crn.network import Network
from repro.crn.simulation.ssa import StochasticSimulator
from repro.core import modules
from repro.core.iterative import (build_log_two, build_multiplier,
                                  build_power_of_two)
from repro.reporting import markdown_table

from common import run_once, save_report


def _ode_cases():
    cases = []
    for a, b in [(9.0, 4.0), (3.0, 11.0)]:
        network = Network()
        modules.add(network, ["A", "B"], "S")
        network.set_initial("A", a)
        network.set_initial("B", b)
        cases.append(("add", f"{a}+{b}", network, "S", a + b))
        network = Network()
        modules.subtract(network, "A", "B", "D")
        network.set_initial("A", a)
        network.set_initial("B", b)
        cases.append(("subtract", f"{a}-{b}", network, "D",
                      max(0.0, a - b)))
        network = Network()
        modules.minimum(network, "A", "B", "M")
        network.set_initial("A", a)
        network.set_initial("B", b)
        cases.append(("min", f"min({a},{b})", network, "M", min(a, b)))
        network = Network()
        modules.maximum(network, "A", "B", "M")
        network.set_initial("A", a)
        network.set_initial("B", b)
        cases.append(("max", f"max({a},{b})", network, "M", max(a, b)))
    for factor, x in [(Fraction(1, 2), 12.0), (Fraction(3, 4), 16.0),
                      (Fraction(5, 2), 6.0)]:
        network = Network()
        modules.scale(network, "A", "Z", factor)
        network.set_initial("A", x)
        cases.append((f"scale {factor}", f"{factor}*{x}", network, "Z",
                      float(factor) * x))
    return cases


def _run():
    rows = []
    for name, case, network, output, expected in _ode_cases():
        measured = simulate(network, 200.0, n_samples=20).final(output)
        rows.append([name, case, expected, measured,
                     abs(measured - expected)])
    for x, y in [(3, 4), (5, 5)]:
        network, z = build_multiplier(x, y)
        measured = StochasticSimulator(network, seed=1).final_counts(
            300.0)[z]
        rows.append(["multiply (SSA)", f"{x}*{y}", x * y, measured,
                     abs(measured - x * y)])
    for x in (3, 5):
        network, z = build_power_of_two(x)
        measured = StochasticSimulator(network, seed=2).final_counts(
            300.0)[z]
        rows.append(["2^x (SSA)", f"2^{x}", 2 ** x, measured,
                     abs(measured - 2 ** x)])
    for x in (8, 13):
        import math

        network, z = build_log_two(x)
        expected = math.ceil(math.log2(x))
        measured = StochasticSimulator(network, seed=3).final_counts(
            500.0)[z]
        rows.append(["ceil log2 (SSA)", f"log2({x})", expected, measured,
                     abs(measured - expected)])
    return rows


def test_bench_module_accuracy_table(benchmark):
    rows = run_once(benchmark, _run)
    save_report("E7_modules", "E7 -- combinational module accuracy",
                markdown_table(["module", "case", "expected", "measured",
                                "|error|"], rows))
    for row in rows:
        name, _, expected, measured, error = row
        if "(SSA)" in name:
            assert error == 0, f"{name} {row}"
        else:
            scale = max(abs(float(expected)), 1.0)
            assert error / scale < 0.03, f"{name} {row}"
