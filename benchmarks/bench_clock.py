"""E1 -- the molecular clock figure.

Regenerates the clock waveform: sustained three-phase oscillation of the
RGB clock types, with measured period, jitter, and amplitude.  Paper
claim: a molecular clock is "reactions that produce sustained oscillations
in the chemical concentrations", with low concentration = logical 0 and
high = logical 1.
"""

import numpy as np

from repro import simulate
from repro.obs import MetricsRegistry
from repro.reporting import markdown_table, plot_trajectory
from repro.scenarios import get_scenario

from common import run_once, save_json, save_metrics, save_report

MASS = 20.0
T_FINAL = 40.0


def _run(metrics=None):
    network, clock, _ = get_scenario("clock").driver(mass=MASS)
    trajectory = simulate(network, T_FINAL, metrics=metrics,
                          n_samples=2000)
    return clock, trajectory


def test_bench_clock_figure(benchmark, bench_json):
    metrics = MetricsRegistry()
    clock, trajectory = run_once(benchmark, lambda: _run(metrics))

    period = clock.period(trajectory)
    jitter = clock.period_jitter(trajectory)
    low, high = clock.amplitude(trajectory)
    rows = [
        ["period (slow time units)", period],
        ["period jitter (relative)", jitter],
        ["amplitude low", low],
        ["amplitude high", high],
        ["high/low logical contrast", high / max(low, 1e-9)],
        ["rotations observed", len(clock.rising_edges(trajectory))],
    ]
    figure = plot_trajectory(
        trajectory.window(0.0, 12.0),
        [clock.red.name, clock.green.name, clock.blue.name],
        title="Molecular clock: C_red / C_green / C_blue")
    save_report("E1_clock", "E1 -- molecular clock oscillation",
                markdown_table(["metric", "value"], rows)
                + "\n\n```\n" + figure + "\n```")
    save_metrics("E1_clock", metrics)
    save_json("E1_clock",
              {"period": period, "jitter": jitter,
               "amplitude": [low, high],
               "rotations": len(clock.rising_edges(trajectory)),
               "ode_nfev": metrics.counter("ode.nfev").value,
               "ode_wall_seconds": metrics.histogram(
                   "ode.wall_seconds").summary().get("sum", 0.0)},
              enabled=bench_json)

    # Shape assertions: sustained, regular, full-swing oscillation.
    assert len(clock.rising_edges(trajectory)) >= 10
    assert jitter < 0.05
    assert high > 0.85 * MASS
    assert low < 0.05 * MASS
