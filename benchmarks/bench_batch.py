"""E17 -- structure-of-arrays ensemble throughput vs the reference SSA.

One seeded ensemble (same network, many independent trials) run two
ways: the production per-trial reference path
(``simulate_mean_chunk``, one scalar Gillespie loop per seed) and the
batched :class:`BatchStochasticSimulator`, which advances every active
trial through one vectorised propensity evaluation per event step and
freezes finished trials behind an active mask.

The workload is a token-rotation ring (constant total propensity, no
absorption), so every trial runs the full horizon and the comparison
measures steady-state event throughput rather than ragged-horizon
bookkeeping.  The headline numbers are events/second for each path and
their ratio -- but the *gate* is exactness: the batch engine must
reproduce the reference realisations bitwise, trial for trial, on the
matched per-trial seeds.
"""

import time

import numpy as np

from repro.crn.network import Network
from repro.crn.simulation.batch import BatchStochasticSimulator
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.sweep import simulate_mean_chunk
from repro.reporting import markdown_table

from common import run_once, save_json, save_report

N_TRIALS = 1024
N_SPECIES = 6
TOKENS_PER_SPECIES = 20
T_FINAL = 8.0
N_SAMPLES = 50
N_SPOT_CHECKS = 3

#: Conservative floor asserted by the benchmark.  Measured speedups on
#: this workload are ~5x (see results/E17_batch.json); the floor leaves
#: headroom for slower CI machines while the committed record plus
#: check_regression.py's 30% gate track the actual throughput.
SPEEDUP_FLOOR = 3.0


def _rotation_network():
    network = Network("rotation")
    names = [f"S{i}" for i in range(N_SPECIES)]
    for i, name in enumerate(names):
        network.add(name, names[(i + 1) % N_SPECIES], 1.0)
        network.set_initial(name, TOKENS_PER_SPECIES)
    return network


def _run(base_seed):
    network = _rotation_network()
    seeds = np.random.SeedSequence(base_seed).spawn(N_TRIALS)
    spec = StochasticSimulator(network)._clone_spec()

    start = time.perf_counter()
    ref_times, ref_sum, ref_events = simulate_mean_chunk(
        (spec, seeds, T_FINAL, N_SAMPLES, {}))
    reference_wall = time.perf_counter() - start

    start = time.perf_counter()
    ensemble = BatchStochasticSimulator(network).simulate_ensemble(
        T_FINAL, seeds=seeds, n_samples=N_SAMPLES)
    batch_wall = time.perf_counter() - start

    batch_events = int(ensemble.events.sum())
    sums_bitwise = (np.array_equal(ensemble.times, ref_times)
                    and np.array_equal(ensemble.summed_states(), ref_sum)
                    and batch_events == ref_events)
    trials_bitwise = True
    for i in range(0, N_TRIALS, N_TRIALS // N_SPOT_CHECKS):
        run = StochasticSimulator(
            network, seed=np.random.default_rng(seeds[i])).simulate(
                T_FINAL, n_samples=N_SAMPLES)
        trial = ensemble.trial(i)
        trials_bitwise &= (np.array_equal(trial.states, run.states)
                           and trial.meta["events"]
                           == run.meta["events"])

    return {
        "trials": N_TRIALS,
        "events": batch_events,
        "reference_wall_seconds": reference_wall,
        "batch_wall_seconds": batch_wall,
        "reference_events_per_second": ref_events / reference_wall,
        "events_per_second": batch_events / batch_wall,
        "speedup": reference_wall / batch_wall,
        "sums_bitwise": sums_bitwise,
        "trials_bitwise": trials_bitwise,
    }


def test_bench_batch_ensemble(benchmark, bench_seed, bench_json):
    result = run_once(benchmark, lambda: _run(bench_seed))

    body = markdown_table(
        ["path", "wall seconds", "events/second"],
        [["reference (per-trial loop)",
          f"{result['reference_wall_seconds']:.3f}",
          f"{result['reference_events_per_second']:,.0f}"],
         ["batch (structure-of-arrays)",
          f"{result['batch_wall_seconds']:.3f}",
          f"{result['events_per_second']:,.0f}"]])
    body += (f"\n\n{result['trials']} trials x rotation ring "
             f"({N_SPECIES} species, {TOKENS_PER_SPECIES} tokens each), "
             f"t_final={T_FINAL:g}, {result['events']:,} events total; "
             f"speedup {result['speedup']:.2f}x.\n\n"
             f"Bitwise equivalence on matched seeds: ensemble sums "
             f"{'OK' if result['sums_bitwise'] else 'FAILED'}, "
             f"spot-checked trials "
             f"{'OK' if result['trials_bitwise'] else 'FAILED'}.\n")
    save_report("E17_batch",
                "E17 -- batched ensemble throughput (SoA vs reference)",
                body)
    save_json("E17_batch", result, seed=bench_seed, enabled=bench_json)

    assert result["sums_bitwise"]
    assert result["trials_bitwise"]
    assert result["speedup"] >= SPEEDUP_FLOOR
