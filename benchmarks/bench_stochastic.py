"""E14 -- discrete (single-molecule) exactness of the machine.

The synthesized moving-average network driven by the exact stochastic
simulator: integer molecule counts, absence = literally zero molecules,
no quantisation step.  Expected shape: outputs match the discrete-time
reference to within a couple of molecules; occasional single-molecule
straggler wedges are recovered by the driver's degradation flush and
cost at most the flushed molecules.

Also the quantified rate-sensitivity claim: every reaction of the
phase-ordered transfer has |d ln(value) / d ln(k)| << 1.
"""

import numpy as np

from repro.core.dfg import SignalFlowGraph
from repro.core.stochastic_machine import StochasticMachine
from repro.crn.simulation.sensitivity import (observable_final,
                                              rate_sensitivities)
from repro.core.memory import build_delay_chain
from repro.reporting import markdown_table

from common import run_once, save_json, save_metrics, save_report

SAMPLES = [40, 80, 20, 60]
N_SEEDS = 4


def _design():
    from fractions import Fraction

    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    return sfg


def _run(base_seed=0, metrics=None):
    rows = []
    for seed in range(base_seed, base_seed + N_SEEDS):
        machine = StochasticMachine(_design(), seed=seed,
                                    metrics=metrics)
        run = machine.run({"x": SAMPLES})
        rows.append([seed,
                     [int(v) for v in run.outputs["y"][:len(SAMPLES)]],
                     [int(v) for v in run.reference["y"]],
                     run.max_error(), machine.flush_events])

    network, _, _ = build_delay_chain(n=1, initial=20.0)
    sensitivities = rate_sensitivities(
        network, observable_final("Y", t_final=30.0))
    return rows, float(np.max(np.abs(sensitivities)))


def test_bench_stochastic_exactness(benchmark, bench_seed, bench_json):
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    rows, worst_sensitivity = run_once(
        benchmark, lambda: _run(bench_seed, metrics))

    body = markdown_table(
        ["seed", "measured y[n]", "reference y[n]", "max |error|",
         "straggler flushes"], rows)
    body += (f"\n\nworst |d ln(Y)/d ln(k)| over all reactions of the "
             f"phase-ordered transfer: {worst_sensitivity:.4f}\n")
    save_report("E14_stochastic",
                "E14 -- single-molecule exactness + rate sensitivity",
                body)
    save_metrics("E14_stochastic", metrics)
    errors = [row[3] for row in rows]
    ssa_events = metrics.counter("ssa.events").value
    ssa_wall = metrics.histogram("ssa.wall_seconds").summary().get(
        "sum", 0.0)
    save_json("E14_stochastic",
              {"max_error": max(errors),
               "exact_runs": sum(1 for e in errors if e == 0.0),
               "worst_sensitivity": worst_sensitivity,
               "ssa_events": ssa_events,
               "ssa_wall_seconds": ssa_wall,
               "events_per_sec": ssa_events / ssa_wall if ssa_wall
               else 0.0},
              seed=bench_seed, enabled=bench_json)

    assert max(errors) <= 4.0
    assert sum(1 for e in errors if e == 0.0) >= N_SEEDS // 2
    assert worst_sensitivity < 0.05
