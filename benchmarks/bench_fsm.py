"""E11 -- sequential digital machines: parity tracker and '101' detector.

General sequential computation beyond DSP: molecular Moore machines
driven by symbol pulses, checked against a pure-Python model on random
words.
"""

import random

from repro.digital import parity_machine, sequence_detector
from repro.reporting import markdown_table

from common import run_once, save_report

WORDS = 6
WORD_LENGTH = 14


def _python_hits(word: str, pattern: str) -> int:
    return sum(1 for i in range(len(word) - len(pattern) + 1)
               if word[i:i + len(pattern)] == pattern)


def _run():
    rng = random.Random(11)
    detector = sequence_detector("101")
    parity = parity_machine()
    rows = []
    for trial in range(WORDS):
        word = "".join(rng.choice("01") for _ in range(WORD_LENGTH))
        detector_run = detector.run(word, seed=trial)
        hits = detector_run.output_counts["hit"][-1]
        expected_hits = _python_hits(word, "101")
        parity_run = parity.run(word, seed=trial)
        expected_parity = "odd" if word.count("1") % 2 else "even"
        rows.append([word, hits, expected_hits,
                     parity_run.trace[-1], expected_parity])
    return rows


def test_bench_fsm_figure(benchmark):
    rows = run_once(benchmark, _run)
    save_report(
        "E11_fsm", "E11 -- molecular finite-state machines",
        markdown_table(["word", "'101' hits", "expected hits",
                        "final parity", "expected parity"], rows))
    for word, hits, expected_hits, parity, expected_parity in rows:
        assert hits == expected_hits, word
        assert parity == expected_parity, word
