"""Ablation -- acceleration/gating modes of the phase protocol.

A reproduction finding documented in :mod:`repro.core.phases`: the
companion's dimer accelerator is ideal for one-shot transfers but fires
through closed gates when products hold standing mass, and removing
acceleration leaves power-law tails.  This ablation measures:

1. one-shot transfer crispness per mode (dimer is the sharpest), and
2. free-running machine viability per gating mode (catalytic gating
   works; the companion-faithful consuming mode wedges within a few
   cycles).
"""

from repro import simulate
from repro.core.analysis import effective_value, rise_time, settling_time
from repro.core.dfg import SignalFlowGraph
from repro.core.machine import SynchronousMachine
from repro.core.memory import build_delay_chain
from repro.errors import SimulationError
from repro.reporting import markdown_table

from common import run_once, save_report


def _one_shot(mode_args):
    network, _, _ = build_delay_chain(n=1, initial=30.0, **mode_args)
    trajectory = simulate(network, 120.0, n_samples=1500)
    arrived = effective_value(trajectory, "Y")
    metrics = {"arrived": arrived}
    if arrived > 15.0:
        metrics["rise"] = rise_time(trajectory, "Y")
        metrics["settle"] = settling_time(trajectory, "Y",
                                          tolerance=0.02)
    return metrics


def _machine_viability(gating):
    sfg = SignalFlowGraph(f"viab_{gating}")
    x = sfg.input("x")
    d = sfg.delay("d", source=x)
    sfg.output("y", d)
    try:
        machine = SynchronousMachine(sfg, gating=gating,
                                     max_cycle_time=150.0)
        run = machine.run({"x": [10.0, 20.0, 15.0, 5.0]})
        return f"ok (err {run.max_error():.3f})"
    except SimulationError:
        return "WEDGED"


def _run():
    one_shot_rows = []
    for label, args in [
            ("consuming + dimer (companion)",
             {"acceleration": "dimer"}),
            ("consuming, no acceleration",
             {"acceleration": "none"}),
            ("catalytic gating",
             {"protocol": None}),
    ]:
        if label.startswith("catalytic"):
            from repro.core.phases import PhaseProtocol

            args = {"protocol": PhaseProtocol(gating="catalytic")}
        metrics = _one_shot(args)
        one_shot_rows.append([label, metrics["arrived"],
                              metrics.get("rise", float("nan")),
                              metrics.get("settle", float("nan"))])

    machine_rows = [[gating, _machine_viability(gating)]
                    for gating in ("catalytic", "consuming")]
    return one_shot_rows, machine_rows


def test_bench_acceleration_ablation(benchmark):
    one_shot_rows, machine_rows = run_once(benchmark, _run)

    body = markdown_table(["protocol", "arrived (of 30)", "10-90% rise",
                           "settling time"], one_shot_rows)
    body += "\n\nFree-running machine viability:\n\n"
    body += markdown_table(["gating", "status"], machine_rows)
    save_report("E13_acceleration",
                "Ablation -- acceleration and gating modes", body)

    dimer, none, catalytic = one_shot_rows
    # Dimer acceleration delivers fully and crisply in one shot.
    assert dimer[1] > 29.9 and dimer[2] < 3.0
    # Without acceleration the transfer is slower / incomplete within the
    # window (power-law tails).
    assert none[1] < dimer[1] or none[3] > dimer[3] * 2
    # Catalytic gating also completes one-shot transfers.
    assert catalytic[1] > 29.0
    # Free-running: catalytic works, consuming wedges.
    status = dict(machine_rows)
    assert status["catalytic"].startswith("ok")
    assert status["consuming"] == "WEDGED"
