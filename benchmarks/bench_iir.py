"""E4 -- recursive (IIR) filters: first-order low-pass and biquad.

Feedback through delay elements is what makes the computation genuinely
sequential: the output of cycle n is an operand of cycle n+1.  Measured
impulse/step responses must match the exact discrete-time reference.
"""

import numpy as np

from repro.apps import biquad, iir_first_order
from repro.core.machine import SynchronousMachine
from repro.reporting import markdown_table, plot_samples

from common import run_once, save_report


def _run():
    iir = SynchronousMachine(iir_first_order())
    impulse_run = iir.run({"x": [16.0, 0.0, 0.0, 0.0, 0.0]})
    step_run = iir.run({"x": [8.0] * 6})

    bq = SynchronousMachine(biquad(0.25, 0.5, 0.25, -0.5, 0.25))
    bq_run = bq.run({"x": [8.0, 0.0, 0.0, 4.0, 0.0, 0.0]})
    return impulse_run, step_run, bq_run


def test_bench_iir_figure(benchmark):
    impulse_run, step_run, bq_run = run_once(benchmark, _run)

    rows = [
        ["iir1 impulse", impulse_run.max_error(),
         impulse_run.rms_error("y")],
        ["iir1 step", step_run.max_error(), step_run.rms_error("y")],
        ["biquad mixed", bq_run.max_error(), bq_run.rms_error("y")],
    ]
    table = markdown_table(["experiment", "max |error|", "rms error"],
                           rows)
    n = len(impulse_run.reference["y"])
    figure = plot_samples(
        {"measured": list(impulse_run.outputs["y"][:n]),
         "reference": list(impulse_run.reference["y"])},
        title="First-order IIR impulse response (geometric decay)")
    save_report("E4_iir", "E4 -- recursive filters", table
                + "\n\n```\n" + figure + "\n```")

    assert impulse_run.max_error() < 0.3
    assert step_run.max_error() < 0.3
    assert bq_run.max_error() < 0.4
    # Geometric decay shape: each impulse-response sample half the last.
    measured = impulse_run.outputs["y"][:4]
    ratios = measured[1:] / np.maximum(measured[:-1], 1e-9)
    assert np.allclose(ratios, 0.5, atol=0.08)
    # Step response converges to DC gain 1 (y -> 8).
    assert step_run.outputs["y"][5] == np.float64(
        step_run.outputs["y"][5])
    assert abs(step_run.outputs["y"][5] - 8.0) < 0.5
