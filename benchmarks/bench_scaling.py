"""E12 -- cost scaling of the synchronous methodology.

Species/reaction counts and simulated cycle time as the design grows:
delay lines of increasing length and FIR filters of increasing order.
Expected shape: network size grows linearly in the number of design
elements (the three shared indicators do NOT multiply), and the cycle
time stays roughly constant -- synchronisation cost is global, not
per-element.
"""

from fractions import Fraction

import numpy as np

from repro.apps import fir
from repro.core.dfg import SignalFlowGraph
from repro.core.machine import SynchronousMachine
from repro.core.synthesis import synthesize
from repro.reporting import markdown_table

from common import run_once, save_report

LINE_LENGTHS = (1, 2, 4, 8, 16)
FIR_ORDERS = (1, 2, 4)


def _delay_line(n):
    sfg = SignalFlowGraph(f"line{n}")
    node = sfg.input("x")
    for i in range(n):
        node = sfg.delay(f"d{i}", source=node)
    sfg.output("y", node)
    return sfg


def _run():
    size_rows = []
    for n in LINE_LENGTHS:
        circuit = synthesize(_delay_line(n))
        size_rows.append([f"delay line {n}",
                          circuit.network.n_species,
                          circuit.network.n_reactions])
    for order in FIR_ORDERS:
        coefficients = [Fraction(1, order + 1)] * (order + 1)
        circuit = synthesize(fir(coefficients))
        size_rows.append([f"FIR order {order}",
                          circuit.network.n_species,
                          circuit.network.n_reactions])

    time_rows = []
    for n in (1, 4):
        machine = SynchronousMachine(_delay_line(n))
        run = machine.run({"x": [10.0, 5.0]}, extra_cycles=n + 1)
        time_rows.append([f"delay line {n}", run.mean_cycle_time,
                          run.max_error()])
    return size_rows, time_rows


def test_bench_scaling_table(benchmark):
    size_rows, time_rows = run_once(benchmark, _run)

    body = markdown_table(["design", "# species", "# reactions"],
                          size_rows)
    body += "\n\n" + markdown_table(
        ["design", "cycle time", "max |error|"], time_rows)
    save_report("E12_scaling", "E12 -- cost scaling", body)

    # Linear growth: fit reactions vs line length, check the residual of
    # a linear model is small and the increments are constant.
    line_rows = size_rows[:len(LINE_LENGTHS)]
    reactions = np.array([row[2] for row in line_rows], dtype=float)
    lengths = np.array(LINE_LENGTHS, dtype=float)
    slope = np.diff(reactions) / np.diff(lengths)
    assert np.allclose(slope, slope[0], rtol=0.05), \
        "reaction count must grow linearly with design size"
    # Cycle time roughly constant across sizes (global synchronisation).
    times = [row[1] for row in time_rows]
    assert max(times) / min(times) < 2.5
    for row in time_rows:
        assert row[2] < 0.3
