"""E9 -- phase-ordered transfers vs the naive rate-dependent chain.

The motivating comparison: a plain transfer cascade (the obvious way to
build a delay line) smears the signal over time, and its timing shifts
under per-reaction rate perturbations; the phase-ordered chain delivers
each hop crisply and its *values* are insensitive to the same
perturbations.
"""

import numpy as np

from repro.baselines import (arrival_spread, arrival_time,
                             build_naive_chain, jitter_sensitivity)
from repro import simulate
from repro.crn.rates import RateScheme, jittered_rates
from repro.core.analysis import effective_series, effective_value
from repro.core.memory import build_delay_chain
from repro.reporting import markdown_table

from common import run_once, save_report

INITIAL = 30.0


def _phased_metrics(rates=None):
    network, _, _ = build_delay_chain(n=2, initial=INITIAL)
    trajectory = simulate(network, 60.0, rates=rates, n_samples=1500)
    series = effective_series(trajectory, "Y")
    final = series[-1]
    t10 = float(np.interp(0.1 * final, series, trajectory.times))
    t90 = float(np.interp(0.9 * final, series, trajectory.times))
    t50 = float(np.interp(0.5 * final, series, trajectory.times))
    return final, t90 - t10, t50


def _run():
    naive = build_naive_chain(n_stages=6, initial=INITIAL)
    naive_spread = arrival_spread(naive, t_final=400.0)
    naive_t50 = arrival_time(naive, t_final=400.0)

    phased_final, phased_spread, phased_t50 = _phased_metrics()

    # Jitter sensitivity of the arrival TIME (both schemes are allowed to
    # speed up/slow down) and of the delivered VALUE.
    rng = np.random.default_rng(1)
    naive_t50s = jitter_sensitivity(
        lambda: build_naive_chain(6, initial=INITIAL),
        lambda network, rates: arrival_time(network, rates=rates,
                                            t_final=400.0),
        n_trials=5, seed=2)

    phased_values = []
    for _ in range(5):
        network, _, _ = build_delay_chain(n=2, initial=INITIAL)
        rates = jittered_rates(network, RateScheme(), rng)
        trajectory = simulate(network, 80.0, rates=rates, n_samples=100)
        phased_values.append(effective_value(trajectory, "Y"))
    phased_values = np.array(phased_values)

    rows = [
        ["naive chain", naive_t50, naive_spread,
         float(naive_t50s.std() / naive_t50s.mean())],
        ["phase-ordered chain", phased_t50, phased_spread,
         float(phased_values.std() / phased_values.mean())],
    ]
    return rows, phased_final, phased_values


def test_bench_naive_baseline_table(benchmark):
    rows, phased_final, phased_values = run_once(benchmark, _run)

    save_report(
        "E9_naive_baseline",
        "E9 -- naive rate-dependent chain vs phase-ordered chain",
        markdown_table(["scheme", "t50 arrival", "10-90% spread",
                        "jitter sensitivity (cv)"], rows)
        + "\n\nnaive cv is of arrival *time*; phased cv is of the "
          "delivered *value*, which is the quantity the paper claims is "
          "rate-independent.\n")

    naive_row, phased_row = rows
    # The phased chain is crisper relative to its own arrival time.
    assert phased_row[2] / phased_row[1] < naive_row[2] / naive_row[1]
    # Phased values insensitive to jitter (<0.5% cv), full delivery.
    assert phased_row[3] < 0.005
    assert abs(phased_final - INITIAL) / INITIAL < 0.01
    assert np.all(np.abs(phased_values - INITIAL) / INITIAL < 0.01)
    # Naive arrival time moves by >5% under the same jitter.
    assert naive_row[3] > 0.05
