"""E6 -- the rate-robustness table (the paper's central claim).

"The computation is exact and independent of the specific reaction
rates ... only that 'fast' reactions are fast relative to 'slow'
reactions."  We stream the same samples through the same IIR design under

1. a sweep of k_fast/k_slow separations, and
2. independent per-reaction rate jitter (x U[0.5, 2)) within categories,

and report the output error against the exact reference.  Expected shape:
errors stay flat and small for separations >= ~100 and grow (or the
machine fails) as the separation collapses toward 1.
"""

import numpy as np

from repro.apps import iir_first_order
from repro.crn.rates import RateScheme, jittered_rates
from repro.crn.simulation import ParallelSweepRunner
from repro.core.machine import SynchronousMachine
from repro.errors import SimulationError
from repro.reporting import markdown_table

from common import run_once, save_report

SAMPLES = [16.0, 0.0, 8.0, 4.0]
SEPARATIONS = (10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0)


def _sweep_case(separation: float) -> list:
    """One separation-sweep row (top-level so process pools can pickle)."""
    scheme = RateScheme.with_separation(separation)
    try:
        machine = SynchronousMachine(iir_first_order(), scheme=scheme,
                                     max_cycle_time=200.0)
        run = machine.run({"x": SAMPLES})
        return [separation, run.max_error(), run.mean_cycle_time, "ok"]
    except SimulationError:
        return [separation, float("nan"), float("nan"),
                "FAILED (separation too small)"]


def _jitter_case(payload: tuple) -> list:
    """One jitter-trial row; the rates were drawn serially so results do
    not depend on worker scheduling."""
    trial, rates = payload
    machine = SynchronousMachine(iir_first_order(), rates=rates)
    run = machine.run({"x": SAMPLES})
    return [trial, run.max_error(), run.mean_cycle_time]


def _run():
    runner = ParallelSweepRunner()
    sweep_rows = runner.map(_sweep_case, list(SEPARATIONS))

    # Draw all jitter vectors from one serial rng stream first (the
    # draws stay identical to the serial implementation), then fan the
    # expensive machine runs out over the pool.
    network = SynchronousMachine(iir_first_order()).network
    rng = np.random.default_rng(0)
    payloads = [(trial, jittered_rates(network, RateScheme(), rng))
                for trial in range(4)]
    jitter_rows = runner.map(_jitter_case, payloads)
    return sweep_rows, jitter_rows


def test_bench_rate_robustness_table(benchmark):
    sweep_rows, jitter_rows = run_once(benchmark, _run)

    body = markdown_table(
        ["k_fast/k_slow", "max |error|", "cycle time", "status"],
        sweep_rows)
    body += "\n\nPer-reaction jitter x U[0.5, 2) at separation 1000:\n\n"
    body += markdown_table(["trial", "max |error|", "cycle time"],
                           jitter_rows)
    save_report("E6_rate_robustness",
                "E6 -- rate robustness (separation sweep + jitter)", body)

    by_sep = {row[0]: row for row in sweep_rows}
    # Values independent of rates for adequate separation:
    for separation in (300.0, 1000.0, 3000.0):
        assert by_sep[separation][3] == "ok"
        assert by_sep[separation][1] < 0.4
    # Errors grow (at least x3) or the machine fails as separation -> 10.
    worst_ok = max(row[1] for row in sweep_rows
                   if row[3] == "ok" and row[0] <= 30.0) \
        if any(row[3] == "ok" and row[0] <= 30.0 for row in sweep_rows) \
        else float("inf")
    best_high = min(row[1] for row in sweep_rows
                    if row[3] == "ok" and row[0] >= 300.0)
    assert worst_ok > 3.0 * best_high or worst_ok == float("inf")
    # Jitter within categories does not move the answers materially.
    errors = [row[1] for row in jitter_rows]
    assert max(errors) < 0.5
