"""E16 -- logic-analyzer layer: probe overhead and cycle profile.

Runs the E3-class moving-average machine twice -- bare, then with a
live :class:`~repro.waves.probe.WaveformProbe` streaming a temporal
assertion -- and records the probe's wall-time overhead alongside the
cycle profile it enables: per-phase settling attribution, the
dead-time fraction (the adaptive-clocking headroom of ROADMAP item 3),
and the critical transfer that sets each cycle's computational length.
Claim under test: full waveform capture plus online assertions cost a
small constant factor, and the profile names ``transfer:blue->red``
(the register write-back) as the critical hand-off.
"""

import time

from repro.apps.filters import moving_average
from repro.core.machine import SynchronousMachine
from repro.waves import (WaveformProbe, build_engine, profile_cycles,
                         render_vcd)

from common import run_once, save_json, save_report

SEED = 0
SAMPLES = [8.0, 4.0, 6.0, 2.0, 6.0, 4.0]
ASSERT_SPECS = [
    {"type": "invariant", "name": "clock-mass-held",
     "expr": "clock_total >= 19.5"},
    {"type": "eventually_within", "name": "register-moves",
     "when": "cycle >= 0", "holds": "reg_d1 > 0", "cycles": 2},
]


def _run_bare():
    machine = SynchronousMachine(moving_average(2))
    return machine.run({"x": SAMPLES})


def _run_probed():
    probe = WaveformProbe(assertions=build_engine(ASSERT_SPECS))
    machine = SynchronousMachine(moving_average(2), probe=probe)
    run = machine.run({"x": SAMPLES})
    return run, probe


def test_bench_waves_probe(benchmark, bench_json):
    start = time.perf_counter()
    _run_bare()
    bare_wall = time.perf_counter() - start

    start = time.perf_counter()
    run, probe = run_once(benchmark, _run_probed)
    probed_wall = time.perf_counter() - start

    profile = profile_cycles(probe.cycle_records)
    violations = probe.finish()
    overhead = probed_wall / bare_wall if bare_wall > 0 else 1.0
    counts = profile.critical_transfer_counts()
    critical = next(iter(counts), "")

    body = profile.render()
    body += (f"\n\nwaveform: {probe.waveform.n_signals} signals, "
             f"{probe.waveform.n_changes} changes, "
             f"{len(render_vcd(probe.waveform))} VCD bytes")
    body += (f"\nassertions: {len(ASSERT_SPECS)} streamed, "
             f"{len(violations)} violation(s)")
    body += (f"\n\nwall time: bare {bare_wall:.3f} s, probed "
             f"{probed_wall:.3f} s ({overhead:.2f}x)")
    save_report("E16_waves",
                "E16 -- waveform probe overhead + cycle profile (ma)",
                body)
    save_json("E16_waves",
              {"n_cycles": profile.n_cycles,
               "dead_time_fraction": profile.dead_time_fraction,
               "critical_transfer": critical,
               "critical_transfer_counts": counts,
               "n_signals": probe.waveform.n_signals,
               "n_changes": probe.waveform.n_changes,
               "n_violations": len(violations),
               "bare_wall_seconds": bare_wall,
               "probe_wall_seconds": probed_wall,
               "probe_overhead_ratio": overhead},
              seed=SEED, enabled=bench_json)

    # The probed run computes the same answer...
    assert run.max_error() < 0.5
    # ...with zero assertion violations on the clean machine...
    assert violations == []
    # ...and the profile names the register write-back as critical.
    assert critical == "transfer:blue->red"
    assert 0.0 < profile.dead_time_fraction < 0.5
    # Waveform capture is a bounded constant factor, not a blow-up.
    assert overhead < 3.0
