"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index): it runs the workload, renders the
rows/series with :mod:`repro.reporting`, writes them under
``benchmarks/results/``, prints them (visible with ``pytest -s``), and
asserts the qualitative *shape* the paper reports.  Timings come from
pytest-benchmark (single round -- these are simulations, not
micro-kernels).
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the ``results/<name>.json`` record schema.
SCHEMA_VERSION = 1


def save_report(name: str, title: str, body: str) -> Path:
    """Write a markdown experiment report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    content = f"# {title}\n\n{body}\n"
    path.write_text(content, encoding="utf-8")
    print(f"\n{content}")
    return path


def save_json(name: str, payload: dict, *, seed: int | None = None,
              enabled: bool = True) -> Path | None:
    """Write a schema-versioned JSON record for one experiment.

    Called with ``enabled=bench_json`` so records only appear under the
    ``--json`` output mode; the record wraps the payload with the schema
    version, experiment name, and (if any) the seed that produced it.
    """
    if not enabled:
        return None
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    record = {"schema": SCHEMA_VERSION, "experiment": name}
    if seed is not None:
        record["seed"] = seed
    record.update(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1, default=float)
        handle.write("\n")
    print(f"wrote {path}")
    return path


def save_metrics(name: str, metrics) -> Path | None:
    """Write a telemetry snapshot next to the experiment's results.

    ``metrics`` is a :class:`repro.obs.MetricsRegistry` (or None); the
    snapshot lands in ``results/<name>.metrics.json`` so solver-effort
    regressions are visible alongside the figures they produced.
    """
    if metrics is None or not getattr(metrics, "enabled", False):
        return None
    RESULTS_DIR.mkdir(exist_ok=True)
    return metrics.write_json(RESULTS_DIR / f"{name}.metrics.json")


def run_once(benchmark, fn):
    """Time one execution of ``fn`` through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
