"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index): it runs the workload, renders the
rows/series with :mod:`repro.reporting`, writes them under
``benchmarks/results/``, prints them (visible with ``pytest -s``), and
asserts the qualitative *shape* the paper reports.  Timings come from
pytest-benchmark (single round -- these are simulations, not
micro-kernels).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, title: str, body: str) -> Path:
    """Write a markdown experiment report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    content = f"# {title}\n\n{body}\n"
    path.write_text(content, encoding="utf-8")
    print(f"\n{content}")
    return path


def run_once(benchmark, fn):
    """Time one execution of ``fn`` through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
