"""E19 -- adaptive clocking: event-driven cycle advance vs fixed boundary.

Runs the E3-class moving-average machine twice over the same input
stream -- once under the fixed clock boundary, once under the adaptive
settling event -- and records the cycle-throughput gain alongside the
digital-equivalence check.  Claim under test: the settling event ends
each cycle earlier than the fixed boundary (shorter simulated cycles,
more cycles per wall-second) while the quantized outputs stay bitwise
identical and analog accuracy does not degrade.
"""

import time

import numpy as np

from repro.apps.filters import moving_average
from repro.core.machine import MachineOptions, SynchronousMachine

from common import run_once, save_json, save_report

SEED = 0
SAMPLES = [8.0, 4.0, 6.0, 2.0, 6.0, 4.0]
#: Built-in designs land on the half-integer lattice; both modes stay
#: well inside the half-step, so rounding recovers exact digits.
LATTICE = 0.5


def _drive(clocking: str):
    machine = SynchronousMachine(
        moving_average(2), options=MachineOptions(clocking=clocking))
    return machine.run({"x": SAMPLES})


def test_bench_clocking(benchmark, bench_json):
    start = time.perf_counter()
    fixed = _drive("fixed")
    fixed_wall = time.perf_counter() - start

    start = time.perf_counter()
    adaptive = run_once(benchmark, lambda: _drive("adaptive"))
    adaptive_wall = time.perf_counter() - start

    stats = {}
    for label, run, wall in (("fixed", fixed, fixed_wall),
                             ("adaptive", adaptive, adaptive_wall)):
        stats[label] = {
            "n_cycles": run.n_cycles,
            "mean_cycle_time": run.mean_cycle_time,
            "wall_seconds": wall,
            "cycles_per_second": run.n_cycles / wall,
            "max_error": run.max_error(),
        }
    speedup = (stats["adaptive"]["cycles_per_second"]
               / stats["fixed"]["cycles_per_second"])

    n = len(fixed.reference["y"])
    fixed_q = np.round(fixed.outputs["y"][:n] / LATTICE)
    adaptive_q = np.round(adaptive.outputs["y"][:n] / LATTICE)
    identical = bool(np.array_equal(fixed_q, adaptive_q))

    lines = [f"{label}: {s['n_cycles']} cycles, mean cycle "
             f"{s['mean_cycle_time']:.4f} t.u., {s['wall_seconds']:.3f} s "
             f"wall ({s['cycles_per_second']:.1f} cycles/s), "
             f"max error {s['max_error']:.4f}"
             for label, s in stats.items()]
    lines.append(f"\nadaptive throughput: {speedup:.2f}x fixed; "
                 f"quantized outputs identical: {identical}")
    save_report("E19_clocking",
                "E19 -- adaptive vs fixed clocking (ma machine)",
                "\n".join(lines))
    save_json("E19_clocking",
              {"fixed": stats["fixed"], "adaptive": stats["adaptive"],
               "cycles_per_second": stats["adaptive"]["cycles_per_second"],
               "throughput_ratio": speedup,
               "quantized_identical": identical},
              seed=SEED, enabled=bench_json)

    # Digital equivalence is the gate for everything else.
    assert identical
    # The settling event must actually end cycles earlier...
    assert stats["adaptive"]["mean_cycle_time"] \
        < stats["fixed"]["mean_cycle_time"]
    # ...without hurting analog accuracy.
    assert stats["adaptive"]["max_error"] \
        <= stats["fixed"]["max_error"] + 1e-6
