"""E8 -- synchronous (clocked) vs asynchronous (self-timed) comparison.

The DAC paper advocates the clocked approach; the companion abstract
develops the self-timed alternative.  We move the same sample stream
through two-element pipelines of both kinds and compare fidelity and
timing.  Expected shape: both deliver the values; the synchronous machine
has a constant cycle time set by the clock, while the self-timed pipeline
is data-driven (and, in the companion-faithful consuming mode, its
per-sample latency is throughput-capped by indicator generation, making
it slower than both the catalytic variant and the clocked machine).
"""

import numpy as np

from repro.asynchronous import SelfTimedPipeline
from repro.core.dfg import SignalFlowGraph
from repro.core.machine import SynchronousMachine
from repro.reporting import markdown_table

from common import run_once, save_report

SAMPLES = [20.0, 10.0, 30.0]


def _sync_design():
    sfg = SignalFlowGraph("pipe2")
    x = sfg.input("x")
    d1 = sfg.delay("d1", source=x)
    d2 = sfg.delay("d2", source=d1)
    sfg.output("y", d2)
    return sfg


def _run():
    machine = SynchronousMachine(_sync_design())
    sync_run = machine.run({"x": SAMPLES}, extra_cycles=3)

    rows = [["synchronous (clocked)",
             float(np.max(np.abs(sync_run.outputs["y"][:3]
                                 - sync_run.reference["y"][:3]))),
             sync_run.mean_cycle_time,
             3 * sync_run.mean_cycle_time]]
    for gating in ("consuming", "catalytic"):
        pipeline = SelfTimedPipeline(n=2, gating=gating)
        run = pipeline.run(SAMPLES)
        rows.append([f"self-timed ({gating})", run.max_error(),
                     float("nan"), run.mean_latency])
    return sync_run, rows


def test_bench_sync_vs_async_table(benchmark):
    sync_run, rows = run_once(benchmark, _run)

    save_report(
        "E8_sync_vs_async",
        "E8 -- synchronous vs self-timed pipelines (2 delay elements)",
        markdown_table(["scheme", "max |error|", "cycle time",
                        "per-sample latency"], rows))

    sync_error, consuming, catalytic = rows[0][1], rows[1], rows[2]
    assert sync_error < 0.3
    assert consuming[1] < 1.5 and catalytic[1] < 1.5
    # The consuming-mode handshake is the slowest (throughput capped by
    # indicator generation); catalytic self-timing is faster.
    assert consuming[3] > catalytic[3]
