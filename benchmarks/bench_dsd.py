"""E10 -- DNA strand displacement chassis fidelity.

The paper proposes DNA strand displacement as the experimental chassis.
We compile a delay-element transfer to the buffered DSD implementation
and sweep the fuel concentration C_max: fidelity must approach the ideal
CRN as C_max grows, while fuel depletion (the realistic finite resource)
shrinks.
"""

from repro import SimulationOptions, simulate
from repro.core.analysis import effective_value
from repro.core.memory import build_delay_chain
from repro.dsd import compile_network
from repro.reporting import markdown_table

from common import run_once, save_report

INITIAL = 20.0
C_MAX_SWEEP = (1_000.0, 10_000.0, 30_000.0)


def _run():
    network, _, _ = build_delay_chain(n=1, initial=INITIAL)
    ideal = effective_value(
        simulate(network, 25.0, n_samples=30), "Y")
    rows = []
    inventory = None
    stiff = SimulationOptions(solver="BDF", rtol=1e-5, atol=1e-8,
                              n_samples=30)
    for c_max in C_MAX_SWEEP:
        compilation = compile_network(network, c_max=c_max)
        trajectory = simulate(compilation.network, 25.0, options=stiff)
        measured = effective_value(trajectory, "Y")
        rows.append([c_max, ideal, measured,
                     abs(measured - ideal) / ideal,
                     compilation.fuel_depletion(trajectory),
                     compilation.network.n_reactions])
        inventory = compilation.inventory
    return rows, inventory


def test_bench_dsd_table(benchmark):
    rows, inventory = run_once(benchmark, _run)

    save_report(
        "E10_dsd",
        "E10 -- strand-displacement implementation fidelity vs C_max",
        markdown_table(["C_max", "ideal Y", "measured Y", "rel error",
                        "fuel depletion", "# reactions"], rows)
        + f"\n\nstructural inventory: {inventory.summary()}\n")

    # Fidelity within a few percent at every buffer level, and fuel
    # depletion strictly decreasing with C_max.
    for row in rows:
        assert row[3] < 0.05
    depletions = [row[4] for row in rows]
    assert depletions[0] > depletions[1] > depletions[2]
    assert inventory.n_distinct_strands > 10
