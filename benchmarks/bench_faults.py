"""E15 -- fault-injection robustness campaign on the ripple counter.

Monte Carlo campaign over the counter's default fault suite (rate
mismatch, leaks, dilution, copy-number noise) plus a robustness-margin
bisection along the fast/slow separation axis.  Paper claim under test:
the synchronous methodology's only quantitative premise is that fast
reactions are fast *relative to* slow ones, so a correctly synthesized
circuit should absorb substantial parameter abuse at nominal separation
and fail only when the separation itself is compressed away -- and then
with a diagnosable signature (residual transfer mass at readout,
REPRO-R104), not silent corruption.
"""

import time

import numpy as np

from repro.faults import RobustnessCampaign, default_suite

from common import run_once, save_json, save_report

SEED = 0
TRIALS = 6
MARGIN_TRIALS = 2


def _run():
    campaign = RobustnessCampaign(circuit="counter", trials=TRIALS,
                                  seed=SEED, n_workers=1,
                                  margin_trials=MARGIN_TRIALS)
    start = time.perf_counter()
    result = campaign.run()
    wall = time.perf_counter() - start
    return result, wall


def test_bench_faults_campaign(benchmark, bench_json):
    result, wall = run_once(benchmark, _run)

    margin = result.margin
    suite = default_suite("counter")
    body = result.render()
    body += "\n\nfault suite: " + ", ".join(
        repr(model) for model in suite)
    body += (f"\n\ncampaign wall time: {wall:.2f} s "
             f"({TRIALS} trials/model, seed {SEED})")
    save_report("E15_faults",
                "E15 -- robustness campaign + separation margin (counter)",
                body)
    save_json("E15_faults",
              {"trials_per_model": TRIALS,
               "n_trials": len(result.trials),
               "n_models": len(result.stats),
               "failures": result.failures,
               "bit_errors": result.bit_errors,
               "margin_separation": margin.margin if margin else None,
               "margin_failed_at": (margin.failed_at
                                    if margin and
                                    np.isfinite(margin.failed_at)
                                    else None),
               "margin_classification": (margin.classification
                                         if margin else None),
               "margin_evaluations": (margin.n_evaluations
                                      if margin else 0),
               "campaign_wall_seconds": wall},
              seed=SEED, enabled=bench_json)

    # Baseline + every fault model compute perfectly at nominal
    # separation: the methodology absorbs the whole default suite.
    assert result.failures == 0
    assert result.bit_errors == 0
    # The separation margin is finite (the counter does break when
    # fast/slow is compressed far enough) and the dominant failure mode
    # is the paper's predicted one: unfinished carries at readout time.
    assert margin is not None
    assert np.isfinite(margin.margin)
    assert 2.0 < margin.margin < 1000.0
    assert margin.classification == "REPRO-R104"
