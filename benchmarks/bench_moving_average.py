"""E3 -- the moving-average filter figure.

The paper's flagship synchronous example: a two-tap moving average
``y[n] = (x[n] + x[n-1]) / 2`` realised as a clocked reaction network,
streamed with a step and a sampled tone, compared point by point against
the exact discrete-time reference.
"""

import numpy as np

from repro.apps import tone
from repro.obs import MetricsRegistry
from repro.reporting import markdown_table, plot_samples
from repro.scenarios import get_scenario

from common import run_once, save_json, save_metrics, save_report


def _run(metrics=None):
    machine = get_scenario("ma").driver(taps=2, metrics=metrics)
    step = [0.0, 0.0, 20.0, 20.0, 20.0, 20.0]
    step_run = machine.run({"x": step})
    wave = [round(v, 1) for v in tone(10, period=5, amplitude=8.0)]
    tone_run = machine.run({"x": wave})
    return step, step_run, wave, tone_run


def test_bench_moving_average_figure(benchmark, bench_json):
    metrics = MetricsRegistry()
    step, step_run, wave, tone_run = run_once(
        benchmark, lambda: _run(metrics))
    del step

    rows = []
    for label, run in (("step", step_run), ("tone", tone_run)):
        rows.append([label, run.max_error(), run.rms_error("y"),
                     run.mean_cycle_time])
    table = markdown_table(
        ["input", "max |error|", "rms error", "cycle time"], rows)
    figure = plot_samples(
        {"x[n]": wave,
         "measured y[n]": list(tone_run.outputs["y"][:len(wave)]),
         "reference y[n]": list(tone_run.reference["y"])},
        title="Two-tap moving average: molecular vs reference")
    save_report("E3_moving_average",
                "E3 -- moving-average filter tracking",
                table + "\n\n```\n" + figure + "\n```")
    save_metrics("E3_moving_average", metrics)
    save_json("E3_moving_average",
              {"step_max_error": step_run.max_error(),
               "tone_max_error": tone_run.max_error(),
               "mean_cycle_time": tone_run.mean_cycle_time,
               "cycles": int(metrics.counter("machine.cycles").value),
               "ode_nfev": metrics.counter("ode.nfev").value,
               "ode_wall_seconds": metrics.histogram(
                   "ode.wall_seconds").summary().get("sum", 0.0)},
              enabled=bench_json)

    assert step_run.max_error() < 0.3
    assert tone_run.max_error() < 0.3
    # The filter must actually smooth: measured output swing below the
    # input swing at this tone frequency.
    measured = tone_run.outputs["y"][2:len(wave)]
    assert (measured.max() - measured.min()) < \
        (max(wave) - min(wave)) * 0.95
