"""E5 -- the molecular binary counter figure.

A 3-bit ripple counter driven by increment pulses: the state sequence
must be 0,1,2,...,7,0,... with the wrap observable in the overflow
accumulator.  Run under the exact stochastic semantics (single-molecule
digital logic).
"""

from repro.reporting import markdown_table, plot_samples
from repro.scenarios import get_scenario

from common import run_once, save_report

N_PULSES = 20


def _run():
    counter = get_scenario("counter").driver(bits=3)
    return counter.count(N_PULSES, seed=0)


def test_bench_counter_figure(benchmark):
    run = run_once(benchmark, _run)

    rows = [[i, value, i % 8] for i, value in enumerate(run.values)]
    table = markdown_table(["pulse #", "counter value", "expected"], rows)
    figure = plot_samples({"counter": run.values},
                          title="3-bit molecular binary counter")
    save_report("E5_counter", "E5 -- binary counter", table
                + f"\n\noverflow events: {run.overflow}\n\n```\n"
                + figure + "\n```")

    run.check(8)
    assert run.overflow == N_PULSES // 8
