"""Tests for the tracer, its sinks, and the zero-overhead null path."""

import json
import tracemalloc

import pytest

from repro.obs import (NULL_TRACER, ChromeTraceSink, CycleSpan, JsonlSink,
                       MemorySink, MetricsRegistry, SpanRecord,
                       TraceWriteError, Tracer, chrome_events,
                       ensure_tracer)


class TestMemorySink:
    def test_round_trip(self):
        tracer = Tracer(MemorySink())
        tracer.emit_span("cycle", "machine", 0.0, 2.0, {"cycle": 0})
        tracer.emit_event("boundary", "machine", 2.0, {"cycle": 0})
        tracer.emit_cycle(CycleSpan(1, 2.0, 4.0, wall=0.5))
        dicts = tracer.sink.dicts()
        assert [d["type"] for d in dicts] == ["span", "event", "span"]
        assert dicts[0]["name"] == "cycle"
        assert dicts[2]["args"] == {"cycle": 1, "wall": 0.5}

    def test_metrics_snapshot_embedded(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.inc("ode.nfev", 7)
        tracer.emit_metrics(metrics)
        [record] = tracer.sink.dicts()
        assert record["type"] == "metrics"
        assert record["values"]["counters"]["ode.nfev"] == 7

    def test_context_manager_closes_sink(self):
        sink = MemorySink()
        with Tracer(sink):
            pass
        assert sink.closed


class TestJsonlSink:
    def test_one_valid_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit_span("cycle", "machine", 0.0, 1.5)
            tracer.emit_event("boundary", "machine", 1.5)
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["span", "event"]
        assert records[0]["t1"] == 1.5

    def test_unwritable_path_fails_eagerly(self, tmp_path):
        with pytest.raises(TraceWriteError, match="cannot write"):
            JsonlSink(tmp_path / "no-such-dir" / "t.jsonl")


class TestChromeTraceSink:
    def test_writes_loadable_trace_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        with Tracer(ChromeTraceSink(path)) as tracer:
            tracer.emit_span("cycle", "machine", 0.0, 3.0, {"cycle": 0})
            tracer.emit_span("phase:red", "protocol", 0.0, 1.0)
            tracer.emit_event("boundary", "machine", 3.0)
        events = json.loads(path.read_text())
        kinds = {event["ph"] for event in events}
        assert {"M", "X", "i"} <= kinds
        complete = [e for e in events if e["ph"] == "X"]
        # Protocol spans share one lane so complete events nest.
        assert {e["tid"] for e in complete} == {1}

    def test_unwritable_path_fails_eagerly(self, tmp_path):
        with pytest.raises(TraceWriteError, match="cannot write"):
            ChromeTraceSink(tmp_path / "no-such-dir" / "t.json")

    def test_chrome_events_lanes_and_scale(self):
        records = [
            {"type": "span", "name": "cycle", "cat": "machine",
             "t0": 0.0, "t1": 2.0},
            {"type": "span", "name": "ode.solve", "cat": "solver",
             "t0": 0.0, "t1": 2.0},
            {"type": "diag", "code": "REPRO-R101", "t": 2.0,
             "message": "overlap"},
            {"type": "metrics", "values": {}},
        ]
        events = chrome_events(records)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["tid"] == 1 and spans[1]["tid"] == 2
        assert spans[0]["dur"] == pytest.approx(2000.0)
        # Diagnostics land in the monitor lane; metrics are not timeline.
        diag = [e for e in events if e["ph"] == "i"]
        assert diag[0]["name"] == "REPRO-R101" and diag[0]["tid"] == 3
        assert all(e["ph"] in ("M", "X", "i") for e in events)


class TestSpanNesting:
    def test_contains(self):
        cycle = SpanRecord("cycle", "machine", 0.0, 3.0)
        phase = SpanRecord("phase:red", "protocol", 0.0, 1.0)
        transfer = SpanRecord("transfer:red->green", "protocol", 0.2, 0.9)
        assert cycle.contains(phase)
        assert phase.contains(transfer)
        assert not transfer.contains(phase)


class TestNullTracer:
    def test_ensure_tracer_defaults_to_null(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_no_allocation_when_disabled(self):
        """The disabled hot path must not allocate record objects."""
        tracer = NULL_TRACER
        span = CycleSpan(0, 0.0, 1.0)
        args = {"cycle": 0}

        def hot_loop():
            for _ in range(1000):
                if tracer.enabled:
                    tracer.emit_span("cycle", "machine", 0.0, 1.0, args)
                    tracer.emit_cycle(span)
                    tracer.emit_event("boundary", "machine", 1.0)

        hot_loop()  # warm up bytecode/caches before measuring
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            hot_loop()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0
