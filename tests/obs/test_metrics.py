"""Tests for the metrics registry and its null counterpart."""

import json
import tracemalloc

import pytest

from repro.errors import ReproError
from repro.obs import NULL_METRICS, MetricsRegistry, ensure_metrics
from repro.obs.metrics import METRICS_SCHEMA_VERSION


class TestInstruments:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("ode.nfev", 10)
        metrics.inc("ode.nfev", 5)
        assert metrics.counter("ode.nfev").value == 15

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("monitor.clock_jitter", 0.01)
        metrics.set_gauge("monitor.clock_jitter", 0.02)
        assert metrics.gauge("monitor.clock_jitter").value == 0.02

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("machine.cycle_sim_time", float(value))
        summary = metrics.histogram("machine.cycle_sim_time").summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p90"] == pytest.approx(90.1)

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("x").summary() == {"count": 0}


class TestSnapshot:
    def test_to_dict_schema(self):
        metrics = MetricsRegistry()
        metrics.inc("machine.cycles")
        metrics.set_gauge("g", 1.5)
        metrics.observe("h", 2.0)
        snapshot = metrics.to_dict()
        assert snapshot["schema"] == METRICS_SCHEMA_VERSION
        assert snapshot["counters"] == {"machine.cycles": 1.0}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_write_json(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.inc("ssa.events", 42)
        path = metrics.write_json(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["counters"]["ssa.events"] == 42

    def test_write_json_unwritable(self, tmp_path):
        with pytest.raises(ReproError, match="cannot write"):
            MetricsRegistry().write_json(tmp_path / "missing" / "m.json")


class TestNullMetrics:
    def test_ensure_metrics_defaults_to_null(self):
        assert ensure_metrics(None) is NULL_METRICS
        metrics = MetricsRegistry()
        assert ensure_metrics(metrics) is metrics

    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_no_allocation_when_disabled(self):
        metrics = NULL_METRICS

        def hot_loop():
            for _ in range(1000):
                if metrics.enabled:
                    metrics.inc("machine.cycles")
                metrics.observe("noop", 1.0)
                metrics.counter("noop").inc()

        hot_loop()
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            hot_loop()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0
