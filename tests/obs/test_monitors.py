"""Tests for the protocol health monitors (REPRO-R*** diagnostics)."""

import numpy as np
import pytest

from repro.baselines import build_naive_chain
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.result import Trajectory
from repro.obs import (CycleSpan, MemorySink, MonitorConfig,
                       ProtocolMonitor, ProtocolView, Tracer,
                       check_phase_overlap, indicator_contrast,
                       phase_overlap, stage_color_groups)


def _trajectory(times, columns):
    names = list(columns)
    states = np.stack([np.asarray(columns[name], dtype=float)
                       for name in names], axis=1)
    return Trajectory(np.asarray(times, dtype=float), states, names)


class TestPhaseOverlap:
    def test_sequential_drains_score_zero(self):
        """One colour draining at a time is exactly the phased shape."""
        times = np.linspace(0.0, 3.0, 31)
        red = np.where(times < 1.0, 10.0 * (1.0 - times), 0.0)
        green = np.where((times >= 1.0) & (times < 2.0),
                         10.0 * (2.0 - times), np.where(times < 1.0,
                                                        10.0, 0.0))
        blue = np.where(times >= 2.0, 10.0 * (3.0 - times), 10.0)
        trajectory = _trajectory(times, {"r": red, "g": green, "b": blue})
        mean, peak = phase_overlap(
            trajectory, {"red": ["r"], "green": ["g"], "blue": ["b"]})
        assert mean == pytest.approx(0.0, abs=1e-9)
        assert peak == pytest.approx(0.0, abs=1e-9)

    def test_concurrent_drains_score_high(self):
        """All colours draining together is the unphased signature."""
        times = np.linspace(0.0, 3.0, 31)
        falling = 10.0 * (1.0 - times / 3.0)
        trajectory = _trajectory(
            times, {"r": falling, "g": falling, "b": falling})
        mean, peak = phase_overlap(
            trajectory, {"red": ["r"], "green": ["g"], "blue": ["b"]})
        # Three equal drains: dominant share 1/3, overlap 2/3.
        assert mean == pytest.approx(2.0 / 3.0, abs=1e-6)
        assert peak == pytest.approx(2.0 / 3.0, abs=1e-6)

    def test_holding_mass_is_not_overlap(self):
        """Colours may *hold* mass concurrently without penalty."""
        times = np.linspace(0.0, 1.0, 11)
        trajectory = _trajectory(
            times, {"r": 10.0 * (1.0 - times),
                    "g": np.full_like(times, 20.0),
                    "b": np.full_like(times, 20.0)})
        mean, _ = phase_overlap(
            trajectory, {"red": ["r"], "green": ["g"], "blue": ["b"]})
        assert mean == pytest.approx(0.0, abs=1e-9)

    def test_stage_color_groups_rotation(self):
        groups = stage_color_groups(["X", "S_1", "S_2", "S_3"])
        assert groups == {"red": ["X", "S_3"], "green": ["S_1"],
                          "blue": ["S_2"]}


class TestIndicatorContrast:
    def test_crisp_indicator(self):
        times = np.linspace(0.0, 1.0, 100)
        series = np.where(times < 0.5, 1e-4, 10.0)
        trajectory = _trajectory(times, {"A_red": series})
        assert indicator_contrast(trajectory, "A_red") > 1e4

    def test_mushy_indicator(self):
        times = np.linspace(0.0, 1.0, 100)
        trajectory = _trajectory(
            times, {"A_red": 5.0 + 0.5 * np.sin(times)})
        assert indicator_contrast(trajectory, "A_red") < 2.0


class TestProtocolMonitor:
    VIEW = ProtocolView(
        color_groups={"red": ["r"], "green": ["g"], "blue": ["b"]},
        indicator_names={}, drained_color="blue", clock_mass=20.0)

    def _segment(self, t0, t1, blue_final=0.0):
        times = np.linspace(t0, t1, 20)
        ramp = (times - t0) / (t1 - t0)
        return _trajectory(times, {
            "r": 10.0 * ramp,
            "g": np.zeros_like(times),
            "b": 10.0 - (10.0 - blue_final) * ramp})

    def test_healthy_cycles_produce_no_diagnostics(self):
        monitor = ProtocolMonitor(self.VIEW)
        for i in range(4):
            segment = self._segment(2.0 * i, 2.0 * (i + 1))
            monitor.observe_cycle(CycleSpan(i, 2.0 * i, 2.0 * (i + 1)),
                                  segment, clock_total=20.0)
        assert monitor.finish() == []

    def test_boundary_residual_fires_r104(self):
        monitor = ProtocolMonitor(self.VIEW)
        segment = self._segment(0.0, 2.0, blue_final=3.0)
        monitor.observe_cycle(CycleSpan(0, 0.0, 2.0), segment)
        codes = [d.code for d in monitor.finish()]
        assert "REPRO-R104" in codes

    def test_conservation_drift_fires_r105(self):
        monitor = ProtocolMonitor(self.VIEW)
        segment = self._segment(0.0, 2.0)
        monitor.observe_cycle(CycleSpan(0, 0.0, 2.0), segment,
                              clock_total=18.0)  # 10% off nominal 20
        codes = [d.code for d in monitor.finish()]
        assert "REPRO-R105" in codes

    def test_jittery_periods_fire_r102(self):
        monitor = ProtocolMonitor(self.VIEW)
        t = 0.0
        for i, period in enumerate([1.0, 3.0, 1.0, 3.0]):
            monitor.observe_cycle(CycleSpan(i, t, t + period),
                                  self._segment(t, t + period))
            t += period
        codes = [d.code for d in monitor.finish()]
        assert "REPRO-R102" in codes
        # finish() is idempotent: no duplicate findings on re-entry.
        assert codes == [d.code for d in monitor.finish()]

    def test_diagnostics_mirrored_into_tracer(self):
        tracer = Tracer(MemorySink())
        monitor = ProtocolMonitor(self.VIEW, tracer=tracer)
        segment = self._segment(0.0, 2.0, blue_final=3.0)
        monitor.observe_cycle(CycleSpan(0, 0.0, 2.0), segment)
        dicts = tracer.sink.dicts()
        assert any(d.get("code") == "REPRO-R104" for d in dicts)
        # Health metrics ride along as monitor events for `repro report`.
        assert any(d.get("name") == "monitor.phase_overlap"
                   for d in dicts)

    def test_empty_cycles_are_skipped(self):
        monitor = ProtocolMonitor(self.VIEW,
                                  MonitorConfig(min_signal_mass=1.0))
        times = np.linspace(0.0, 2.0, 20)
        noise = np.full_like(times, 1e-3)
        segment = _trajectory(times, {"r": noise, "g": noise, "b": noise})
        monitor.observe_cycle(CycleSpan(0, 0.0, 2.0), segment)
        assert monitor.finish() == []


class TestNaiveVsPhasedAcceptance:
    """The headline acceptance claim: the rate-dependent baseline
    triggers the phase-overlap diagnostic; the synchronous design,
    on the same check, does not."""

    def test_naive_chain_fires_r101(self):
        network = build_naive_chain(n_stages=6, initial=30.0)
        trajectory = OdeSimulator(network).simulate(30.0, n_samples=600)
        stages = [name for name in trajectory.names if name != "Y"]
        findings = check_phase_overlap(
            trajectory, stage_color_groups(stages), subject=network.name)
        assert [d.code for d in findings] == ["REPRO-R101"]
        assert findings[0].value > findings[0].threshold
        assert findings[0].subject == network.name

    def test_synchronous_machine_does_not_fire_r101(self):
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph
        from repro.core.machine import SynchronousMachine
        from repro.obs import MetricsRegistry

        sfg = SignalFlowGraph("ma2")
        x = sfg.input("x")
        d = sfg.delay("d1", source=x)
        sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                                sfg.gain(Fraction(1, 2), d)))
        # Passing a registry switches the protocol monitor on.
        machine = SynchronousMachine(sfg, metrics=MetricsRegistry())
        run = machine.run({"x": [10.0, 20.0]})
        assert not any(d.code == "REPRO-R101" for d in run.diagnostics)
