"""Tests for the trace summariser behind ``python -m repro report``."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.report import load_records, summarize, write_chrome

TRACE = [
    {"type": "span", "name": "cycle", "cat": "machine",
     "t0": 0.0, "t1": 2.0, "args": {"cycle": 0, "wall": 0.1}},
    {"type": "span", "name": "cycle", "cat": "machine",
     "t0": 2.0, "t1": 4.0, "args": {"cycle": 1, "wall": 0.1}},
    {"type": "span", "name": "cycle", "cat": "machine",
     "t0": 4.0, "t1": 6.1, "args": {"cycle": 2, "wall": 0.1}},
    {"type": "span", "name": "phase:red", "cat": "protocol",
     "t0": 0.0, "t1": 0.7},
    {"type": "span", "name": "phase:green", "cat": "protocol",
     "t0": 0.7, "t1": 1.4},
    {"type": "span", "name": "phase:blue", "cat": "protocol",
     "t0": 1.4, "t1": 2.0},
    {"type": "span", "name": "transfer:red->green", "cat": "protocol",
     "t0": 0.1, "t1": 0.6, "args": {"cycle": 0, "quantity": 10.0}},
    {"type": "span", "name": "ode.solve", "cat": "solver",
     "t0": 0.0, "t1": 2.0, "args": {"nfev": 500, "njev": 40,
                                    "wall": 0.05}},
    {"type": "event", "name": "monitor.phase_overlap", "cat": "monitor",
     "t": 2.0, "args": {"cycle": 0, "value": 0.01, "peak": 0.05}},
    {"type": "event", "name": "monitor.boundary_residual",
     "cat": "monitor", "t": 2.0, "args": {"cycle": 0, "value": 0.002}},
    {"type": "event", "name": "monitor.clock_jitter", "cat": "monitor",
     "t": 6.1, "args": {"value": 0.019, "cycles": 3}},
    {"type": "diag", "code": "REPRO-R104", "severity": "warning",
     "message": "residual signal", "t": 2.0, "cycle": 0},
    {"type": "metrics",
     "values": {"counters": {"ode.nfev": 500.0,
                             "ssa.firings[X -> Y]": 90.0,
                             "ssa.firings[Y -> Z]": 10.0}}},
]


class TestLoadRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in TRACE))
        assert load_records(path) == TRACE

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_records(tmp_path / "absent.jsonl")

    def test_bad_line_reports_position(self, tmp_path):
        # Mid-file corruption raises; only a *final* bad line is
        # tolerated as truncation (see TestTruncatedTail).
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"}\nnot json\n'
                        '{"type": "event"}\n')
        with pytest.raises(ReproError, match="trace.jsonl:2"):
            load_records(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n")
        with pytest.raises(ReproError, match="empty"):
            load_records(path)


class TestSummarize:
    def test_sections_present(self):
        text = summarize(TRACE)
        assert "records" in text
        assert "cycles" in text
        assert "mean period" in text and "2.0333" in text
        assert "clock jitter" in text
        assert "phase share" in text
        assert "phase overlap" in text
        assert "boundary residual" in text
        assert "solver effort" in text
        assert "500 RHS evaluations" in text
        assert "busiest SSA channels" in text
        assert "REPRO-R104" in text

    def test_no_diagnostics_says_none(self):
        text = summarize([r for r in TRACE if r.get("type") != "diag"])
        assert "diagnostics\n  none" in text


class TestWriteChrome:
    def test_export(self, tmp_path):
        path = write_chrome(TRACE, tmp_path / "chrome.json")
        events = json.loads(path.read_text())
        names = {e["name"] for e in events}
        assert "cycle" in names and "transfer:red->green" in names

    def test_unwritable(self, tmp_path):
        with pytest.raises(ReproError, match="cannot write"):
            write_chrome(TRACE, tmp_path / "missing" / "chrome.json")


class TestTruncatedTail:
    def test_truncated_final_line_warns_and_keeps_prefix(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "cycle", "cat": "m", '
                        '"t0": 0.0, "t1": 1.0}\n'
                        '{"type": "event", "na')
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            records = load_records(path)
        assert len(records) == 1
        assert records[0]["type"] == "span"

    def test_warning_names_file_and_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"}\n{"broken')
        with pytest.warns(RuntimeWarning, match=r"trace\.jsonl:2"):
            load_records(path)

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"}\nnot json\n{"type": "event"}\n')
        with pytest.raises(ReproError, match="trace.jsonl:2"):
            load_records(path)

    def test_only_line_truncated_is_empty_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "sp')
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ReproError, match="empty"):
                load_records(path)


class TestSummarizeEdgeCases:
    def test_metrics_only_trace(self):
        text = summarize([{"type": "metrics",
                           "values": {"counters": {"ode.nfev": 12.0}}}])
        assert "solver effort" in text
        assert "ode.nfev" in text
        assert "cycles" not in text

    def test_unknown_kinds_counted_with_warning(self):
        text = summarize([
            {"type": "span", "name": "cycle", "cat": "m",
             "t0": 0.0, "t1": 1.0},
            {"type": "hologram", "name": "?"},
            {"type": "hologram", "name": "?"},
            {"type": "frob"},
        ])
        assert ("warning: skipped 3 record(s) of unknown kind "
                "(frob=1, hologram=2)") in text

    def test_wave_records_summarised(self):
        text = summarize([
            {"type": "wave", "signal": "ctr_b0", "kind": "bit",
             "t": 0.0, "value": 0},
            {"type": "wave", "signal": "ctr_b0", "kind": "bit",
             "t": 0.3, "value": 1},
            {"type": "wave", "signal": "phase", "kind": "state",
             "t": 0.1, "value": "red"},
        ])
        assert "waveform" in text
        assert "2 signal(s), 3 change(s), horizon 0.3 time units" in text
        assert "ctr_b0" in text and "2 change(s)" in text
        assert "temporal assertions: no violations recorded" in text

    def test_assertion_violations_tallied(self):
        text = summarize([
            {"type": "wave", "signal": "b", "kind": "bit",
             "t": 0.0, "value": 0},
            {"type": "diag", "code": "REPRO-A901", "severity": "error",
             "message": "invariant broke", "t": 1.0, "cycle": 1},
        ])
        assert "temporal assertions: 1 violation(s)" in text
        assert "REPRO-A901" in text
