"""Replay every shrunk reproducer in the corpus, forever.

Each ``.crn`` file under ``tests/conformance/corpus/`` was produced by
the greedy shrinker from a check that once failed on this tree.  Tier-1
replays the full fast invariant battery against each of them on every
run, so none of those bugs can silently come back.
"""

from pathlib import Path

import pytest

from repro.conformance import replay_network
from repro.crn.parser import load_network

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.crn"))


def test_corpus_is_populated():
    """The PR-5 acceptance floor: at least three shrunk reproducers."""
    assert len(CORPUS_FILES) >= 3


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[p.stem for p in CORPUS_FILES])
def test_corpus_reproducer_replays_clean(path):
    network = load_network(path)
    results = replay_network(network, name=path.name, seed=0)
    failures = [r for r in results if r.failed]
    assert not failures, "corpus regression: " + "; ".join(
        f"{r.check} [{r.engine}]: {r.detail}" for r in failures)


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[p.stem for p in CORPUS_FILES])
def test_corpus_file_documents_its_check(path):
    header = path.read_text(encoding="utf-8").splitlines()[0]
    assert header.startswith("# shrunk conformance reproducer for check:")
