"""Tests for the metamorphic invariant battery.

Two directions: the checks must *pass* on the real engines over a known
well-behaved network, and they must *fail* when pointed at a
deliberately broken engine -- otherwise the harness is a rubber stamp.
"""

import numpy as np

from repro.conformance.generator import CONFORMANCE_SCHEME, Target
from repro.conformance.metamorphic import (ENGINE_SPECS, compare_states,
                                           check_conservation,
                                           check_duplicate_merge,
                                           check_permutation,
                                           check_rate_rescale,
                                           check_t_shift,
                                           duplicate_reaction,
                                           permute_species)
from repro.crn.network import Network
from repro.crn.simulation.result import Trajectory


def _network() -> Network:
    """A + B <-> C with a slow decay: conserved totals, mild dynamics."""
    network = Network("meta_fixture")
    for name in ("A", "B", "C"):
        network.add_species(name)
    network.add({"A": 1, "B": 1}, {"C": 1}, 2.0)
    network.add({"C": 1}, {"A": 1, "B": 1}, 1.0)
    network.set_initial("A", 6.0)
    network.set_initial("B", 4.0)
    network.set_initial("C", 1.0)
    return network


def _target() -> Target:
    return Target("fixture", _network(), CONFORMANCE_SCHEME, t_final=1.0)


class _BrokenEngine:
    """An 'engine' whose output depends on the absolute time axis and
    ignores the supplied rate vector -- every covariance check must
    catch it."""

    name = "broken"
    exact = False

    def run(self, network, t_final, scheme, *, seed=None, rates=None,
            t_start=0.0, **_):
        times = np.linspace(t_start, t_start + t_final, 33)
        states = np.column_stack(
            [times + float(i) for i in range(network.n_species)])
        return Trajectory(times, states,
                          [s.name for s in network.species])


class TestChecksPassOnRealEngines:
    def test_all_engines_satisfy_invariants(self):
        target = _target()
        for engine in (ENGINE_SPECS["ode"], ENGINE_SPECS["ssa"],
                       ENGINE_SPECS["tau"]):
            for check in (check_permutation, check_rate_rescale,
                          check_t_shift, check_conservation):
                result = check(target, engine, seed=7)
                assert result.status == "pass", \
                    f"{result.check} [{engine.name}]: {result.detail}"

    def test_duplicate_merge_on_ode_and_skip_on_exact(self):
        target = _target()
        assert check_duplicate_merge(target, ENGINE_SPECS["ode"],
                                     seed=7).status == "pass"
        assert check_duplicate_merge(target, ENGINE_SPECS["ssa"],
                                     seed=7).status == "skip"


class TestChecksCatchBrokenEngine:
    def test_t_shift_flags_absolute_time_dependence(self):
        result = check_t_shift(_target(), _BrokenEngine(), seed=7)
        assert result.failed

    def test_rate_rescale_flags_ignored_rates(self):
        result = check_rate_rescale(_target(), _BrokenEngine(), seed=7)
        assert result.failed

    def test_conservation_flags_nonconserving_dynamics(self):
        result = check_conservation(_target(), _BrokenEngine(), seed=7)
        assert result.failed


class TestTransformsAndComparison:
    def test_permute_species_preserves_content(self):
        network = _network()
        permuted = permute_species(network, np.array([2, 0, 1]))
        assert [s.name for s in permuted.species] == ["C", "A", "B"]
        assert permuted.n_reactions == network.n_reactions
        assert permuted.initial == network.initial

    def test_duplicate_reaction_bypasses_dedup(self):
        network = _network()
        doubled = duplicate_reaction(network, 0)
        assert doubled.n_reactions == network.n_reactions + 1

    def test_compare_states_exact_and_tolerant(self):
        a = np.zeros((4, 2))
        b = a.copy()
        b[2, 1] = 1e-5
        assert compare_states(a, a.copy(), exact=True) is None
        assert compare_states(a, b, exact=True) is not None
        assert compare_states(a, b, exact=False) is None
        b[2, 1] = 1.0
        assert compare_states(a, b, exact=False) is not None

    def test_compare_states_row_allowance(self):
        a = np.zeros((10, 1))
        b = a.copy()
        b[3, 0] = 1.0
        assert compare_states(a, b, exact=True,
                              max_mismatch_fraction=0.2) is None
        assert compare_states(a, b, exact=True) is not None
