"""Tests for the conformance runner and report."""

import json

import pytest

from repro.conformance.runner import (ConformanceReport, _seed_for,
                                      run_conformance)
from repro.errors import ReproError


class TestSeedDerivation:
    def test_stable_and_order_independent(self):
        assert _seed_for(0, 1, 2) == _seed_for(0, 1, 2)
        cells = {_seed_for(0, t, c) for t in range(3) for c in range(4)}
        assert len(cells) == 12  # no collisions across the grid


class TestRunConformance:
    @pytest.fixture(scope="class")
    def report(self):
        return run_conformance("tiny", seed=0, n_workers=1,
                               corpus_dir=None, shrink=False)

    def test_tiny_budget_passes_on_fixed_tree(self, report):
        assert report.ok, "\n".join(
            f"{r.check} [{r.engine}]: {r.detail}"
            for r in report.failures)

    def test_report_shape(self, report):
        payload = report.to_dict()
        assert payload["schema"] == "repro.conformance/1"
        assert payload["budget"] == "tiny"
        assert payload["seed"] == 0
        assert payload["targets"] == ["random:000"]
        counts = payload["summary"]
        assert counts["fail"] == 0
        assert counts["pass"] > 0
        assert counts["pass"] + counts["skip"] == len(payload["results"])
        # The report must be JSON-serialisable as-is (CLI --json path).
        json.dumps(payload)

    def test_report_has_no_wall_clock_fields(self, report):
        text = json.dumps(report.to_dict())
        for banned in ("time_s", "timestamp", "duration", "elapsed"):
            assert banned not in text

    def test_render_summarises(self, report):
        rendered = report.render()
        assert "budget=tiny" in rendered
        assert "all checks passed" in rendered

    def test_unknown_budget_rejected(self):
        with pytest.raises(ReproError, match="unknown budget"):
            run_conformance("enormous")


class TestReportAccounting:
    def test_counts_and_failures(self):
        from repro.conformance.metamorphic import CheckResult
        results = [CheckResult("a", "t", "e", "pass"),
                   CheckResult("b", "t", "e", "fail", "boom"),
                   CheckResult("c", "t", "e", "skip", "n/a")]
        report = ConformanceReport("tiny", 0, ["t"], results, [])
        assert report.counts == {"pass": 1, "fail": 1, "skip": 1}
        assert [r.check for r in report.failures] == ["b"]
        assert not report.ok
        assert "FAIL b on t [e]: boom" in report.render()
