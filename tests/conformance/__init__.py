"""Tests for the cross-engine conformance harness (PR 5)."""
