"""Tests for the constrained random network/target generator."""

import numpy as np
import pytest

from repro.conformance.generator import (BUDGETS, GeneratorBudget,
                                         generate_targets, random_network)
from repro.crn.rates import FAST, SLOW
from repro.lint import LintConfig, lint_network

_TINY = BUDGETS["tiny"]


class TestRandomNetwork:
    def test_deterministic_in_seed(self):
        a = random_network(1234)
        b = random_network(1234)
        assert a.to_text() == b.to_text()

    def test_different_seeds_differ(self):
        texts = {random_network(seed).to_text() for seed in range(5)}
        assert len(texts) > 1

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_networks_satisfy_constraints(self, seed):
        network = random_network(seed)
        assert network.reactions
        for reaction in network.reactions:
            order = sum(reaction.reactants.values())
            n_products = sum(reaction.products.values())
            assert order <= 2
            if order == 0:
                assert n_products == 1
            else:
                assert n_products <= order  # non-expansive
            assert reaction.reactants != reaction.products
            if reaction.rate not in (FAST, SLOW):
                assert float(reaction.rate) > 0.0
        initials = list(network.initial.values())
        assert any(v > 0 for v in initials)
        assert all(float(v).is_integer() for v in initials)

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_networks_are_lint_clean(self, seed):
        report = lint_network(random_network(seed), LintConfig())
        assert report.exit_code() == 0

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(7)
        a = random_network(sequence)
        b = random_network(np.random.SeedSequence(7))
        assert a.to_text() == b.to_text()


class TestTargets:
    def test_target_list_is_deterministic(self):
        a = generate_targets(_TINY, seed=0)
        b = generate_targets(_TINY, seed=0)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.network.to_text() for t in a] == \
               [t.network.to_text() for t in b]

    def test_budget_scales_target_count(self):
        budget = GeneratorBudget(n_networks=3, max_species=4,
                                 max_reactions=4, n_runs=4, t_final=1.0,
                                 include_circuits=False)
        assert len(generate_targets(budget, seed=0)) == 3

    def test_circuit_targets_included_when_requested(self):
        names = [t.name for t in generate_targets(BUDGETS["small"],
                                                  seed=0)]
        assert "circuit:clock" in names
        assert "circuit:counter2" in names

    def test_budget_table_is_ordered_by_size(self):
        sizes = [BUDGETS[k].n_networks
                 for k in ("tiny", "small", "medium", "large")]
        assert sizes == sorted(sizes)
