"""Tests for the greedy shrinker and corpus serialisation."""

from repro.conformance.shrink import shrink_network, write_reproducer
from repro.crn.network import Network
from repro.crn.parser import load_network


def _big_network() -> Network:
    network = Network("shrinkme")
    for i in range(6):
        network.add_species(f"S{i}")
    network.add({"S0": 1}, {"S1": 1}, 1.0)
    network.add({"S1": 1}, {"S2": 1}, 2.0)
    network.add({"S2": 1}, {"S3": 1}, 3.0)
    network.add({"S3": 1, "S4": 1}, {"S5": 1}, 4.0)
    network.add({}, {"S4": 1}, 0.5)
    for i in range(6):
        network.set_initial(f"S{i}", 8.0)
    return network


def _has_rate(network: Network, value: float) -> bool:
    return any(reaction.rate == value for reaction in network.reactions)


class TestShrinkNetwork:
    def test_shrinks_to_single_relevant_reaction(self):
        minimal = shrink_network(_big_network(),
                                 lambda n: _has_rate(n, 3.0))
        assert minimal.n_reactions == 1
        assert minimal.reactions[0].rate == 3.0

    def test_drops_stranded_species_and_initials(self):
        minimal = shrink_network(_big_network(),
                                 lambda n: _has_rate(n, 1.0))
        names = {s.name for s in minimal.species}
        assert names <= {"S0", "S1"}
        assert all(v <= 1.0 for v in minimal.initial.values())

    def test_halves_initial_quantities_toward_one(self):
        def predicate(network):
            return (_has_rate(network, 1.0)
                    and network.initial.get("S0", 0.0) >= 1.0)
        minimal = shrink_network(_big_network(), predicate)
        assert minimal.initial.get("S0") == 1.0

    def test_crashing_predicate_rejects_candidate(self):
        # A candidate the predicate cannot even evaluate is not a
        # reproducer; the shrinker must keep the last good network.
        def fragile(network):
            if network.n_reactions < 2:
                raise ValueError("degenerate")
            return _has_rate(network, 3.0)
        minimal = shrink_network(_big_network(), fragile)
        assert minimal.n_reactions == 2
        assert _has_rate(minimal, 3.0)

    def test_unshrinkable_network_returned_unchanged(self):
        network = _big_network()
        minimal = shrink_network(network, lambda n: False)
        assert minimal is network


class TestWriteReproducer:
    def test_written_file_parses_back(self, tmp_path):
        minimal = shrink_network(_big_network(),
                                 lambda n: _has_rate(n, 3.0))
        path = write_reproducer(minimal, "meta.example",
                                "max deviation 1e-2", tmp_path)
        assert path.name == "shrunk-meta-example.crn"
        replayed = load_network(path)
        assert replayed.n_reactions == minimal.n_reactions
        text = path.read_text(encoding="utf-8")
        assert "meta.example" in text
        assert "max deviation 1e-2" in text
        assert "--replay" in text
