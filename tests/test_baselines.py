"""Tests for the baselines: naive chains and reference DSP."""

import numpy as np
import pytest

from repro.baselines import (arrival_spread, arrival_time,
                             build_naive_chain, fir_reference,
                             frequency_response, jitter_sensitivity,
                             measured_gain_at_period)
from repro.errors import NetworkError


class TestNaiveChain:
    def test_structure(self):
        network = build_naive_chain(n_stages=4, initial=10.0)
        assert network.n_reactions == 4
        assert network.get_initial("X") == 10.0

    def test_needs_stage(self):
        with pytest.raises(NetworkError):
            build_naive_chain(0)

    def test_quantity_eventually_arrives(self):
        network = build_naive_chain(n_stages=3, initial=10.0)
        assert arrival_time(network, t_final=300.0, fraction=0.99) > 0

    def test_spread_grows_with_length(self):
        short = arrival_spread(build_naive_chain(2), t_final=300.0)
        long = arrival_spread(build_naive_chain(8), t_final=300.0)
        assert long > short

    def test_jitter_shifts_arrival_time(self):
        times = jitter_sensitivity(
            lambda: build_naive_chain(4),
            lambda network, rates: arrival_time(network, rates=rates,
                                                t_final=300.0),
            n_trials=5, seed=0)
        assert times.std() / times.mean() > 0.05


class TestReferenceDsp:
    def test_fir_impulse_recovers_coefficients(self):
        coefficients = [0.5, 0.25, -0.125]
        impulse = [1.0, 0.0, 0.0, 0.0]
        assert np.allclose(fir_reference(coefficients, impulse)[:3],
                           coefficients)

    def test_frequency_response_dc_gain(self):
        # Moving average of 2: |H(1)| = 1 at DC.
        response = frequency_response([0.5, 0.5], [], n_points=16)
        assert response[0] == pytest.approx(1.0)
        # Nyquist: |H(-1)| = 0 for the two-tap average.
        assert response[-1] == pytest.approx(0.0, abs=1e-12)

    def test_measured_gain_matches_theory(self):
        period = 8
        n = np.arange(64)
        x = 10 + 5 * np.sin(2 * np.pi * n / period)
        y = fir_reference([0.5, 0.5], x)
        measured = measured_gain_at_period(y, x, period, skip=8)
        omega = 2 * np.pi / period
        theory = abs(0.5 + 0.5 * np.exp(-1j * omega))
        assert measured == pytest.approx(theory, rel=1e-3)

    def test_measured_gain_requires_component(self):
        x = np.ones(32)
        with pytest.raises(ValueError):
            measured_gain_at_period(x, x, period=8)


class TestPhasedVsNaiveContrast:
    def test_phased_chain_is_crisper(self):
        """The headline qualitative contrast for experiment E9."""
        from repro.crn.simulation.ode import OdeSimulator
        from repro.core.analysis import effective_series
        from repro.core.memory import build_delay_chain

        naive = build_naive_chain(n_stages=6, initial=30.0)
        naive_spread = arrival_spread(naive, t_final=300.0)

        network, _, _ = build_delay_chain(n=2, initial=30.0)
        trajectory = OdeSimulator(network).simulate(40.0, n_samples=2000)
        series = effective_series(trajectory, "Y")
        final = series[-1]
        t10 = np.interp(0.1 * final, series, trajectory.times)
        t90 = np.interp(0.9 * final, series, trajectory.times)
        phased_spread = t90 - t10

        assert phased_spread < naive_spread
