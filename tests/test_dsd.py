"""Tests for the DNA strand displacement compilation."""

import pytest

from repro.crn.network import Network
from repro.crn.simulation.ode import OdeSimulator, simulate
from repro.dsd import (Complex, DsdCompiler, Strand, compile_network,
                       recognition, toehold)
from repro.errors import NetworkError


class TestStructures:
    def test_domain_complement_involution(self):
        d = toehold("t1")
        assert d.complement.complement == d
        assert d.is_complement_of(d.complement)
        assert not d.is_complement_of(d)

    def test_domain_lengths(self):
        assert toehold("t").length == 6
        assert recognition("x").length == 15

    def test_strand_length(self):
        strand = Strand("s", (toehold("t"), recognition("x")))
        assert strand.length == 21
        assert "5'-t-x-3'" in str(strand)

    def test_complex_validation(self):
        top = Strand("top", (toehold("t"),))
        bottom = Strand("bot", (toehold("t").complement,))
        good = Complex("g", (bottom, top), bound=(((1, 0), (0, 0)),))
        good.validate()
        bad = Complex("b", (top, top), bound=(((1, 0), (0, 0)),))
        with pytest.raises(NetworkError):
            bad.validate()

    def test_empty_strand_rejected(self):
        with pytest.raises(NetworkError):
            Strand("s", ())


class TestCompilerStructure:
    def _source_network(self):
        network = Network("toy")
        network.add(None, "A", 2.0)            # zeroth order
        network.add("A", "B", 1.0)             # unimolecular
        network.add({"A": 1, "B": 1}, "C", 0.5)  # bimolecular
        network.set_initial("A", 5.0)
        return network

    def test_formal_species_preserved(self):
        compilation = compile_network(self._source_network())
        for name in ("A", "B", "C"):
            assert name in compilation.network
        assert compilation.network.get_initial("A") == 5.0

    def test_fuels_buffered_at_cmax(self):
        compilation = compile_network(self._source_network(), c_max=500.0)
        assert compilation.fuel_species
        for fuel in compilation.fuel_species:
            assert compilation.network.get_initial(fuel) == 500.0

    def test_expansion_factor(self):
        compilation = compile_network(self._source_network())
        assert compilation.expansion_factor > 1.5

    def test_inventory_populated(self):
        compilation = compile_network(self._source_network())
        assert len(compilation.inventory.signal_strands) >= 3
        assert compilation.inventory.fuel_complexes
        assert compilation.inventory.total_nucleotides > 0

    def test_high_order_rejected(self):
        network = Network()
        network.add({"A": 2, "B": 2}, "C", 1.0)
        with pytest.raises(NetworkError):
            compile_network(network)

    def test_invalid_cmax(self):
        with pytest.raises(NetworkError):
            DsdCompiler(c_max=0.0)


class TestCompiledKinetics:
    def test_unimolecular_rate_preserved(self):
        network = Network()
        network.add("A", "B", 0.8)
        network.set_initial("A", 10.0)
        ideal = simulate(network, 3.0)
        compiled = compile_network(network, c_max=10_000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF",
                                  rtol=1e-6).simulate(3.0)
        assert trajectory.final("B") == pytest.approx(
            ideal.final("B"), rel=0.02)

    def test_bimolecular_rate_preserved(self):
        network = Network()
        network.add({"A": 1, "B": 1}, "C", 0.3)
        network.set_initial("A", 8.0)
        network.set_initial("B", 5.0)
        ideal = simulate(network, 2.0)
        compiled = compile_network(network, c_max=10_000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF",
                                  rtol=1e-6).simulate(2.0)
        assert trajectory.final("C") == pytest.approx(
            ideal.final("C"), rel=0.05)

    def test_zeroth_order_flux_with_depletion(self):
        network = Network()
        network.add(None, "X", 2.0)
        compiled = compile_network(network, c_max=1000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF").simulate(
            5.0)
        # Flux ~2/time while fuel is fresh.
        assert trajectory.final("X") == pytest.approx(10.0, rel=0.05)
        assert compiled.fuel_depletion(trajectory) > 0.0

    def test_trimolecular_decomposition(self):
        network = Network()
        network.add({"A": 1, "B": 1, "C": 1}, "D", 0.2)
        for name, value in [("A", 6.0), ("B", 6.0), ("C", 6.0)]:
            network.set_initial(name, value)
        ideal = simulate(network, 1.0)
        compiled = compile_network(network, c_max=10_000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF",
                                  rtol=1e-6).simulate(1.0)
        assert trajectory.final("D") == pytest.approx(
            ideal.final("D"), rel=0.1)

    def test_fidelity_improves_with_cmax(self):
        network = Network()
        network.add({"A": 1, "B": 1}, "C", 0.5)
        network.set_initial("A", 10.0)
        network.set_initial("B", 10.0)
        ideal = simulate(network, 2.0).final("C")
        errors = []
        for c_max in (300.0, 30_000.0):
            compiled = compile_network(network, c_max=c_max)
            trajectory = OdeSimulator(compiled.network, method="BDF",
                                      rtol=1e-6).simulate(2.0)
            errors.append(abs(trajectory.final("C") - ideal))
        assert errors[1] < errors[0]

    def test_delay_element_through_dsd(self):
        """End-to-end: one phase-protocol delay element survives
        compilation to strand displacement."""
        from repro.core.analysis import effective_value
        from repro.core.memory import build_delay_chain

        network, _, _ = build_delay_chain(n=1, initial=20.0)
        compiled = compile_network(network, c_max=10_000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF",
                                  rtol=1e-5, atol=1e-8).simulate(
            25.0, n_samples=30)
        assert effective_value(trajectory, "Y") == pytest.approx(
            20.0, rel=0.05)

    def test_mass_action_conservation_of_signals(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.set_initial("A", 10.0)
        compiled = compile_network(network, c_max=10_000.0)
        trajectory = OdeSimulator(compiled.network, method="BDF").simulate(
            5.0)
        total = trajectory.final("A") + trajectory.final("B")
        # A unit in flight may sit in O_* briefly; at the end it is all B.
        assert total == pytest.approx(10.0, rel=0.02)
