"""The async service: submit/result/progress, caching, determinism.

The headline contract: a duplicate job is answered from the store with
a byte-identical response, and sharded ensemble jobs return the same
bytes at every worker count (so a result computed on a wide pool is a
valid cache hit for a narrow one and vice versa).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.crn.network import Network
from repro.crn.simulation.options import SimulationOptions
from repro.errors import ReproError, ServeError
from repro.serve import (JobSpec, MemoryResultStore, SimulationService,
                         build_job_mix, canonical_result_bytes,
                         generate_load)


def _network(order: str = "forward") -> Network:
    network = Network("serve")
    reactions = [(("X",), ("Y",), 2.0), (("Y",), ("X", "X"), 1.0)]
    if order == "reversed":
        reactions = list(reversed(reactions))
    for reactants, products, rate in reactions:
        network.add(reactants, products, rate)
    network.set_initial("X", 20.0)
    return network


def _run(coroutine):
    return asyncio.run(coroutine)


async def _submit_and_wait(service, spec):
    handle = await service.submit(spec)
    result = await handle.result()
    return handle, result


class TestSubmitFlow:
    def test_cold_then_hit_is_byte_identical(self):
        async def scenario():
            async with SimulationService() as service:
                spec = JobSpec(kind="simulate", network=_network())
                cold, first = await _submit_and_wait(service, spec)
                warm, second = await _submit_and_wait(service, spec)
                return service.stats, cold, warm, first, second
        stats, cold, warm, first, second = _run(scenario())
        assert not cold.cached and warm.cached
        assert canonical_result_bytes(first) == \
            canonical_result_bytes(second)
        assert stats == {"submitted": 2, "cache_hits": 1,
                         "completed": 2, "failed": 0}

    def test_permuted_network_is_a_cache_hit(self):
        async def scenario():
            async with SimulationService() as service:
                _, first = await _submit_and_wait(service, JobSpec(
                    kind="simulate", network=_network("forward"),
                    method="ssa", seed=5))
                warm, second = await _submit_and_wait(service, JobSpec(
                    kind="simulate", network=_network("reversed"),
                    method="ssa", seed=5))
                return warm.cached, first, second
        cached, first, second = _run(scenario())
        assert cached
        assert canonical_result_bytes(first) == \
            canonical_result_bytes(second)

    def test_progress_stream_lifecycles(self):
        async def scenario():
            async with SimulationService() as service:
                spec = JobSpec(kind="simulate", network=_network())
                cold = await service.submit(spec)
                cold_events = [record["event"] async for record
                               in cold.progress()
                               if "event" in record]
                warm = await service.submit(spec)
                warm_events = [record["event"] async for record
                               in warm.progress()
                               if "event" in record]
                return cold_events, warm_events
        cold_events, warm_events = _run(scenario())
        assert cold_events[0] == "submitted"
        assert cold_events[1] == "started"
        assert cold_events[-1] == "finished"
        assert warm_events == ["submitted", "cache-hit"]

    def test_failed_jobs_raise_and_count(self):
        async def scenario():
            async with SimulationService() as service:
                spec = JobSpec(kind="simulate", network=_network(),
                               options=SimulationOptions(
                                   initial={"NOPE": 1.0}))
                handle = await service.submit(spec)
                with pytest.raises(ReproError):
                    await handle.result()
                events = [record["event"] async for record
                          in handle.progress() if "event" in record]
                return service.stats, events
        stats, events = _run(scenario())
        assert stats["failed"] == 1
        assert events[-1] == "failed"

    def test_invalid_specs_are_rejected_at_submit(self):
        async def scenario():
            async with SimulationService() as service:
                with pytest.raises(ServeError):
                    await service.submit(JobSpec(kind="simulate"))
                return service.stats
        assert _run(scenario())["submitted"] == 0

    def test_closed_service_rejects_jobs(self):
        async def scenario():
            service = SimulationService()
            await service.close()
            with pytest.raises(ServeError, match="closed"):
                await service.submit(JobSpec(kind="simulate",
                                             network=_network()))
        _run(scenario())


class TestDeterminism:
    def test_sweep_bytes_match_across_worker_counts(self):
        spec = JobSpec(kind="sweep", network=_network(),
                       method="ssa", t_final=0.5, n_runs=8, seed=2)

        async def run_with(n_workers):
            async with SimulationService(n_workers=n_workers) \
                    as service:
                return await service.run(spec)
        narrow = _run(run_with(1))
        wide = _run(run_with(2))
        assert canonical_result_bytes(narrow) == \
            canonical_result_bytes(wide)

    def test_robustness_job_round_trips_through_the_store(self):
        spec = JobSpec(kind="robustness", circuit="counter",
                       trials=2, seed=0)

        async def scenario():
            store = MemoryResultStore()
            async with SimulationService(store, n_workers=1) \
                    as service:
                first = await service.run(spec)
                warm, second = await _submit_and_wait(service, spec)
                return first, second, warm.cached
        first, second, cached = _run(scenario())
        assert cached
        assert first["kind"] == "robustness"
        assert canonical_result_bytes(first) == \
            canonical_result_bytes(second)


class TestLoadGenerator:
    def test_mix_is_deterministic_and_distinct(self):
        mix = build_job_mix(4, seed=9)
        again = build_job_mix(4, seed=9)
        keys = [spec.cache_key() for spec in mix]
        assert keys == [spec.cache_key() for spec in again]
        assert len(set(keys)) == 4

    def test_generate_load_hits_after_the_first_pass(self):
        report = generate_load(n_distinct=2, repeats=3, seed=1,
                               n_workers=1, sweep_runs=2)
        assert report.jobs == 6
        assert report.cache_hits == 4
        assert report.cache_hit_rate == pytest.approx(2 / 3)
        assert report.hit_p50_ms < report.cold_p50_ms
        payload = report.to_dict()
        assert payload["jobs_per_second"] > 0
