"""Cache-key soundness: equal keys iff byte-identical responses.

The serving cache is only as good as its key: a spurious hit serves a
wrong answer, a spurious miss wastes a re-simulation.  These tests pin
both directions -- semantically equal requests (species/reaction
permutations, duplicate-vs-merged reactions, defaulted options) must
collide, and every knob that can change the response (options, seed,
t_final, scheme, n_runs, kind) must move the key.
"""

from __future__ import annotations

import pytest

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.options import SimulationOptions
from repro.errors import ServeError
from repro.serve import JobSpec


def _network(order: str = "forward") -> Network:
    """One small chemistry, declarable in either order."""
    network = Network("keys")
    reactions = [(("X",), ("Y",), 2.0), (("Y",), ("Z",), 3.0),
                 (("X", "Y"), ("Z",), 0.5)]
    if order == "reversed":
        reactions = list(reversed(reactions))
    for reactants, products, rate in reactions:
        network.add(reactants, products, rate)
    network.set_initial("X", 5.0)
    return network


class TestKeyCollisions:
    def test_permutation_equivalent_networks_share_a_key(self):
        forward = JobSpec(kind="simulate", network=_network("forward"))
        backward = JobSpec(kind="simulate",
                           network=_network("reversed"))
        assert forward.cache_key() == backward.cache_key()

    def test_duplicate_and_merged_reactions_share_a_key(self):
        listed_twice = Network("dup")
        listed_twice.add(("X",), ("Y",), 2.0)
        listed_twice.add(("X",), ("Y",), 2.0)
        listed_twice.set_initial("X", 4.0)
        merged = Network.from_canonical_dict(
            listed_twice.to_canonical_dict())
        assert merged.n_reactions == 2  # re-expanded from count=2
        key_a = JobSpec(kind="simulate",
                        network=listed_twice).cache_key()
        key_b = JobSpec(kind="simulate", network=merged).cache_key()
        assert key_a == key_b

    def test_defaulted_options_collapse(self):
        bare = JobSpec(kind="simulate", network=_network())
        explicit = JobSpec(kind="simulate", network=_network(),
                           options=SimulationOptions())
        assert bare.cache_key() == explicit.cache_key()

    def test_network_display_name_is_ignored(self):
        named = _network()
        renamed = named.copy(name="something-else")
        key_a = JobSpec(kind="simulate", network=named).cache_key()
        key_b = JobSpec(kind="simulate", network=renamed).cache_key()
        assert key_a == key_b

    def test_key_is_memoised(self):
        spec = JobSpec(kind="simulate", network=_network())
        assert spec.cache_key() is spec.cache_key()


class TestKeyDeltas:
    def test_options_delta_misses(self):
        base = JobSpec(kind="simulate", network=_network())
        tweaked = JobSpec(kind="simulate", network=_network(),
                          options=SimulationOptions(n_samples=64))
        assert base.cache_key() != tweaked.cache_key()

    def test_seed_delta_misses(self):
        base = JobSpec(kind="simulate", network=_network(), seed=0)
        other = JobSpec(kind="simulate", network=_network(), seed=1)
        assert base.cache_key() != other.cache_key()

    def test_t_final_delta_misses(self):
        base = JobSpec(kind="simulate", network=_network(),
                       t_final=1.0)
        other = JobSpec(kind="simulate", network=_network(),
                        t_final=2.0)
        assert base.cache_key() != other.cache_key()

    def test_rate_delta_misses(self):
        near = Network("near")
        near.add(("X",), ("Y",), 2.0)
        near.set_initial("X", 5.0)
        nearer = Network("near")
        nearer.add(("X",), ("Y",), 2.0 + 1e-12)
        nearer.set_initial("X", 5.0)
        key_a = JobSpec(kind="simulate", network=near).cache_key()
        key_b = JobSpec(kind="simulate", network=nearer).cache_key()
        assert key_a != key_b

    def test_scheme_delta_misses(self):
        base = JobSpec(kind="simulate", network=_network())
        scheme = JobSpec(kind="simulate", network=_network(),
                         scheme=RateScheme({"fast": 10.0}))
        assert base.cache_key() != scheme.cache_key()

    def test_kind_delta_misses(self):
        simulate = JobSpec(kind="simulate", network=_network(),
                           method="ssa")
        sweep = JobSpec(kind="sweep", network=_network(),
                        method="ssa")
        assert simulate.cache_key() != sweep.cache_key()

    def test_n_runs_delta_misses_for_sweeps(self):
        base = JobSpec(kind="sweep", network=_network(),
                       method="ssa", n_runs=8)
        other = JobSpec(kind="sweep", network=_network(),
                        method="ssa", n_runs=16)
        assert base.cache_key() != other.cache_key()


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            JobSpec(kind="meditate").validate()

    def test_exactly_one_subject(self):
        with pytest.raises(ServeError, match="exactly one"):
            JobSpec(kind="simulate").validate()
        with pytest.raises(ServeError, match="exactly one"):
            JobSpec(kind="simulate", network=_network(),
                    scenario="random").validate()

    def test_unknown_method(self):
        with pytest.raises(ServeError, match="unknown method"):
            JobSpec(kind="simulate", network=_network(),
                    method="magic").validate()

    def test_live_options_rejected(self):
        spec = JobSpec(kind="simulate", network=_network(),
                       options=SimulationOptions(seed=7))
        with pytest.raises(ServeError, match="options.seed"):
            spec.validate()

    def test_ode_sweep_rejected(self):
        with pytest.raises(ServeError, match="ssa.*tau"):
            JobSpec(kind="sweep", network=_network(),
                    method="ode").validate()

    def test_unknown_circuit(self):
        with pytest.raises(ServeError, match="unknown robustness"):
            JobSpec(kind="robustness", circuit="clock").validate()

    def test_unknown_budget(self):
        with pytest.raises(ServeError, match="unknown conformance"):
            JobSpec(kind="conformance", budget="huge").validate()


class TestJobFiles:
    def test_round_trip_preserves_the_key(self):
        spec = JobSpec(kind="sweep", network=_network("reversed"),
                       method="tau", t_final=0.5, n_runs=4, seed=3,
                       options=SimulationOptions(n_samples=32),
                       scheme=RateScheme({"fast": 8.0}))
        rebuilt = JobSpec.from_dict(spec.to_dict())
        assert rebuilt.cache_key() == spec.cache_key()

    def test_scenario_round_trip(self):
        spec = JobSpec(kind="simulate", scenario="random",
                       scenario_params={"seed": 5}, seed=5)
        rebuilt = JobSpec.from_dict(spec.to_dict())
        assert rebuilt.cache_key() == spec.cache_key()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServeError, match="unknown job spec"):
            JobSpec.from_dict({"kind": "conformance", "cores": 9})

    def test_non_mapping_rejected(self):
        with pytest.raises(ServeError, match="mapping"):
            JobSpec.from_dict(["simulate"])
