"""Result stores: LRU behaviour, disk round-trips, corruption policy.

The disk store's contract under damage is the load-bearing part: a
corrupted entry must be **evicted with a warning and reported as a
miss** -- never deserialised into a wrong answer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (DiskResultStore, MemoryResultStore,
                         canonical_result_bytes)
from repro.serve.cache import STORE_SCHEMA


def _result(scale: float = 1.0) -> dict:
    return {"kind": "simulate", "names": ["X", "Y"],
            "times": np.linspace(0.0, 1.0, 5),
            "states": scale * np.arange(10.0).reshape(5, 2)}


class TestCanonicalBytes:
    def test_arrays_and_scalars_encode(self):
        payload = dict(_result(), events=np.int64(3),
                       mean=np.float64(0.5))
        encoded = canonical_result_bytes(payload)
        assert json.loads(encoded)["events"] == 3

    def test_equal_data_equal_bytes(self):
        assert canonical_result_bytes(_result()) == \
            canonical_result_bytes(_result())
        assert canonical_result_bytes(_result()) != \
            canonical_result_bytes(_result(scale=2.0))

    def test_non_pure_data_rejected(self):
        with pytest.raises(TypeError, match="not pure data"):
            canonical_result_bytes({"handle": object()})


class TestMemoryStore:
    def test_miss_then_hit(self):
        store = MemoryResultStore()
        assert store.get("k") is None
        store.put("k", _result())
        assert store.get("k") is not None
        assert (store.hits, store.misses) == (1, 1)

    def test_lru_eviction_order(self):
        store = MemoryResultStore(max_entries=2)
        store.put("a", _result())
        store.put("b", _result())
        assert store.get("a") is not None  # refresh a; b is now LRU
        store.put("c", _result())
        assert store.get("b") is None
        assert store.get("a") is not None
        assert len(store) == 2

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            MemoryResultStore(max_entries=0)


class TestDiskStore:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("key1", _result())
        reloaded = DiskResultStore(tmp_path).get("key1")
        assert canonical_result_bytes(reloaded) == \
            canonical_result_bytes(_result())
        assert reloaded["states"].dtype == np.float64

    def test_plain_results_skip_the_npz(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("key1", {"kind": "conformance", "report": {"ok": 1}})
        assert not (tmp_path / "key1.npz").exists()
        assert store.get("key1") == {"kind": "conformance",
                                     "report": {"ok": 1}}

    def test_corrupted_json_is_evicted_with_a_warning(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("key1", _result())
        (tmp_path / "key1.json").write_text("{not json", "utf-8")
        with pytest.warns(RuntimeWarning, match="evicting corrupted"):
            assert store.get("key1") is None
        assert not (tmp_path / "key1.json").exists()
        assert not (tmp_path / "key1.npz").exists()
        assert len(store) == 0

    def test_missing_npz_sidecar_is_evicted(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("key1", _result())
        (tmp_path / "key1.npz").unlink()
        with pytest.warns(RuntimeWarning, match="evicting corrupted"):
            assert store.get("key1") is None
        assert not (tmp_path / "key1.json").exists()

    def test_schema_mismatch_is_evicted(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("key1", {"kind": "x", "value": 1})
        document = json.loads((tmp_path / "key1.json").read_text())
        assert document["schema"] == STORE_SCHEMA
        document["schema"] = "repro.store/0"
        (tmp_path / "key1.json").write_text(json.dumps(document))
        with pytest.warns(RuntimeWarning, match="unexpected schema"):
            assert store.get("key1") is None

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        store = DiskResultStore(tmp_path)
        assert store.get("nope") is None
        assert store.misses == 1
