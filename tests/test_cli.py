"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def demo_crn(tmp_path):
    path = tmp_path / "demo.crn"
    path.write_text("X -> Y @ fast\nY -> Z @ slow\ninit X = 10\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_runs_and_prints(self, demo_crn, capsys):
        assert main(["simulate", demo_crn, "--t", "8"]) == 0
        out = capsys.readouterr().out
        assert "final quantities" in out
        assert "Z" in out

    def test_plot_option(self, demo_crn, capsys):
        assert main(["simulate", demo_crn, "--t", "4",
                     "--plot", "X,Z"]) == 0
        assert "#=X" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        with pytest.raises(OSError):
            main(["simulate", "/nonexistent.crn"])

    def test_bad_species_reports_error(self, demo_crn, capsys):
        code = main(["simulate", demo_crn, "--plot", "NOPE"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestClock:
    def test_reports_period(self, capsys):
        assert main(["clock", "--mass", "20", "--t", "25"]) == 0
        out = capsys.readouterr().out
        assert "period" in out and "jitter" in out


class TestFilter:
    def test_moving_average(self, capsys):
        assert main(["filter", "ma", "--taps", "2",
                     "--input", "10,20,40"]) == 0
        out = capsys.readouterr().out
        assert "max |error|" in out
        assert "reference" in out


class TestCounter:
    def test_counts(self, capsys):
        assert main(["counter", "--bits", "2", "--pulses", "5"]) == 0
        out = capsys.readouterr().out
        assert "[0, 1, 2, 3, 0, 1]" in out


class TestDsd:
    def test_compile_and_fasta(self, demo_crn, tmp_path, capsys):
        fasta = tmp_path / "order.fasta"
        assert main(["dsd", demo_crn, "--fasta", str(fasta)]) == 0
        assert fasta.exists()
        content = fasta.read_text()
        assert content.startswith(">")
