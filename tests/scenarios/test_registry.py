"""The shared scenario registry and its built-in menu."""

from __future__ import annotations

import pytest

from repro.crn.network import Network
from repro.errors import FaultError, ScenarioError
from repro.scenarios import (Scenario, get_scenario, register_scenario,
                             scenario_names)


class TestRegistry:
    def test_builtin_menu_in_registration_order(self):
        assert scenario_names() == ("clock", "counter", "fsm", "ma",
                                    "iir", "clock-relaxation", "random")

    def test_tag_filters(self):
        assert scenario_names(tag="waves") == ("counter", "fsm", "ma",
                                               "iir")
        assert scenario_names(tag="faults") == ("counter", "ma", "iir")
        assert scenario_names(tag="conformance-circuit") == \
            ("clock", "counter", "clock-relaxation")

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ScenarioError, match="did you mean 'clock'"):
            get_scenario("clok")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(Scenario(name="clock", description="dup"))

    def test_missing_capability_is_a_clear_error(self):
        with pytest.raises(ScenarioError, match="fsm.*network"):
            get_scenario("fsm").network()
        with pytest.raises(ScenarioError, match="clock.*adapter"):
            get_scenario("clock").circuit()


class TestBuiltinNetworks:
    @pytest.mark.parametrize("name", ["clock", "counter", "ma", "iir",
                                      "clock-relaxation", "random"])
    def test_network_capability(self, name):
        network = get_scenario(name).network()
        assert isinstance(network, Network)
        assert network.n_reactions > 0

    def test_counter_params(self):
        two = get_scenario("counter").network(bits=2)
        three = get_scenario("counter").network(bits=3)
        assert three.n_species > two.n_species

    def test_random_is_seed_deterministic(self):
        build = get_scenario("random").build_network
        assert build(seed=3).canonical_hash() == \
            build(seed=3).canonical_hash()
        assert build(seed=3).canonical_hash() != \
            build(seed=4).canonical_hash()


class TestConsumers:
    def test_faults_resolution_goes_through_registry(self):
        from repro.faults import make_circuit

        adapter = make_circuit("counter", n_bits=2)
        assert adapter.name == "counter"
        with pytest.raises(FaultError, match="choose from"):
            make_circuit("clock")  # registered, but no fault adapter

    def test_conformance_circuit_targets_match_registry(self):
        from repro.conformance.generator import _circuit_targets

        targets = _circuit_targets(10.0)
        assert [t.name for t in targets] == [
            "circuit:clock", "circuit:counter2",
            "circuit:clock-relaxation"]
        assert targets[0].t_final == 2.0 and not targets[0].stochastic
        assert targets[1].t_final == 1.0 and targets[1].stochastic
        assert targets[2].t_final == 2.0 and not targets[2].stochastic
        counter = get_scenario("counter").network(bits=2)
        assert targets[1].network.canonical_hash() == \
            counter.canonical_hash()

    def test_waves_scenarios_derived_from_registry(self):
        from repro.waves.runner import SCENARIOS

        assert SCENARIOS == scenario_names(tag="waves")
