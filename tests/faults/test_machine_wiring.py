"""Fault plans wired through the machine drivers and the counter."""

import numpy as np
import pytest

from repro.core.machine import SynchronousMachine
from repro.core.stochastic_machine import StochasticMachine
from repro.digital.counter import BinaryCounter
from repro.faults import (ClockGlitch, Dilution, FaultPlan, Leak,
                          RateMismatch)


def _ma_design():
    from repro.apps.filters import moving_average

    return moving_average(2)


class TestSynchronousMachine:
    def test_faulted_network_carries_the_extra_reactions(self):
        clean = SynchronousMachine(_ma_design())
        faulted = SynchronousMachine(
            _ma_design(), faults=FaultPlan([Leak(rate=1e-5)], seed=1))
        assert faulted.network.n_reactions > clean.network.n_reactions

    def test_faulted_run_still_computes(self):
        plan = FaultPlan([RateMismatch(sigma=0.1), Leak(rate=1e-5)],
                         seed=2)
        machine = SynchronousMachine(_ma_design(), faults=plan)
        run = machine.run({"x": [8.0, 4.0]})
        assert run.max_error() < 0.5

    def test_small_clock_glitch_recovers(self):
        plan = FaultPlan([ClockGlitch(cycle=1, fraction=0.05)], seed=3)
        machine = SynchronousMachine(_ma_design(), faults=plan)
        run = machine.run({"x": [8.0, 4.0]})
        assert run.max_error() < 0.5

    def test_inactive_plan_changes_nothing(self):
        clean = SynchronousMachine(_ma_design())
        noop = SynchronousMachine(_ma_design(),
                                  faults=FaultPlan([], seed=0))
        assert noop.network.n_reactions == clean.network.n_reactions


class TestStochasticMachine:
    def test_faulted_run_still_computes(self):
        plan = FaultPlan([Dilution(rate=1e-6)], seed=4)
        machine = StochasticMachine(_ma_design(), seed=7, faults=plan)
        run = machine.run({"x": [8.0, 4.0]})
        assert machine.network.n_reactions > 0
        assert run.max_error() <= 1.0  # integer semantics, +/- 1 count


class TestCounterWiring:
    def test_faulted_count_reports_health_fields(self):
        plan = FaultPlan([RateMismatch(sigma=0.3)], seed=5)
        counter = BinaryCounter(2)
        run = counter.count(4, stochastic=True,
                            seed=np.random.default_rng(0), faults=plan,
                            strict=False)
        assert len(run.settled) == len(run.values)
        assert len(run.residuals) == len(run.values)
        assert all(run.settled)
        assert run.values == [0, 1, 2, 3, 0]

    def test_strict_false_tolerates_unsettled_readings(self):
        # Compressed scheme + pinned settle window: readings happen
        # before the carries finish; strict=False reports instead of
        # raising.
        from repro.crn.rates import RateScheme

        nominal = RateScheme()
        scheme = nominal.compressed(nominal.separation / 5.0)
        run = BinaryCounter(3).count(
            10, scheme=scheme, settle_time=100.0 / nominal.fast,
            stochastic=True, seed=np.random.default_rng(0),
            strict=False)
        assert max(run.residuals) > 0
