"""Fault models and plans: hooks, determinism, the species contract."""

import numpy as np
import pytest

from repro import parse_network
from repro.crn.rates import RateScheme
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import FaultError
from repro.faults import (ClockGlitch, CopyNumberNoise, Dilution,
                          FaultModel, FaultPlan, Leak, RateMismatch,
                          SeparationCompression, SpeciesDeletion)


@pytest.fixture
def network():
    return parse_network("""
        network: faults_demo
        A -> B @ fast
        B -> C @ slow
        init A = 12
        init B = 3
    """)


SCHEME = RateScheme()


class TestModels:
    def test_rate_mismatch_perturbs_every_rate(self, network):
        setup = FaultPlan([RateMismatch(sigma=0.25)],
                          seed=1).materialize(network, SCHEME)
        nominal = network.rate_vector(SCHEME)
        assert setup.rates is not None
        assert np.all(setup.rates > 0)
        assert np.all(setup.rates != nominal)

    def test_separation_compression_rescales_fast_only(self, network):
        setup = FaultPlan([SeparationCompression(factor=10.0)],
                          seed=1).materialize(network, SCHEME)
        assert setup.scheme.fast == pytest.approx(SCHEME.fast / 10.0)
        assert setup.scheme.slow == pytest.approx(SCHEME.slow)

    def test_leak_adds_one_source_per_signal_species(self, network):
        setup = FaultPlan([Leak(rate=1e-3)],
                          seed=1).materialize(network, SCHEME)
        added = setup.network.n_reactions - network.n_reactions
        assert added == network.n_species  # all roles default to signal
        assert network.n_reactions == 2    # input untouched

    def test_dilution_decays_every_species(self, network):
        setup = FaultPlan([Dilution(rate=1e-4)],
                          seed=1).materialize(network, SCHEME)
        added = setup.network.n_reactions - network.n_reactions
        assert added == network.n_species

    def test_copy_number_noise_moves_nonzero_initials(self, network):
        setup = FaultPlan([CopyNumberNoise(sigma=0.1)],
                          seed=1).materialize(network, SCHEME)
        nominal = network.initial_vector()
        nonzero = nominal > 0
        assert np.all(setup.initial[nonzero] != nominal[nonzero])
        assert np.all(setup.initial[~nonzero] == 0)
        # The perturbed quantities are written back into the network.
        np.testing.assert_array_equal(setup.network.initial_vector(),
                                      setup.initial)

    def test_species_deletion_named_victim(self, network):
        setup = FaultPlan([SpeciesDeletion(species="A")],
                          seed=1).materialize(network, SCHEME)
        assert setup.initial[network.species_index("A")] == 0.0
        assert setup.initial[network.species_index("B")] == 3.0

    def test_species_deletion_random_victim_is_seeded(self, network):
        picks = [FaultPlan([SpeciesDeletion()], seed=9).materialize(
            network, SCHEME).initial.tolist() for _ in range(2)]
        assert picks[0] == picks[1]

    def test_clock_glitch_hits_only_its_cycle(self, network):
        network.add_species(Species("C_red", role="clock"))
        network.set_initial("C_red", 20.0)
        plan = FaultPlan([ClockGlitch(cycle=2, fraction=0.5)], seed=1)
        plan.materialize(network, SCHEME)
        state = network.initial_vector()
        index = network.species_index("C_red")
        same = plan.on_boundary(1, state, network)
        assert same[index] == 20.0
        hit = plan.on_boundary(2, state, network)
        assert hit[index] == pytest.approx(10.0)
        # Non-clock species untouched.
        assert hit[network.species_index("A")] == 12.0

    def test_negative_parameters_rejected(self, network):
        for model in (RateMismatch(sigma=-1.0), Leak(rate=-1.0),
                      Dilution(rate=-1.0), CopyNumberNoise(sigma=-1.0)):
            with pytest.raises(FaultError):
                FaultPlan([model], seed=0).materialize(network, SCHEME)

    def test_describe_reports_kind_and_parameters(self):
        payload = RateMismatch(sigma=0.3).describe()
        assert payload == {"kind": "rate_mismatch", "sigma": 0.3}


class _SpeciesAdder(FaultModel):
    kind = "species_adder"

    def perturb_network(self, network, scheme, rng):
        rogue = Species("ROGUE")
        network.add_species(rogue)
        network.add_reaction(Reaction({}, {rogue: 1}, 1.0))


class _NegativeInitial(FaultModel):
    kind = "negative_initial"

    def perturb_initial(self, initial, network, rng):
        initial = initial.copy()
        initial[0] = -1.0
        return initial


class TestPlanContract:
    def test_adding_species_is_rejected(self, network):
        with pytest.raises(FaultError, match="must not add or remove"):
            FaultPlan([_SpeciesAdder()], seed=0).materialize(
                network, SCHEME)

    def test_negative_initial_is_rejected(self, network):
        with pytest.raises(FaultError, match="non-negative"):
            FaultPlan([_NegativeInitial()], seed=0).materialize(
                network, SCHEME)

    def test_non_model_is_rejected(self):
        with pytest.raises(FaultError, match="not a fault model"):
            FaultPlan(["leak"], seed=0)

    def test_input_network_is_never_mutated(self, network):
        before = network.n_reactions
        FaultPlan([Leak(rate=1e-3), Dilution(rate=1e-4)],
                  seed=0).materialize(network, SCHEME)
        assert network.n_reactions == before

    def test_same_seed_same_perturbation(self, network):
        models = (RateMismatch(0.25), CopyNumberNoise(0.1))
        a = FaultPlan(models, seed=42).materialize(network, SCHEME)
        b = FaultPlan(models, seed=42).materialize(network, SCHEME)
        np.testing.assert_array_equal(a.rates, b.rates)
        np.testing.assert_array_equal(a.initial, b.initial)

    def test_different_seed_different_perturbation(self, network):
        models = (RateMismatch(0.25),)
        a = FaultPlan(models, seed=1).materialize(network, SCHEME)
        b = FaultPlan(models, seed=2).materialize(network, SCHEME)
        assert not np.array_equal(a.rates, b.rates)

    def test_caller_rates_extended_for_fault_reactions(self, network):
        rates = network.rate_vector(SCHEME) * 2.0
        setup = FaultPlan([Leak(rate=1e-3)], seed=0).materialize(
            network, SCHEME, rates=rates)
        assert setup.rates.shape == (setup.network.n_reactions,)
        np.testing.assert_array_equal(setup.rates[:rates.size], rates)

    def test_empty_plan_is_inactive(self, network):
        plan = FaultPlan([], seed=0)
        assert not plan.active
        setup = plan.materialize(network, SCHEME)
        assert setup.rates is None
        assert setup.network.n_reactions == network.n_reactions
