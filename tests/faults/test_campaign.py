"""Campaigns, margins, and the bitwise serial==parallel contract."""

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (CounterCircuit, FaultPlan, RateMismatch,
                          RobustnessCampaign, default_suite, make_circuit,
                          robustness_margin)


class TestCircuits:
    def test_unknown_circuit_raises(self):
        with pytest.raises(FaultError, match="unknown circuit"):
            make_circuit("perpetuum")

    def test_counter_nominal_trial_is_clean(self):
        adapter = CounterCircuit(n_bits=2, n_pulses=4)
        score = adapter.evaluate(adapter.nominal_scheme(),
                                 rng=np.random.default_rng(0))
        assert score.ok
        assert score.bit_errors == 0
        assert score.classification is None

    def test_counter_compressed_scheme_fails_as_r104(self):
        # The pinned readout schedule: at separation 5 the carries are
        # still in flight when the synchronous world reads the bits.
        adapter = CounterCircuit(n_bits=3)
        nominal = adapter.nominal_scheme()
        scheme = nominal.compressed(nominal.separation / 5.0)
        score = adapter.evaluate(scheme, rng=np.random.default_rng(0))
        assert not score.ok
        assert score.bit_errors > 0
        assert score.boundary_residual > 0
        assert score.classification == "REPRO-R104"

    def test_counter_trial_is_seed_deterministic(self):
        adapter = CounterCircuit(n_bits=2, n_pulses=4)
        scores = []
        for _ in range(2):
            plan = FaultPlan([RateMismatch(0.3)], seed=5)
            scores.append(adapter.evaluate(
                adapter.nominal_scheme(), plan=plan,
                rng=np.random.default_rng(6)))
        assert scores[0] == scores[1]


class TestCampaign:
    def test_serial_and_parallel_are_bitwise_identical(self):
        kwargs = dict(circuit="counter", trials=3, seed=0,
                      circuit_kwargs={"n_bits": 2, "n_pulses": 4},
                      measure_margin=False)
        serial = RobustnessCampaign(n_workers=1, **kwargs).run()
        parallel = RobustnessCampaign(n_workers=4, **kwargs).run()
        assert serial.to_dict() == parallel.to_dict()

    def test_default_counter_suite_is_clean_at_nominal(self):
        result = RobustnessCampaign(
            circuit="counter", trials=3, seed=0, n_workers=1,
            circuit_kwargs={"n_bits": 2, "n_pulses": 4},
            measure_margin=False).run()
        assert result.failures == 0
        assert result.bit_errors == 0
        # One stats row per model plus the baseline.
        assert len(result.stats) == len(default_suite("counter")) + 1
        assert result.stats[0].model == "baseline"

    def test_render_mentions_the_headline_numbers(self):
        result = RobustnessCampaign(
            circuit="counter", trials=2, seed=0, n_workers=1,
            circuit_kwargs={"n_bits": 2, "n_pulses": 4},
            measure_margin=False).run()
        text = result.render()
        assert "failures: 0" in text
        assert "baseline" in text

    def test_to_dict_is_json_clean(self):
        import json

        result = RobustnessCampaign(
            circuit="counter", trials=2, seed=0, n_workers=1,
            circuit_kwargs={"n_bits": 2, "n_pulses": 4},
            margin_trials=1).run()
        json.dumps(result.to_dict())  # no inf/nan leaks

    def test_zero_trials_rejected(self):
        with pytest.raises(FaultError, match="at least one trial"):
            RobustnessCampaign(trials=0)

    def test_unknown_default_suite(self):
        with pytest.raises(FaultError, match="no default fault suite"):
            default_suite("perpetuum")


class TestMargin:
    def test_counter_margin_is_finite_and_classified(self):
        result = robustness_margin(CounterCircuit(n_bits=3), seed=0,
                                   trials=1)
        assert np.isfinite(result.margin)
        assert 2.0 < result.margin < 1000.0
        assert result.failed_at < result.margin
        assert result.margin / result.failed_at <= 1.5 + 1e-9
        assert result.classification == "REPRO-R104"
        assert result.n_evaluations <= 24

    def test_margin_is_seed_deterministic(self):
        a = robustness_margin(CounterCircuit(n_bits=2), seed=3, trials=1)
        b = robustness_margin(CounterCircuit(n_bits=2), seed=3, trials=1)
        assert a.to_dict() == b.to_dict()

    def test_passing_floor_reports_margin_at_lo(self):
        # With a floor the counter still satisfies, the search reports
        # the floor itself and no failure bracket.
        result = robustness_margin(CounterCircuit(n_bits=2, n_pulses=3),
                                   seed=0, trials=1,
                                   separation_lo=900.0)
        assert result.margin == pytest.approx(900.0)
        assert np.isnan(result.failed_at)
        assert result.classification is None

    def test_bad_bracket_rejected(self):
        with pytest.raises(FaultError, match="separation_lo"):
            robustness_margin(CounterCircuit(), separation_lo=2000.0)
        with pytest.raises(FaultError, match="tolerance"):
            robustness_margin(CounterCircuit(), tolerance=0.5)
