"""Property-based tests (hypothesis) for core invariants."""

from fractions import Fraction

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crn.network import Network
from repro.crn.parser import parse_network
from repro.crn.reaction import Reaction
from repro.crn.simulation.ssa import StochasticSimulator
from repro.core.dfg import SignalFlowGraph

_NAMES = st.sampled_from(list("ABCDEFG"))
_COEFF = st.integers(min_value=1, max_value=3)
_SIDE = st.dictionaries(_NAMES, _COEFF, min_size=0, max_size=3)


@st.composite
def reactions(draw):
    reactants = draw(_SIDE)
    products = draw(_SIDE)
    if not reactants and not products:
        products = {"A": 1}
    rate = draw(st.sampled_from(["fast", "slow", 0.5, 2.0]))
    return Reaction(reactants, products, rate)


@st.composite
def networks(draw):
    network = Network("prop")
    for reaction in draw(st.lists(reactions(), min_size=1, max_size=6)):
        network.add_reaction(reaction)
    for name in draw(st.lists(_NAMES, max_size=4, unique=True)):
        if name in network:
            network.set_initial(name, float(draw(
                st.integers(min_value=0, max_value=20))))
    return network


class TestParserRoundTrip:
    @given(networks())
    @settings(max_examples=50, deadline=None)
    def test_to_text_parse_identity(self, network):
        parsed = parse_network(network.to_text())
        assert parsed.species_names == network.species_names
        assert parsed.reactions == network.reactions
        assert parsed.initial == network.initial


class TestStoichiometry:
    @given(reactions())
    @settings(max_examples=100, deadline=None)
    def test_net_change_consistent_with_matrices(self, reaction):
        network = Network()
        network.add_reaction(reaction)
        stoich = network.stoichiometry_matrix()[:, 0]
        delta = reaction.net_change()
        for species in network.species:
            index = network.species_index(species)
            assert stoich[index] == delta.get(species, 0)

    @given(networks())
    @settings(max_examples=30, deadline=None)
    def test_conservation_laws_annihilate_stoichiometry(self, network):
        laws = network.conservation_laws()
        stoich = network.stoichiometry_matrix()
        if laws.size:
            assert np.allclose(laws @ stoich, 0.0, atol=1e-8)


class TestSsaInvariants:
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_closed_cycle_conserves_counts(self, total, seed):
        network = Network()
        network.add("A", "B", "slow")
        network.add("B", "C", "fast")
        network.add("C", "A", 2.0)
        network.set_initial("A", float(total))
        trajectory = StochasticSimulator(network, seed=seed).simulate(
            5.0, n_samples=10)
        sums = trajectory["A"] + trajectory["B"] + trajectory["C"]
        assert np.all(sums == total)

    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_counts_never_negative(self, x0, seed):
        network = Network()
        network.add({"A": 2}, "B", "fast")
        network.add("B", None, "slow")
        network.set_initial("A", float(x0))
        trajectory = StochasticSimulator(network, seed=seed).simulate(
            10.0, n_samples=20)
        assert trajectory.states.min() >= 0


class TestReferenceSemantics:
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_delay_line_is_pure_delay(self, samples):
        sfg = SignalFlowGraph("line")
        x = sfg.input("x")
        d1 = sfg.delay("d1", source=x)
        d2 = sfg.delay("d2", source=d1)
        sfg.output("y", d2)
        outputs = sfg.to_matrix().reference_run({"x": samples})["y"]
        expected = [0.0, 0.0] + samples[:-2]
        assert np.allclose(outputs, expected[:len(outputs)])

    @given(st.lists(st.floats(min_value=-50, max_value=50,
                              allow_nan=False), min_size=1, max_size=10),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_gain_scales_exactly(self, samples, p, q):
        sfg = SignalFlowGraph("gain")
        x = sfg.input("x")
        sfg.output("y", sfg.gain(Fraction(p, q), x))
        outputs = sfg.to_matrix().reference_run({"x": samples})["y"]
        assert np.allclose(outputs, [s * p / q for s in samples])

    @given(st.lists(st.floats(min_value=0, max_value=50,
                              allow_nan=False), min_size=3, max_size=10))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_iir_bibo_bounded(self, samples):
        """|feedback| < 1 implies bounded output for bounded input."""
        sfg = SignalFlowGraph("iir")
        x = sfg.input("x")
        s = sfg.delay("s")
        y = sfg.add(sfg.gain(Fraction(1, 2), x),
                    sfg.gain(Fraction(1, 2), s))
        sfg.output("y", y)
        sfg.connect(y, s)
        outputs = sfg.to_matrix().reference_run({"x": samples})["y"]
        bound = max(samples) if samples else 0.0
        assert all(value <= bound + 1e-9 for value in outputs)


class TestEffectiveValueAccounting:
    @given(st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=10, deadline=None)
    def test_one_shot_transfer_conserves_effective_mass(self, initial):
        """Mass accounting through one dimer-accelerated transfer is exact
        for any initial quantity."""
        from repro.crn.simulation.ode import OdeSimulator
        from repro.core.analysis import effective_series
        from repro.core.memory import build_delay_chain

        network, line, _ = build_delay_chain(n=1, initial=initial)
        trajectory = OdeSimulator(network).simulate(10.0, n_samples=20)
        total = sum(effective_series(trajectory, name)[-1]
                    for name in line.signal_species())
        assert total == np.float64(total)
        assert abs(total - initial) / initial < 1e-4


class TestRisingEdgeInvariants:
    @staticmethod
    def _trajectory(fractions):
        from repro.crn.simulation.result import Trajectory

        series = np.asarray(fractions, dtype=float)
        states = np.column_stack([series, 1.0 - series,
                                  np.zeros_like(series)])
        return Trajectory(np.arange(len(series), dtype=float), states,
                          ["C_red", "C_green", "C_blue"])

    @staticmethod
    def _refined(fractions):
        """Insert the midpoint of every linear segment (doubles the
        sample rate without changing the piecewise-linear waveform)."""
        from repro.crn.simulation.result import Trajectory

        series = np.asarray(fractions, dtype=float)
        times = np.arange(len(series), dtype=float)
        fine_times = np.sort(np.concatenate(
            [times, (times[:-1] + times[1:]) / 2.0]))
        fine = np.interp(fine_times, times, series)
        states = np.column_stack([fine, 1.0 - fine,
                                  np.zeros_like(fine)])
        return Trajectory(fine_times, states,
                          ["C_red", "C_green", "C_blue"])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_edges_strictly_increasing(self, fractions):
        from repro.core.clock import MolecularClock

        edges = MolecularClock(mass=1.0).rising_edges(
            self._trajectory(fractions))
        assert np.all(np.diff(edges) > 0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_edges_invariant_under_linear_refinement(self, fractions):
        """Resampling the same piecewise-linear waveform at twice the
        rate must yield the same edge count and (interpolated) times --
        the old sample-index scan failed both."""
        from repro.core.clock import MolecularClock

        clock = MolecularClock(mass=1.0)
        coarse = clock.rising_edges(self._trajectory(fractions))
        fine = clock.rising_edges(self._refined(fractions))
        assert len(coarse) == len(fine)
        assert np.allclose(coarse, fine, atol=1e-9)
