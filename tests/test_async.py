"""Tests for the self-timed (asynchronous) pipeline."""

import pytest

from repro.asynchronous import SelfTimedPipeline
from repro.errors import SimulationError


class TestSelfTimedPipeline:
    @pytest.mark.parametrize("gating", ["consuming", "catalytic"])
    def test_samples_arrive_in_order(self, gating):
        pipeline = SelfTimedPipeline(n=2, gating=gating)
        run = pipeline.run([20.0, 10.0, 30.0])
        assert len(run.arrived) == 3
        # ~arrival_fraction of each sample is acknowledged per wave.
        for injected, arrived in zip(run.injected, run.arrived):
            assert arrived == pytest.approx(injected, rel=0.06)

    def test_latency_is_data_driven(self):
        pipeline = SelfTimedPipeline(n=2, gating="catalytic")
        run = pipeline.run([15.0, 15.0])
        assert run.mean_latency > 0
        assert run.arrival_times[0] < run.arrival_times[1]

    def test_longer_chain_higher_latency(self):
        short = SelfTimedPipeline(n=1, gating="catalytic")
        long = SelfTimedPipeline(n=3, gating="catalytic")
        lat_short = short.run([20.0]).arrival_times[0]
        lat_long = long.run([20.0]).arrival_times[0]
        assert lat_long > lat_short

    def test_negative_sample_rejected(self):
        pipeline = SelfTimedPipeline(n=1)
        with pytest.raises(SimulationError):
            pipeline.run([-1.0])

    def test_record_trajectory(self):
        pipeline = SelfTimedPipeline(n=1, gating="catalytic")
        run = pipeline.run([10.0], record=True)
        assert run.trajectory is not None
        assert run.trajectory["Y"][-1] > 9.0

    def test_max_error_metric(self):
        pipeline = SelfTimedPipeline(n=1, gating="catalytic")
        run = pipeline.run([10.0, 20.0])
        assert run.max_error() < 1.5
