"""Tests for the exact-stochastic machine driver.

These validate the library's central discreteness claims: the synthesized
network runs natively under SSA (integer counts, absence = literally zero
molecules) and matches the discrete-time reference to within a few
molecules.
"""

import pytest

from repro.core.stochastic_machine import StochasticMachine
from repro.errors import SynthesisError


@pytest.fixture(scope="module")
def ma2_ssa_run():
    from fractions import Fraction

    from repro.core.dfg import SignalFlowGraph

    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    machine = StochasticMachine(sfg, seed=0)
    run = machine.run({"x": [40, 80, 20, 60]})
    return machine, run


class TestExactness:
    def test_matches_reference_to_molecules(self, ma2_ssa_run):
        _, run = ma2_ssa_run
        assert run.max_error() <= 2.0

    def test_outputs_are_integers(self, ma2_ssa_run):
        _, run = ma2_ssa_run
        for value in run.outputs["y"]:
            assert value == int(value)

    def test_state_history_integral(self, ma2_ssa_run):
        _, run = ma2_ssa_run
        assert run.state_history[1]["d1"] == 40

    def test_boundaries_progress(self, ma2_ssa_run):
        _, run = ma2_ssa_run
        import numpy as np

        assert np.all(np.diff(run.boundary_times) > 0)


class TestRecovery:
    def test_straggler_flush_counted(self):
        """Some seeds wedge on single-molecule stragglers; the driver
        must recover with a bounded number of flushes and bounded
        error."""
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("ma2b")
        x = sfg.input("x")
        d = sfg.delay("d1", source=x)
        sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                                sfg.gain(Fraction(1, 2), d)))
        machine = StochasticMachine(sfg, seed=1)
        run = machine.run({"x": [40, 80, 20, 60]})
        assert run.max_error() <= 4.0
        assert machine.flush_events <= 6


class TestApi:
    def test_non_integer_samples_rejected(self, ma2_ssa_run):
        machine, _ = ma2_ssa_run
        with pytest.raises(SynthesisError):
            machine.run({"x": [1.5]})

    def test_wrong_stream_names_rejected(self, ma2_ssa_run):
        machine, _ = ma2_ssa_run
        with pytest.raises(SynthesisError):
            machine.run({"z": [1]})

    def test_generation_seed_is_brisk(self, ma2_ssa_run):
        machine, _ = ma2_ssa_run
        assert machine.scheme.resolve("gen") == pytest.approx(
            machine.scheme.slow)
