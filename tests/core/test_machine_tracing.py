"""Telemetry-instrumented machine runs: spans, metrics, bookkeeping.

The acceptance spine of the observability layer: a traced moving-average
run must produce properly nested cycle > phase > transfer spans, the
run's own cycle bookkeeping must agree with the trace (single source of
truth), and a healthy run must stay free of runtime diagnostics.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.dfg import SignalFlowGraph
from repro.core.machine import SynchronousMachine
from repro.obs import MemorySink, MetricsRegistry, SpanRecord, Tracer


def two_tap_ma() -> SignalFlowGraph:
    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    return sfg


@pytest.fixture(scope="module")
def traced_run():
    """One traced + metered run shared by the assertions below."""
    tracer = Tracer(MemorySink())
    metrics = MetricsRegistry()
    machine = SynchronousMachine(two_tap_ma(), tracer=tracer,
                                 metrics=metrics)
    run = machine.run({"x": [10.0, 20.0, 40.0]})
    return run, tracer.sink.records, metrics


def _spans(records, prefix):
    return [r for r in records if isinstance(r, SpanRecord)
            and r.name.startswith(prefix)]


class TestSpanNesting:
    def test_cycle_spans_match_run(self, traced_run):
        run, records, _ = traced_run
        cycles = _spans(records, "cycle")
        assert len(cycles) == run.n_cycles == 4
        for record, span in zip(cycles, run.cycles):
            assert record.t0 == pytest.approx(span.t0)
            assert record.t1 == pytest.approx(span.t1)
            assert record.args["cycle"] == span.index

    def test_phases_nest_in_cycles(self, traced_run):
        _, records, _ = traced_run
        cycles = _spans(records, "cycle")
        phases = _spans(records, "phase:")
        assert {p.name for p in phases} == \
            {"phase:red", "phase:green", "phase:blue"}
        for phase in phases:
            assert any(cycle.contains(phase) for cycle in cycles), \
                f"{phase.name} [{phase.t0}, {phase.t1}] not in any cycle"

    def test_transfers_nest_in_phases(self, traced_run):
        _, records, _ = traced_run
        phases = _spans(records, "phase:")
        transfers = _spans(records, "transfer:")
        # All three hand-offs of the rotation appear in a multi-cycle run.
        assert {t.name for t in transfers} >= {
            "transfer:red->green", "transfer:green->blue",
            "transfer:blue->red"}
        for transfer in transfers:
            assert any(phase.contains(transfer) for phase in phases), \
                f"{transfer.name} [{transfer.t0}, {transfer.t1}] " \
                f"not in any phase"

    def test_phases_tile_each_cycle(self, traced_run):
        """Phase spans cover their cycle without overlap."""
        _, records, _ = traced_run
        for cycle in _spans(records, "cycle"):
            inside = sorted((p for p in _spans(records, "phase:")
                             if cycle.contains(p)), key=lambda p: p.t0)
            assert inside
            covered = sum(p.duration for p in inside)
            assert covered == pytest.approx(cycle.duration, rel=1e-6)
            for a, b in zip(inside, inside[1:]):
                assert b.t0 == pytest.approx(a.t1, abs=1e-9)


class TestRunBookkeeping:
    def test_boundary_times_derived_from_spans(self, traced_run):
        run, _, _ = traced_run
        expected = [run.cycles[0].t0] + [s.t1 for s in run.cycles]
        assert np.allclose(run.boundary_times, expected)
        assert run.boundary_times[0] == 0.0
        assert np.all(np.diff(run.boundary_times) > 0)

    def test_mean_cycle_time(self, traced_run):
        run, _, _ = traced_run
        durations = [span.duration for span in run.cycles]
        assert run.mean_cycle_time == pytest.approx(np.mean(durations))

    def test_cycle_boundary_regression_pin(self, traced_run):
        """Pin the default-scheme ma2 cycle timing (regression guard:
        a protocol change that shifts boundaries must be deliberate)."""
        run, _, _ = traced_run
        assert run.mean_cycle_time == pytest.approx(1.84, abs=0.15)
        assert np.std([s.duration for s in run.cycles]) \
            / run.mean_cycle_time < 0.10

    def test_wall_time_recorded(self, traced_run):
        run, _, _ = traced_run
        assert all(span.wall > 0 for span in run.cycles)


class TestMetricsAndHealth:
    def test_machine_metrics_populated(self, traced_run):
        run, _, metrics = traced_run
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["machine.cycles"] == run.n_cycles
        assert snapshot["counters"]["ode.calls"] > 0
        assert snapshot["counters"]["ode.nfev"] > 0
        cycle_hist = snapshot["histograms"]["machine.cycle_sim_time"]
        assert cycle_hist["count"] == run.n_cycles
        assert cycle_hist["mean"] == pytest.approx(run.mean_cycle_time)
        for color in ("red", "green", "blue"):
            name = f"machine.phase_sim_time[{color}]"
            assert snapshot["histograms"][name]["count"] > 0

    def test_healthy_run_has_no_diagnostics(self, traced_run):
        run, records, _ = traced_run
        assert run.diagnostics == []
        assert not any(getattr(r, "code", None) for r in records
                       if not isinstance(r, SpanRecord))

    def test_outputs_still_correct_under_tracing(self, traced_run):
        run, _, _ = traced_run
        assert run.max_error() < 0.3


class TestUntracedRuns:
    def test_untraced_run_records_spans_too(self):
        """Cycle bookkeeping does not depend on telemetry being on."""
        machine = SynchronousMachine(two_tap_ma())
        run = machine.run({"x": [10.0]})
        assert run.n_cycles == 2
        assert run.mean_cycle_time > 0
        # Wall timing is telemetry; the untraced path skips the clock.
        assert all(span.wall == 0.0 for span in run.cycles)
        assert run.diagnostics == []
