"""Integration tests for delay elements and chains (companion Fig 1)."""

import numpy as np
import pytest

from repro.crn.simulation.ode import OdeSimulator
from repro.core.analysis import effective_series, effective_value
from repro.core.memory import DelayElement, DelayLine, build_delay_chain
from repro.errors import NetworkError


class TestDelayElement:
    def test_species_names_and_colors(self):
        element = DelayElement("d1")
        red, green, blue = element.species()
        assert (red.name, green.name, blue.name) == \
            ("R_d1", "G_d1", "B_d1")
        assert (red.color, green.color, blue.color) == \
            ("red", "green", "blue")


class TestDelayLine:
    def test_needs_elements(self):
        with pytest.raises(NetworkError):
            DelayLine(0)

    def test_signal_species_order(self):
        line = DelayLine(2)
        assert line.signal_species() == \
            ["X", "R_d1", "G_d1", "B_d1", "R_d2", "G_d2", "B_d2", "Y"]

    def test_drain_output_uncolors_terminal(self):
        assert DelayLine(1).output.color == "red"
        assert DelayLine(1, drain_output=True).output.color is None


class TestOneShotTransfer:
    """The companion abstract's experiment, dimer-accelerated."""

    @pytest.fixture(scope="class")
    def run(self):
        network, line, _ = build_delay_chain(n=2, initial=50.0)
        trajectory = OdeSimulator(network).simulate(40.0, n_samples=600)
        return network, line, trajectory

    def test_full_quantity_arrives(self, run):
        _, _, trajectory = run
        assert effective_value(trajectory, "Y") == pytest.approx(50.0,
                                                                 rel=1e-3)

    def test_intermediate_stages_empty_at_end(self, run):
        _, line, trajectory = run
        for name in line.signal_species()[:-1]:
            assert effective_value(trajectory, name) < 0.2

    def test_stage_order_is_respected(self, run):
        """Each stage peaks strictly after its predecessor."""
        _, line, trajectory = run
        peaks = [trajectory.times[np.argmax(effective_series(trajectory,
                                                             name))]
                 for name in line.signal_species()]
        assert all(b > a for a, b in zip(peaks, peaks[1:]))

    def test_transfers_are_crisp(self, run):
        """Each intermediate holds nearly the full quantity at its peak --
        the 'very crisp transfer of signal values' of the companion."""
        _, line, trajectory = run
        for name in line.signal_species()[1:-1]:
            peak = effective_series(trajectory, name).max()
            assert peak > 40.0, f"{name} peaked at only {peak:.1f}"

    def test_mass_never_exceeds_initial(self, run):
        _, line, trajectory = run
        total = sum(effective_series(trajectory, name)
                    for name in line.signal_species())
        assert total.max() < 50.0 * 1.001


class TestChainLengths:
    @pytest.mark.parametrize("n", [1, 3])
    def test_arrival_for_various_lengths(self, n):
        network, _, _ = build_delay_chain(n=n, initial=30.0)
        trajectory = OdeSimulator(network).simulate(
            25.0 * n, n_samples=200)
        assert effective_value(trajectory, "Y") == pytest.approx(30.0,
                                                                 rel=1e-2)
