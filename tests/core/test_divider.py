"""Tests for the iterative division construct."""

import pytest

from repro.core.iterative import build_divider
from repro.crn.simulation.ssa import StochasticSimulator
from repro.errors import NetworkError


def _divide(x, y, seed=None, t=400.0):
    network, q, r = build_divider(x, y)
    counts = StochasticSimulator(network,
                                 seed=seed if seed is not None
                                 else x * 13 + y).final_counts(t)
    return counts[q], counts[r]


class TestDivider:
    @pytest.mark.parametrize("x,y", [
        (13, 4), (12, 4), (3, 7), (0, 5), (20, 1), (9, 3), (17, 5),
        (1, 1), (7, 7), (25, 6)])
    def test_quotient_and_remainder(self, x, y):
        quotient, remainder = _divide(x, y)
        assert quotient == x // y
        assert remainder == x % y

    def test_multiple_seeds(self):
        for seed in range(4):
            quotient, remainder = _divide(11, 3, seed=seed)
            assert (quotient, remainder) == (3, 2)

    def test_zero_divisor_rejected(self):
        with pytest.raises(NetworkError):
            build_divider(5, 0)

    def test_non_integer_rejected(self):
        with pytest.raises(NetworkError):
            build_divider(5.5, 2)

    def test_x_consumed(self):
        network, _, _ = build_divider(10, 3)
        counts = StochasticSimulator(network, seed=0).final_counts(400.0)
        assert counts["X"] == 0

    def test_divisor_reduced_by_remainder(self):
        """Documented semantics: Y ends as Y - R."""
        network, _, _ = build_divider(10, 3)
        counts = StochasticSimulator(network, seed=0).final_counts(400.0)
        assert counts["Y"] == 3 - (10 % 3)
