"""Adaptive clocking: event-driven cycle advance vs the fixed boundary.

The contract under test is the tentpole claim: under
``MachineOptions(clocking="adaptive")`` a machine ends each cycle at the
*settling event* instead of the fixed clock boundary, and the digital
outputs are bitwise identical to fixed-clock operation once quantized to
the design's value lattice -- for every built-in design and for both
oscillator chemistries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.filters import iir_first_order, moving_average
from repro.core.dfg import SignalFlowGraph
from repro.core.machine import MachineOptions, SynchronousMachine

#: All built-in outputs land on the half-integer lattice (gains are
#: halves); deviations between modes stay under the protocol quantization
#: (3*theta ~ 0.09), so rounding to the lattice recovers exact digits.
LATTICE = 0.5


def accumulator() -> SignalFlowGraph:
    """y[n] = x[n] + y[n-1]: the machine-level analogue of the counter.

    Built by hand because :func:`iir_first_order` (rightly) rejects
    ``|feedback| >= 1`` as BIBO-unstable; over a short finite stream the
    growth is the point.
    """
    sfg = SignalFlowGraph("accumulator")
    x = sfg.input("x")
    s = sfg.delay("s")
    y = sfg.add(x, s)
    sfg.output("y", y)
    sfg.connect(y, s)
    return sfg


def _quantized(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=float) / LATTICE)


CASES = [
    pytest.param(accumulator, {"x": [1.0, 1.0, 1.0, 1.0, 1.0]},
                 id="accumulator"),
    pytest.param(lambda: moving_average(2), {"x": [8.0, 4.0, 6.0, 2.0]},
                 id="ma2"),
    pytest.param(iir_first_order, {"x": [8.0, 8.0, 4.0, 4.0]},
                 id="iir1"),
]


class TestDigitalEquivalence:
    @pytest.mark.parametrize("builder,samples", CASES)
    @pytest.mark.parametrize("oscillator", ["molecular", "relaxation"])
    def test_adaptive_matches_reference_bitwise(self, builder, samples,
                                                oscillator):
        options = MachineOptions(clocking="adaptive",
                                 oscillator=oscillator)
        run = SynchronousMachine(builder(), options=options).run(samples)
        for name, measured in run.outputs.items():
            reference = _quantized(run.reference[name])
            assert np.array_equal(
                _quantized(measured)[:len(reference)], reference)

    @pytest.mark.parametrize("builder,samples", CASES)
    def test_adaptive_matches_fixed_bitwise(self, builder, samples):
        runs = {}
        for clocking in ("fixed", "adaptive"):
            machine = SynchronousMachine(
                builder(), options=MachineOptions(clocking=clocking))
            runs[clocking] = machine.run(samples)
        for name in runs["fixed"].outputs:
            fixed = _quantized(runs["fixed"].outputs[name])
            adaptive = _quantized(runs["adaptive"].outputs[name])
            n = len(runs["fixed"].reference[name])
            assert np.array_equal(adaptive[:n], fixed[:n])

    def test_relaxation_adaptive_recovers_fixed_decay(self):
        # Under the relaxation oscillator the fixed boundary leaks a
        # little signal mass per cycle; on a *growing* signal (the
        # accumulator) that compounds past the lattice half-step, while
        # the adaptive landing step keeps the error an order of
        # magnitude smaller.
        errors = {}
        for clocking in ("fixed", "adaptive"):
            options = MachineOptions(clocking=clocking,
                                     oscillator="relaxation")
            run = SynchronousMachine(accumulator(),
                                     options=options).run(
                {"x": [1.0, 1.0, 1.0, 1.0, 1.0]})
            errors[clocking] = run.max_error()
        assert errors["adaptive"] < errors["fixed"] / 2

    @pytest.mark.parametrize("clocking", ["fixed", "adaptive"])
    def test_analog_error_stays_under_quantization(self, clocking):
        machine = SynchronousMachine(
            moving_average(2), options=MachineOptions(clocking=clocking))
        run = machine.run({"x": [8.0, 4.0, 6.0, 2.0]})
        assert run.max_error() < machine.blue_tolerance


class TestAdaptiveTiming:
    def test_adaptive_cycles_are_shorter(self):
        durations = {}
        for clocking in ("fixed", "adaptive"):
            machine = SynchronousMachine(
                moving_average(2),
                options=MachineOptions(clocking=clocking))
            run = machine.run({"x": [8.0, 4.0, 6.0, 2.0]})
            durations[clocking] = run.mean_cycle_time
        assert durations["adaptive"] < durations["fixed"]

    def test_adaptive_estimates_keyed_separately(self):
        machine = SynchronousMachine(
            moving_average(2),
            options=MachineOptions(clocking="adaptive"))
        machine.run({"x": [8.0, 4.0]})
        assert "settle" in machine._segment_estimates
        assert "boundary" not in machine._segment_estimates


class TestStepperParity:
    def test_stepper_matches_run_under_adaptive(self):
        samples = [8.0, 4.0, 6.0, 2.0]
        options = MachineOptions(clocking="adaptive")
        run = SynchronousMachine(moving_average(2),
                                 options=options).run({"x": samples})
        stepper = SynchronousMachine(moving_average(2),
                                     options=options).stepper()
        stepped = [stepper.step({"x": value})["y"] for value in samples]
        stepped.append(stepper.flush()["y"])
        assert np.allclose(stepped, run.outputs["y"][:len(stepped)],
                           atol=1e-6)


class TestStochasticAdaptive:
    @pytest.mark.parametrize("clocking", ["fixed", "adaptive"])
    def test_digital_outputs_exact(self, clocking):
        from repro.core.stochastic_machine import StochasticMachine

        machine = StochasticMachine(
            moving_average(2), seed=0,
            options=MachineOptions(clocking=clocking))
        run = machine.run({"x": [8.0, 4.0, 6.0, 2.0, 6.0, 4.0]})
        assert run.max_error() == 0.0


class TestGlitchMargin:
    """Adaptive clocking *widens* the clock-glitch margin.

    A fixed boundary needs the glitched clock to re-accumulate all the
    way to ``boundary_fraction`` before the watchdog horizon; the
    settling event only needs ``settle_fraction`` of nominal red mass,
    so the same glitch that stalls a fixed-clock run completes
    adaptively.  (Measured: the ma machine survives fraction 0.05 but
    fails 0.10+ under fixed clocking, yet survives through 0.40
    adaptively.)
    """

    @staticmethod
    def _score(clocking: str, fraction: float):
        from repro.faults.circuits import _make_ma
        from repro.faults.models import ClockGlitch, FaultPlan

        circuit = _make_ma(options=MachineOptions(clocking=clocking))
        plan = FaultPlan((ClockGlitch(cycle=2, fraction=fraction),))
        return circuit.evaluate(circuit.nominal_scheme(), plan=plan)

    def test_fixed_survives_mild_glitch(self):
        assert self._score("fixed", 0.05).ok

    def test_fixed_fails_moderate_glitch(self):
        assert not self._score("fixed", 0.15).ok

    def test_adaptive_survives_moderate_glitch(self):
        score = self._score("adaptive", 0.15)
        assert score.ok, score.detail

    def test_adaptive_survives_deep_glitch(self):
        score = self._score("adaptive", 0.30)
        assert score.ok, score.detail
