"""Unit tests for the three-phase transfer protocol."""

import pytest

from repro.crn.network import Network
from repro.crn.species import Species
from repro.core.phases import (CATALYTIC, CONSUMING, DIMER, GATED, NONE,
                               PhaseProtocol, rational_gain)
from repro.errors import NetworkError


class TestProtocolConfiguration:
    def test_default_is_catalytic_without_acceleration(self):
        protocol = PhaseProtocol()
        assert protocol.gating == CATALYTIC
        assert protocol.acceleration == NONE

    def test_consuming_defaults_to_dimer(self):
        protocol = PhaseProtocol(gating=CONSUMING)
        assert protocol.acceleration == DIMER

    def test_unknown_gating_rejected(self):
        with pytest.raises(NetworkError):
            PhaseProtocol(gating="psychic")

    def test_unknown_acceleration_rejected(self):
        with pytest.raises(NetworkError):
            PhaseProtocol(acceleration="warp")

    def test_generation_rate_defaults_per_mode(self):
        assert PhaseProtocol().generation_rate == "gen"
        assert PhaseProtocol(gating=CONSUMING).generation_rate == "slow"


class TestIndicators:
    def test_names_match_companion(self):
        protocol = PhaseProtocol()
        assert protocol.indicator_name("red") == "r"
        assert protocol.indicator_name("green") == "g"
        assert protocol.indicator_name("blue") == "b"

    def test_prefix(self):
        protocol = PhaseProtocol(prefix="sub_")
        assert protocol.indicator_name("red") == "sub_r"

    @pytest.mark.parametrize("source,gate", [
        ("red", "b"), ("green", "r"), ("blue", "g")])
    def test_gate_assignment(self, source, gate):
        # red->green waits for blue to clear, etc.
        assert PhaseProtocol().gate_indicator(source).name == gate

    def test_unknown_color(self):
        with pytest.raises(NetworkError):
            PhaseProtocol().indicator_name("mauve")


class TestAddTransfer:
    def test_products_auto_colored(self):
        network = Network()
        protocol = PhaseProtocol()
        protocol.add_transfer(network, Species("R1", color="red"), "G1")
        assert network.get_species("G1").color == "green"

    def test_wrong_product_color_rejected(self):
        network = Network()
        network.add_species(Species("B1", color="blue"))
        protocol = PhaseProtocol()
        with pytest.raises(NetworkError):
            protocol.add_transfer(network, Species("R1", color="red"), "B1")

    def test_uncolored_source_rejected(self):
        with pytest.raises(NetworkError):
            PhaseProtocol().add_transfer(Network(), "X", "Y")

    def test_catalytic_transfer_returns_gate(self):
        network = Network()
        PhaseProtocol().add_transfer(network,
                                     Species("R1", color="red"), "G1")
        reaction = network.reactions[0]
        assert reaction.is_catalytic_in("b")

    def test_consuming_transfer_consumes_gate(self):
        network = Network()
        protocol = PhaseProtocol(gating=CONSUMING, acceleration=NONE)
        protocol.add_transfer(network, Species("R1", color="red"), "G1")
        reaction = network.reactions[0]
        assert Species("b") in reaction.reactants
        assert Species("b") not in reaction.products

    def test_dimer_acceleration_reactions(self):
        network = Network()
        protocol = PhaseProtocol(gating=CONSUMING, acceleration=DIMER)
        protocol.add_transfer(network, Species("R1", color="red"), "G1")
        labels = [str(r) for r in network.reactions]
        assert any("I_G1" in text and "2 G1" in text for text in labels)
        # dimer pair + fire + seed = 4 reactions
        assert network.n_reactions == 4

    def test_gated_acceleration_reaction(self):
        network = Network()
        protocol = PhaseProtocol(gating=CONSUMING, acceleration=GATED)
        protocol.add_transfer(network, Species("R1", color="red"), "G1")
        accel = network.reactions[-1]
        assert accel.is_catalytic_in("b")
        assert accel.reactants[Species("G1")] == 1
        assert accel.products[Species("G1")] == 2

    def test_consume_stoichiometry(self):
        network = Network()
        protocol = PhaseProtocol()
        protocol.add_transfer(network, Species("G1", color="green"),
                              {"B1": 3}, consume=2)
        reaction = network.reactions[0]
        assert reaction.reactants[Species("G1")] == 2
        assert reaction.products[Species("B1")] == 3

    def test_invalid_consume(self):
        with pytest.raises(NetworkError):
            PhaseProtocol().add_transfer(Network(),
                                         Species("R", color="red"),
                                         "G", consume=0)

    def test_transfer_after_finalize_rejected(self):
        network = Network()
        protocol = PhaseProtocol()
        protocol.add_transfer(network, Species("R", color="red"), "G")
        protocol.finalize(network)
        with pytest.raises(NetworkError):
            protocol.add_transfer(network, Species("G", color="green"), "B")


class TestDrainAndAnnihilation:
    def test_drain_to_uncolored(self):
        network = Network()
        protocol = PhaseProtocol()
        protocol.add_drain(network, Species("B1", color="blue"), "Y")
        assert network.get_species("Y").color is None
        reaction = network.reactions[0]
        assert reaction.is_catalytic_in("g")

    def test_drain_to_colored_rejected(self):
        network = Network()
        network.add_species(Species("Z", color="red"))
        with pytest.raises(NetworkError):
            PhaseProtocol().add_drain(network,
                                      Species("B1", color="blue"), "Z")

    def test_annihilation(self):
        network = Network()
        PhaseProtocol().add_annihilation(network, "P", "N")
        reaction = network.reactions[0]
        assert reaction.products == {}
        assert reaction.rate == "fast"


class TestFinalize:
    def _build(self, gating=CATALYTIC):
        network = Network()
        protocol = PhaseProtocol(gating=gating)
        protocol.add_transfer(network, Species("R1", color="red"), "G1")
        protocol.add_transfer(network, Species("G1", color="green"), "B1")
        protocol.finalize(network)
        return network, protocol

    def test_generation_reactions_emitted(self):
        network, _ = self._build()
        sources = [r for r in network.reactions if not r.reactants]
        assert len(sources) == 3  # one per indicator

    def test_consumption_for_every_colored_species(self):
        network, _ = self._build()
        # R1 consumes r; G1 consumes g; B1 consumes b.
        for species, indicator in [("R1", "r"), ("G1", "g"), ("B1", "b")]:
            matching = [r for r in network.reactions
                        if r.reactants.get(Species(indicator)) == 1
                        and r.is_catalytic_in(species)
                        and r.products.get(Species(indicator), 0) == 0]
            assert matching, f"{species} should consume {indicator}"

    def test_catalytic_mode_has_amplifiers_and_scavengers(self):
        network, _ = self._build()
        amps = [r for r in network.reactions
                if r.products.get(Species("r"), 0) == 2]
        assert amps
        scavengers = [r for r in network.reactions
                      if r.is_catalytic_in("r")
                      and r.reactants.get(Species("R1")) == 1
                      and not r.products.get(Species("R1"))]
        assert scavengers

    def test_consuming_mode_has_no_amplifiers(self):
        network, _ = self._build(gating=CONSUMING)
        amps = [r for r in network.reactions
                if r.products.get(Species("r"), 0) == 2]
        assert not amps

    def test_double_finalize_rejected(self):
        network, protocol = self._build()
        with pytest.raises(NetworkError):
            protocol.finalize(network)


class TestRationalGain:
    def test_exact_fraction_passthrough(self):
        from fractions import Fraction

        assert rational_gain(Fraction(3, 7)) == Fraction(3, 7)

    def test_int(self):
        from fractions import Fraction

        assert rational_gain(2) == Fraction(2)

    def test_float_snapped(self):
        from fractions import Fraction

        assert rational_gain(0.5) == Fraction(1, 2)
        assert rational_gain(0.25) == Fraction(1, 4)


class TestLandingMap:
    def test_clock_blue_lands_on_red(self):
        from repro.core.clock import build_clock
        from repro.core.phases import landing_map

        network, clock, protocol = build_clock(mass=20.0)
        landings = landing_map(network, protocol, "blue")
        assert landings[f"{clock.name}_blue"] == \
            [(f"{clock.name}_red", 1.0)]

    def test_machine_blues_all_land(self):
        from repro.apps.filters import moving_average
        from repro.core.machine import SynchronousMachine
        from repro.core.phases import landing_map

        machine = SynchronousMachine(moving_average(2))
        landings = landing_map(machine.network,
                               machine.circuit.protocol, "blue")
        blues = {s.name for s in machine.network.species_with_color("blue")}
        assert set(landings) == blues
        for targets in landings.values():
            assert sum(ratio for _, ratio in targets) >= 1.0
