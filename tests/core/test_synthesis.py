"""Unit tests for the synthesis flow (structure, not dynamics)."""

from fractions import Fraction

import pytest

from repro.crn.species import Species
from repro.core.dfg import SignalFlowGraph
from repro.core.synthesis import synthesize
from repro.errors import SynthesisError


class TestBasicStructure:
    def test_unsigned_design_single_rail(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        assert not circuit.signed
        assert circuit.rails() == ("p",)
        assert "s_x_p" in circuit.network
        assert "s_x_n" not in circuit.network

    def test_signed_design_dual_rail(self, diff_sfg):
        circuit = synthesize(diff_sfg)
        assert circuit.signed
        assert "s_x_n" in circuit.network
        assert "s_d_n" in circuit.network

    def test_signed_required_for_negative_coeffs(self, diff_sfg):
        with pytest.raises(SynthesisError):
            synthesize(diff_sfg, signed=False)

    def test_clock_included_and_finalized(self, ma2_sfg):
        circuit = synthesize(ma2_sfg, clock_mass=15.0)
        assert circuit.network.get_initial("C_red") == 15.0
        assert circuit.protocol.finalized
        for indicator in ("r", "g", "b"):
            assert indicator in circuit.network

    def test_initial_state_lands_on_register(self):
        sfg = SignalFlowGraph("init")
        x = sfg.input("x")
        sfg.delay("d", source=x, initial=3.0)
        sfg.output("y", x)
        circuit = synthesize(sfg)
        assert circuit.network.get_initial("s_d_p") == 3.0


class TestFanout:
    def test_single_reaction_per_source_rail(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        fanouts = [r for r in circuit.network.reactions
                   if r.reactants.get(Species("s_x_p"))]
        # Exactly one reaction consumes the source (plus indicator
        # consumption/scavenging which are catalytic or indicator-led).
        consuming = [r for r in fanouts
                     if not r.is_catalytic_in("s_x_p")
                     and "scavenges" not in r.label]
        assert len(consuming) == 1
        products = {s.name for s in consuming[0].products}
        assert "c_x__y_p" in products and "c_x__d1_p" in products

    def test_unused_source_gets_waste_drain(self):
        sfg = SignalFlowGraph("waste")
        x = sfg.input("x")
        d = sfg.delay("d", source=x)  # d's output feeds nothing
        del d
        sfg.output("y", x)
        circuit = synthesize(sfg)
        assert "w_d_p" in circuit.network


class TestGains:
    def test_integer_gain_is_direct(self):
        sfg = SignalFlowGraph("g3")
        x = sfg.input("x")
        sfg.output("y", sfg.gain(3, x))
        circuit = synthesize(sfg)
        gain = [r for r in circuit.network.reactions
                if "gain" in r.label and "seed" not in r.label]
        assert any(r.products.get(Species("a_y_p")) == 3 for r in gain)
        assert "h1_c_x__y_p" not in circuit.network

    def test_fractional_gain_linearised(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        # 1/2 gains create one pairing stage per edge.
        assert "h1_c_x__y_p" in circuit.network
        close = [r for r in circuit.network.reactions
                 if "close" in r.label]
        assert close
        for reaction in close:
            assert reaction.rate == "fast"

    def test_quarter_gain_has_three_stages(self):
        sfg = SignalFlowGraph("q4")
        x = sfg.input("x")
        sfg.output("y", sfg.gain(Fraction(1, 4), x))
        circuit = synthesize(sfg)
        for i in (1, 2, 3):
            assert f"h{i}_c_x__y_p" in circuit.network

    def test_stage_species_uncolored(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        assert circuit.network.get_species("h1_c_x__y_p").color is None


class TestOutputsAndAnnihilation:
    def test_outputs_drain_not_land(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        assert "y_y_p" in circuit.network
        assert "o_y_p" not in circuit.network
        drains = [r for r in circuit.network.reactions
                  if r.products.get(Species("y_y_p"))]
        assert drains and all(r.is_catalytic_in("g") for r in drains)

    def test_annihilation_pairs_for_signed(self, diff_sfg):
        circuit = synthesize(diff_sfg)
        annihilations = [r for r in circuit.network.reactions
                         if not r.products
                         and r.reactants.get(Species("a_y_p"))
                         and r.reactants.get(Species("a_y_n"))]
        assert annihilations

    def test_readout_value_accounting(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        values = {"y_y_p": 5.0, "a_y_p": 1.0}
        getter = lambda name: values.get(name, 0.0)  # noqa: E731
        assert circuit.readout_value(getter, "y") == pytest.approx(6.0)

    def test_state_value_signed(self, diff_sfg):
        circuit = synthesize(diff_sfg)
        values = {"s_d_p": 2.0, "s_d_n": 5.0}
        getter = lambda name: values.get(name, 0.0)  # noqa: E731
        assert circuit.state_value(getter, "d") == pytest.approx(-3.0)
