"""Integration tests for the molecular clock."""

import numpy as np
import pytest

from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.core.clock import MolecularClock, build_clock
from repro.errors import NetworkError, SimulationError


@pytest.fixture(scope="module")
def clock_run():
    network, clock, _ = build_clock(mass=20.0)
    trajectory = OdeSimulator(network).simulate(60.0, n_samples=3000)
    return clock, trajectory


class TestOscillation:
    def test_sustained_oscillation(self, clock_run):
        clock, trajectory = clock_run
        edges = clock.rising_edges(trajectory)
        assert len(edges) >= 10

    def test_period_stability(self, clock_run):
        clock, trajectory = clock_run
        assert clock.period(trajectory) == pytest.approx(1.7, rel=0.3)
        assert clock.period_jitter(trajectory) < 0.05

    def test_full_amplitude_swings(self, clock_run):
        clock, trajectory = clock_run
        low, high = clock.amplitude(trajectory)
        assert low < 0.5
        assert high > 0.85 * 20.0

    def test_mass_erodes_only_slowly(self, clock_run):
        """Scavenging flushes the clock's sub-threshold tails, so a
        free-running clock loses a little mass per rotation (the machine
        driver replenishes it).  The erosion must stay below ~1.5% per
        cycle and the total must never grow."""
        clock, trajectory = clock_run
        total = trajectory.total(clock.species_names())
        n_cycles = len(clock.rising_edges(trajectory))
        assert total.max() <= 20.0 + 1e-6
        per_cycle = (total[0] - total[-1]) / max(n_cycles, 1)
        assert 0.0 <= per_cycle < 0.3

    def test_phase_fractions_sum_to_one(self, clock_run):
        clock, trajectory = clock_run
        fractions = clock.phase_fractions(trajectory)
        assert np.allclose(fractions.sum(axis=1), 1.0, atol=1e-6)

    def test_dominant_phase_cycles_through_all(self, clock_run):
        clock, trajectory = clock_run
        dominant = clock.dominant_phase(trajectory)
        assert set(np.unique(dominant)) == {0, 1, 2}

    def test_phases_rotate_in_order(self, clock_run):
        clock, trajectory = clock_run
        dominant = clock.dominant_phase(trajectory)
        changes = dominant[np.nonzero(np.diff(dominant))[0] + 1]
        previous = dominant[0]
        for current in changes:
            assert current == (previous + 1) % 3, \
                "phases must advance red->green->blue->red"
            previous = current


class TestRateRobustness:
    def test_period_scales_with_slow_timescale(self):
        # Doubling every rate (within categories) halves the period but
        # leaves the waveform shape intact -- rate "independence" is about
        # values, not about absolute speed.
        network, clock, _ = build_clock(mass=20.0)
        fast = OdeSimulator(network, RateScheme().scaled(2.0, 2.0))
        trajectory = fast.simulate(30.0, n_samples=2000)
        assert clock.period(trajectory) == pytest.approx(1.7 / 2, rel=0.3)

    def test_oscillates_at_low_separation(self):
        network, clock, _ = build_clock(mass=20.0)
        scheme = RateScheme.with_separation(100.0)
        trajectory = OdeSimulator(network, scheme).simulate(
            80.0, n_samples=3000)
        assert len(clock.rising_edges(trajectory)) >= 5


class TestApi:
    def test_invalid_mass(self):
        with pytest.raises(NetworkError):
            MolecularClock(mass=0.0)

    def test_species_names(self):
        clock = MolecularClock(name="K")
        assert clock.species_names() == ["K_red", "K_green", "K_blue"]

    def test_period_requires_edges(self):
        network, clock, _ = build_clock(mass=20.0)
        trajectory = OdeSimulator(network).simulate(0.2, n_samples=50)
        with pytest.raises(SimulationError):
            clock.period(trajectory)
