"""Integration tests for the clock oscillators."""

import numpy as np
import pytest

from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.result import Trajectory
from repro.core.clock import (Clock, MolecularClock, RelaxationClock,
                              build_clock, make_clock, oscillator_names,
                              register_oscillator)
from repro.errors import NetworkError, SimulationError


def _fraction_trajectory(times, red_fraction):
    """A synthetic clock trajectory whose red mass *fraction* equals the
    given series (green carries the complement, blue stays zero)."""
    fraction = np.asarray(red_fraction, dtype=float)
    states = np.column_stack([fraction, 1.0 - fraction,
                              np.zeros_like(fraction)])
    return Trajectory(np.asarray(times, dtype=float), states,
                      ["C_red", "C_green", "C_blue"])


@pytest.fixture(scope="module")
def clock_run():
    network, clock, _ = build_clock(mass=20.0)
    trajectory = OdeSimulator(network).simulate(60.0, n_samples=3000)
    return clock, trajectory


class TestOscillation:
    def test_sustained_oscillation(self, clock_run):
        clock, trajectory = clock_run
        edges = clock.rising_edges(trajectory)
        assert len(edges) >= 10

    def test_period_stability(self, clock_run):
        clock, trajectory = clock_run
        assert clock.period(trajectory) == pytest.approx(1.7, rel=0.3)
        assert clock.period_jitter(trajectory) < 0.05

    def test_full_amplitude_swings(self, clock_run):
        clock, trajectory = clock_run
        low, high = clock.amplitude(trajectory)
        assert low < 0.5
        assert high > 0.85 * 20.0

    def test_mass_erodes_only_slowly(self, clock_run):
        """Scavenging flushes the clock's sub-threshold tails, so a
        free-running clock loses a little mass per rotation (the machine
        driver replenishes it).  The erosion must stay below ~1.5% per
        cycle and the total must never grow."""
        clock, trajectory = clock_run
        total = trajectory.total(clock.species_names())
        n_cycles = len(clock.rising_edges(trajectory))
        assert total.max() <= 20.0 + 1e-6
        per_cycle = (total[0] - total[-1]) / max(n_cycles, 1)
        assert 0.0 <= per_cycle < 0.3

    def test_phase_fractions_sum_to_one(self, clock_run):
        clock, trajectory = clock_run
        fractions = clock.phase_fractions(trajectory)
        assert np.allclose(fractions.sum(axis=1), 1.0, atol=1e-6)

    def test_dominant_phase_cycles_through_all(self, clock_run):
        clock, trajectory = clock_run
        dominant = clock.dominant_phase(trajectory)
        assert set(np.unique(dominant)) == {0, 1, 2}

    def test_phases_rotate_in_order(self, clock_run):
        clock, trajectory = clock_run
        dominant = clock.dominant_phase(trajectory)
        changes = dominant[np.nonzero(np.diff(dominant))[0] + 1]
        previous = dominant[0]
        for current in changes:
            assert current == (previous + 1) % 3, \
                "phases must advance red->green->blue->red"
            previous = current


class TestRateRobustness:
    def test_period_scales_with_slow_timescale(self):
        # Doubling every rate (within categories) halves the period but
        # leaves the waveform shape intact -- rate "independence" is about
        # values, not about absolute speed.
        network, clock, _ = build_clock(mass=20.0)
        fast = OdeSimulator(network, RateScheme().scaled(2.0, 2.0))
        trajectory = fast.simulate(30.0, n_samples=2000)
        assert clock.period(trajectory) == pytest.approx(1.7 / 2, rel=0.3)

    def test_oscillates_at_low_separation(self):
        network, clock, _ = build_clock(mass=20.0)
        scheme = RateScheme.with_separation(100.0)
        trajectory = OdeSimulator(network, scheme).simulate(
            80.0, n_samples=3000)
        assert len(clock.rising_edges(trajectory)) >= 5


class TestRisingEdges:
    def test_threshold_plateau_collapses_to_single_edge(self):
        # Regression: the old sample-pair scan appended one edge per
        # below->at transition, so a multi-sample plateau sitting at the
        # threshold yielded duplicate edges.
        clock = MolecularClock(mass=1.0)
        trajectory = _fraction_trajectory(
            [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            [0.1, 0.5, 0.5, 0.5, 0.9, 0.1, 0.9])
        edges = clock.rising_edges(trajectory)
        assert edges.tolist() == [1.0, 5.5]

    def test_plateau_retreat_is_not_an_edge(self):
        clock = MolecularClock(mass=1.0)
        trajectory = _fraction_trajectory(
            [0.0, 1.0, 2.0, 3.0], [0.1, 0.5, 0.5, 0.1])
        assert clock.rising_edges(trajectory).size == 0

    def test_must_fall_below_before_next_edge(self):
        clock = MolecularClock(mass=1.0)
        trajectory = _fraction_trajectory(
            [0.0, 1.0, 2.0, 3.0, 4.0], [0.1, 0.9, 0.6, 0.9, 0.6])
        assert clock.rising_edges(trajectory).size == 1

    def test_edge_time_interpolated(self):
        clock = MolecularClock(mass=1.0)
        trajectory = _fraction_trajectory(
            [0.0, 1.0], [0.1, 0.9])
        assert clock.rising_edges(trajectory).tolist() == [0.5]


class TestAmplitude:
    def test_settle_cut_is_time_based(self):
        # Regression: the settling prefix used to be cut by *sample
        # index* (``int(len(series) * settle)``), which on a non-uniform
        # grid -- samples clustered around an early transient -- kept
        # transient samples inside the "settled" tail.
        clock = MolecularClock(mass=10.0)
        times = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08,
                 0.09, 10.0, 20.0]
        red = [0.0] * 10 + [10.0, 10.0]
        states = np.column_stack([
            np.asarray(red), np.zeros(12), np.zeros(12)])
        trajectory = Trajectory(np.asarray(times), states,
                                ["C_red", "C_green", "C_blue"])
        # 25% of the time span is t=5.0: every transient sample (all
        # before t=0.1) is excluded, even though they are 10/12 of the
        # sample count.
        assert clock.amplitude(trajectory) == (10.0, 10.0)

    def test_degenerate_tail_falls_back_to_last_sample(self):
        clock = MolecularClock(mass=10.0)
        trajectory = Trajectory(
            np.array([0.0]), np.array([[3.0, 0.0, 0.0]]),
            ["C_red", "C_green", "C_blue"])
        assert clock.amplitude(trajectory) == (3.0, 3.0)


class TestRelaxationClock:
    @pytest.fixture(scope="class")
    def relaxation_run(self):
        network, clock, _ = build_clock(mass=20.0,
                                        oscillator="relaxation")
        trajectory = OdeSimulator(network).simulate(40.0, n_samples=3000)
        return clock, trajectory

    def test_sustained_oscillation(self, relaxation_run):
        clock, trajectory = relaxation_run
        assert len(clock.rising_edges(trajectory)) >= 10

    def test_period_differs_from_molecular(self, relaxation_run):
        clock, trajectory = relaxation_run
        # Fast autocatalytic discharge shortens the rotation relative to
        # the molecular clock's ~1.79 at the same mass and rates.
        assert clock.period(trajectory) == pytest.approx(1.07, rel=0.3)
        assert clock.period_jitter(trajectory) < 0.05

    def test_phases_rotate_in_order(self, relaxation_run):
        clock, trajectory = relaxation_run
        dominant = clock.dominant_phase(trajectory)
        changes = dominant[np.nonzero(np.diff(dominant))[0] + 1]
        previous = dominant[0]
        for current in changes:
            assert current == (previous + 1) % 3
            previous = current


class TestOscillatorRegistry:
    def test_registered_names(self):
        names = oscillator_names()
        assert "molecular" in names and "relaxation" in names

    def test_make_clock(self):
        clock = make_clock("relaxation", mass=12.0, name="K")
        assert isinstance(clock, RelaxationClock)
        assert isinstance(clock, Clock)
        assert clock.mass == 12.0 and clock.kind == "relaxation"

    def test_unknown_oscillator(self):
        with pytest.raises(NetworkError, match="unknown oscillator"):
            make_clock("quartz")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(NetworkError, match="already registered"):
            register_oscillator("molecular", MolecularClock)


class TestApi:
    def test_invalid_mass(self):
        with pytest.raises(NetworkError):
            MolecularClock(mass=0.0)

    def test_species_names(self):
        clock = MolecularClock(name="K")
        assert clock.species_names() == ["K_red", "K_green", "K_blue"]

    def test_period_requires_edges(self):
        network, clock, _ = build_clock(mass=20.0)
        trajectory = OdeSimulator(network).simulate(0.2, n_samples=50)
        with pytest.raises(SimulationError):
            clock.period(trajectory)
