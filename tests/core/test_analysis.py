"""Unit tests for trajectory analysis helpers."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.simulation.ode import OdeSimulator, simulate
from repro.crn.simulation.result import Trajectory
from repro.core.analysis import (conservation_drift, effective_series,
                                 effective_value, indicator_exclusivity,
                                 rise_time, settling_time,
                                 transfer_fidelity)
from repro.core.memory import build_delay_chain
from repro.core.phases import PhaseProtocol
from repro.errors import SimulationError


def _synthetic(names, columns, times=None):
    columns = np.column_stack(columns)
    if times is None:
        times = np.linspace(0, 1, columns.shape[0])
    return Trajectory(times, columns, names)


class TestEffectiveValues:
    def test_plain_species(self):
        trajectory = _synthetic(["Y"], [np.array([0.0, 2.0, 4.0])])
        assert effective_value(trajectory, "Y") == 4.0

    def test_dimer_counts_double(self):
        trajectory = _synthetic(
            ["Y", "I_Y"],
            [np.array([0.0, 4.0]), np.array([0.0, 3.0])])
        assert effective_value(trajectory, "Y") == 10.0
        assert effective_series(trajectory, "Y")[-1] == 10.0

    def test_at_time(self):
        trajectory = _synthetic(["Y"], [np.array([0.0, 10.0])])
        assert effective_value(trajectory, "Y", t=0.5) == pytest.approx(5.0)


class TestTransferMetrics:
    @pytest.fixture(scope="class")
    def chain_run(self):
        network, _, protocol = build_delay_chain(n=1, initial=40.0)
        trajectory = OdeSimulator(network).simulate(25.0, n_samples=500)
        return network, protocol, trajectory

    def test_transfer_fidelity(self, chain_run):
        _, _, trajectory = chain_run
        assert transfer_fidelity(trajectory, "X", "Y") == pytest.approx(
            1.0, abs=0.01)

    def test_settling_time_reasonable(self, chain_run):
        _, _, trajectory = chain_run
        settled = settling_time(trajectory, "Y", tolerance=0.02)
        assert 0.0 < settled < 20.0

    def test_rise_time_much_shorter_than_span(self, chain_run):
        _, _, trajectory = chain_run
        assert rise_time(trajectory, "Y") < 5.0

    def test_rise_time_needs_rising_signal(self):
        trajectory = _synthetic(["Y"], [np.zeros(4)])
        with pytest.raises(SimulationError):
            rise_time(trajectory, "Y")

    def test_indicator_exclusivity_small(self, chain_run):
        network, protocol, trajectory = chain_run
        # In consuming mode indicators reach O(1); the second largest
        # should stay well below the largest's scale.
        value = indicator_exclusivity(network, trajectory, protocol)
        columns = [trajectory.column(protocol.indicator_name(c)).max()
                   for c in ("red", "green", "blue")]
        assert value < max(columns)


class TestConservationDrift:
    def test_closed_system_has_tiny_drift(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.add("B", "A", 0.5)
        network.set_initial("A", 10.0)
        trajectory = simulate(network, 20.0)
        assert conservation_drift(network, trajectory) < 1e-6

    def test_transfer_source_fidelity_requires_mass(self):
        trajectory = _synthetic(["X", "Y"],
                                [np.zeros(3), np.ones(3)])
        with pytest.raises(SimulationError):
            transfer_fidelity(trajectory, "X", "Y")


class TestProtocolAccounting:
    def test_one_shot_chain_mass_conserved_in_effective_units(self):
        """X units equal effective Y units at the end -- the dimer
        bookkeeping makes the accounting exact."""
        network, line, _ = build_delay_chain(n=2, initial=50.0)
        trajectory = OdeSimulator(network).simulate(40.0, n_samples=100)
        total = sum(effective_series(trajectory, name)[-1]
                    for name in line.signal_species())
        assert total == pytest.approx(50.0, rel=1e-4)

    def test_protocol_indicator_names_in_network(self):
        network, _, protocol = build_delay_chain(n=1)
        assert isinstance(protocol, PhaseProtocol)
        for color in ("red", "green", "blue"):
            assert protocol.indicator_name(color) in network
