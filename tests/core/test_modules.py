"""Integration tests for the rate-independent combinational modules."""

from fractions import Fraction

import pytest

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator, simulate
from repro.core import modules
from repro.errors import NetworkError


def _settle(network, t=80.0, scheme=None):
    return simulate(network, t, scheme=scheme, n_samples=30)


class TestMoveAndDuplicate:
    def test_move(self):
        network = Network()
        modules.move(network, "A", "B")
        network.set_initial("A", 6.0)
        assert _settle(network).final("B") == pytest.approx(6.0, rel=1e-4)

    def test_duplicate_equal_copies(self):
        network = Network()
        modules.duplicate(network, "A", ["B", "C", "D"])
        network.set_initial("A", 5.0)
        final = _settle(network).final_state()
        for name in "BCD":
            assert final[name] == pytest.approx(5.0, rel=1e-4)

    def test_duplicate_needs_two_targets(self):
        with pytest.raises(NetworkError):
            modules.duplicate(Network(), "A", ["B"])


class TestAdd:
    def test_two_operands(self):
        network = Network()
        modules.add(network, ["A", "B"], "S")
        network.set_initial("A", 3.0)
        network.set_initial("B", 4.5)
        assert _settle(network).final("S") == pytest.approx(7.5, rel=1e-4)

    def test_three_operands(self):
        network = Network()
        modules.add(network, ["A", "B", "C"], "S")
        for name, value in [("A", 1.0), ("B", 2.0), ("C", 3.0)]:
            network.set_initial(name, value)
        assert _settle(network).final("S") == pytest.approx(6.0, rel=1e-4)


class TestScale:
    @pytest.mark.parametrize("factor,x,expected", [
        (Fraction(3, 1), 4.0, 12.0),
        (Fraction(1, 2), 12.0, 6.0),
        (Fraction(3, 4), 12.0, 9.0),
        (Fraction(2, 3), 9.0, 6.0),
        (Fraction(5, 2), 4.0, 10.0),
    ])
    def test_rational_factors(self, factor, x, expected):
        network = Network()
        modules.scale(network, "A", "Z", factor)
        network.set_initial("A", x)
        assert _settle(network, 150.0).final("Z") == pytest.approx(
            expected, rel=2e-2)

    def test_negative_factor_rejected(self):
        with pytest.raises(NetworkError):
            modules.scale(Network(), "A", "Z", Fraction(-1, 2))


class TestSubtract:
    @pytest.mark.parametrize("a,b,expected", [
        (9.0, 4.0, 5.0), (4.0, 9.0, 0.0), (5.0, 5.0, 0.0)])
    def test_clamped_difference(self, a, b, expected):
        # Equal inputs leave a ~0.07 annihilation tail (both rails decay
        # below the bimolecular effectiveness floor together); the
        # construct is exact up to that floor.
        network = Network()
        modules.subtract(network, "A", "B", "D")
        network.set_initial("A", a)
        network.set_initial("B", b)
        assert _settle(network, 200.0).final("D") == pytest.approx(
            expected, abs=0.15)


class TestMinMax:
    @pytest.mark.parametrize("a,b", [(9.0, 4.0), (2.0, 7.0), (5.0, 5.0)])
    def test_minimum(self, a, b):
        network = Network()
        modules.minimum(network, "A", "B", "M")
        network.set_initial("A", a)
        network.set_initial("B", b)
        assert _settle(network).final("M") == pytest.approx(
            min(a, b), abs=1e-3)

    @pytest.mark.parametrize("a,b", [(9.0, 4.0), (2.0, 7.0)])
    def test_maximum(self, a, b):
        network = Network()
        modules.maximum(network, "A", "B", "M")
        network.set_initial("A", a)
        network.set_initial("B", b)
        assert _settle(network, 200.0).final("M") == pytest.approx(
            max(a, b), rel=0.03)


class TestCompare:
    def test_greater_side_survives(self):
        network = Network()
        modules.compare(network, "A", "B")
        network.set_initial("A", 9.0)
        network.set_initial("B", 4.0)
        final = _settle(network, 200.0).final_state()
        assert final["GT"] == pytest.approx(5.0, abs=0.1)
        assert final["LT"] == pytest.approx(0.0, abs=0.1)

    def test_less_side_survives(self):
        network = Network()
        modules.compare(network, "A", "B")
        network.set_initial("A", 2.0)
        network.set_initial("B", 7.0)
        final = _settle(network, 200.0).final_state()
        assert final["LT"] == pytest.approx(5.0, abs=0.1)
        assert final["GT"] == pytest.approx(0.0, abs=0.1)


class TestThresholdAndWeightedSum:
    def test_threshold(self):
        network = Network()
        modules.threshold(network, "A", 6, "Z")
        network.set_initial("A", 10.0)
        assert _settle(network, 200.0).final("Z") == pytest.approx(
            4.0, abs=0.05)

    def test_weighted_sum(self):
        network = Network()
        modules.weighted_sum(network, {"A": Fraction(1, 2),
                                       "B": Fraction(2, 1)}, "Z")
        network.set_initial("A", 8.0)
        network.set_initial("B", 3.0)
        assert _settle(network, 200.0).final("Z") == pytest.approx(
            10.0, rel=0.02)


class TestRateIndependence:
    def test_scale_result_invariant_under_rate_jitter(self):
        """The paper's claim: only the fast/slow split matters."""
        import numpy as np

        from repro.crn.rates import jittered_rates

        results = []
        rng = np.random.default_rng(7)
        for _ in range(4):
            network = Network()
            modules.scale(network, "A", "Z", Fraction(1, 2))
            network.set_initial("A", 12.0)
            rates = jittered_rates(network, RateScheme(), rng)
            simulator = OdeSimulator(network, rates=rates)
            results.append(simulator.simulate(200.0, n_samples=20)
                           .final("Z"))
        assert max(results) - min(results) < 0.15
