"""Unit tests for the signal-flow-graph IR and matrix reduction."""

from fractions import Fraction

import pytest

from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.errors import SynthesisError


class TestConstruction:
    def test_duplicate_names_rejected(self):
        sfg = SignalFlowGraph()
        sfg.input("x")
        with pytest.raises(SynthesisError):
            sfg.delay("x")

    def test_add_needs_two_operands(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        with pytest.raises(SynthesisError):
            sfg.add(x)

    def test_cross_graph_reference_rejected(self):
        a = SignalFlowGraph()
        b = SignalFlowGraph()
        x = a.input("x")
        with pytest.raises(SynthesisError):
            b.output("y", x)

    def test_connect_target_must_be_delay(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        y = sfg.output("y", x)
        with pytest.raises(SynthesisError):
            sfg.connect(x, y)

    def test_double_connect_rejected(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        d = sfg.delay("d", source=x)
        with pytest.raises(SynthesisError):
            sfg.connect(x, d)

    def test_set_initial_unknown_delay(self):
        sfg = SignalFlowGraph()
        with pytest.raises(SynthesisError):
            sfg.set_initial("ghost", 1.0)


class TestMatrixReduction:
    def test_ma2_coefficients(self, ma2_sfg):
        design = ma2_sfg.to_matrix()
        assert design.coefficient("y", "x") == Fraction(1, 2)
        assert design.coefficient("y", "d1") == Fraction(1, 2)
        assert design.coefficient("d1", "x") == Fraction(1)
        assert design.sources == ["x", "d1"]
        assert design.sinks == ["y", "d1"]

    def test_gain_chains_multiply(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        sfg.output("y", sfg.gain(Fraction(1, 2),
                                 sfg.gain(Fraction(3, 1), x)))
        assert sfg.to_matrix().coefficient("y", "x") == Fraction(3, 2)

    def test_parallel_paths_sum(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        sfg.output("y", sfg.add(sfg.gain(Fraction(1, 4), x),
                                sfg.gain(Fraction(1, 4), x)))
        assert sfg.to_matrix().coefficient("y", "x") == Fraction(1, 2)

    def test_cancelling_paths_drop_out(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        sfg.output("y", sfg.add(x, sfg.gain(Fraction(-1), x)))
        assert ("y", "x") not in sfg.to_matrix().coefficients

    def test_subtract_sugar(self, diff_sfg):
        design = diff_sfg.to_matrix()
        assert design.coefficient("y", "x") == Fraction(1)
        assert design.coefficient("y", "d") == Fraction(-1)
        assert design.signed

    def test_unconnected_delay_rejected(self):
        sfg = SignalFlowGraph()
        sfg.input("x")
        sfg.delay("d")
        with pytest.raises(SynthesisError):
            sfg.to_matrix()

    def test_combinational_cycles_unrepresentable(self):
        """Loops are legal only through delays -- enforced structurally.

        Node references can only point at already-created nodes and
        ``connect`` targets only delay nodes, so every feedback loop
        passes through a delay by construction.  Verify the feedback
        design reduces cleanly.
        """
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        state = sfg.delay("s")
        y = sfg.add(x, sfg.gain(Fraction(1, 2), state))
        sfg.output("y", y)
        sfg.connect(y, state)
        design = sfg.to_matrix()
        assert design.coefficient("s", "s") == Fraction(1, 2)

    def test_initial_state_carried(self):
        sfg = SignalFlowGraph()
        x = sfg.input("x")
        sfg.delay("d", source=x, initial=4.0)
        sfg.output("y", x)
        assert sfg.to_matrix().initial_state == {"d": 4.0}


class TestReferenceSemantics:
    def test_ma2_reference(self, ma2_sfg):
        design = ma2_sfg.to_matrix()
        outputs = design.reference_run({"x": [10.0, 20.0, 40.0]})
        assert outputs["y"] == [5.0, 15.0, 30.0]

    def test_iir_reference(self, iir1_sfg):
        design = iir1_sfg.to_matrix()
        outputs = design.reference_run({"x": [16.0, 0.0, 0.0]})
        assert outputs["y"] == [8.0, 4.0, 2.0]

    def test_reference_step_returns_state(self, iir1_sfg):
        design = iir1_sfg.to_matrix()
        outputs, state = design.reference_step({"s": 4.0}, {"x": 8.0})
        assert outputs["y"] == 6.0
        assert state["s"] == 6.0

    def test_unequal_stream_lengths_rejected(self):
        sfg = SignalFlowGraph()
        a = sfg.input("a")
        b = sfg.input("b")
        sfg.output("y", sfg.add(a, b))
        design = sfg.to_matrix()
        with pytest.raises(SynthesisError):
            design.reference_run({"a": [1.0], "b": [1.0, 2.0]})

    def test_reference_is_linear(self, ma2_sfg):
        """Superposition: ref(a*u + b*v) == a*ref(u) + b*ref(v)."""
        design = ma2_sfg.to_matrix()
        u = [3.0, 1.0, 4.0, 1.0]
        v = [2.0, 7.0, 1.0, 8.0]
        mixed = [2 * a + 3 * b for a, b in zip(u, v)]
        ref_u = design.reference_run({"x": u})["y"]
        ref_v = design.reference_run({"x": v})["y"]
        ref_mixed = design.reference_run({"x": mixed})["y"]
        for m, a, b in zip(ref_mixed, ref_u, ref_v):
            assert m == pytest.approx(2 * a + 3 * b)


class TestMatrixDesignValidation:
    def test_unknown_sink_rejected(self):
        design = MatrixDesign("bad", ["x"], ["y"], [],
                              {("z", "x"): Fraction(1)})
        with pytest.raises(SynthesisError):
            design.validate()

    def test_unknown_source_rejected(self):
        design = MatrixDesign("bad", ["x"], ["y"], [],
                              {("y", "w"): Fraction(1)})
        with pytest.raises(SynthesisError):
            design.validate()

    def test_fanout_of(self, ma2_sfg):
        design = ma2_sfg.to_matrix()
        assert set(design.fanout_of("x")) == {"y", "d1"}
        assert design.fanout_of("d1") == ["y"]
