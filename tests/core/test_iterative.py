"""Tests for the iterative (discrete-count) constructs.

Exactness is claimed under the stochastic semantics; the ODE behaviour is
checked only qualitatively (it is documented as approximate).
"""

import math

import pytest

from repro.crn.simulation.ode import simulate
from repro.crn.simulation.ssa import StochasticSimulator
from repro.core.iterative import (build_log_two, build_multiplier,
                                  build_power_of_two)
from repro.errors import NetworkError


def _final(network, name, seed, t=300.0):
    return StochasticSimulator(network, seed=seed).final_counts(t)[name]


class TestMultiplier:
    @pytest.mark.parametrize("x,y", [(0, 5), (1, 1), (2, 3), (3, 4),
                                     (5, 2), (4, 4)])
    def test_exact_products(self, x, y):
        network, z = build_multiplier(x, y)
        assert _final(network, z, seed=x * 10 + y) == x * y

    def test_y_is_restored(self):
        network, _ = build_multiplier(4, 7)
        counts = StochasticSimulator(network, seed=3).final_counts(300.0)
        assert counts["Y"] == 7

    def test_x_is_consumed(self):
        network, _ = build_multiplier(4, 7)
        counts = StochasticSimulator(network, seed=3).final_counts(300.0)
        assert counts["X"] == 0

    def test_non_integer_rejected(self):
        with pytest.raises(NetworkError):
            build_multiplier(2.5, 3)

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            build_multiplier(-1, 3)

    def test_ode_semantics_is_only_approximate(self):
        """Documented limitation: the deterministic continuum blurs
        iterations, so ODE results deviate from x*y."""
        network, z = build_multiplier(5, 5)
        value = simulate(network, 300.0, n_samples=20).final(z)
        assert value > 0
        assert abs(value - 25.0) > 0.5


class TestPowerOfTwo:
    @pytest.mark.parametrize("x", [0, 1, 2, 3, 5])
    def test_exact_powers(self, x):
        network, z = build_power_of_two(x)
        assert _final(network, z, seed=x) == 2 ** x


class TestLogTwo:
    @pytest.mark.parametrize("x", [1, 2, 3, 4, 5, 8, 13, 16, 31])
    def test_ceiling_log(self, x):
        network, z = build_log_two(x)
        expected = math.ceil(math.log2(x)) if x > 1 else 0
        assert _final(network, z, seed=x, t=500.0) == expected

    def test_zero_rejected(self):
        with pytest.raises(NetworkError):
            build_log_two(0)


class TestRobustnessToSeparation:
    def test_multiplier_correct_at_moderate_separation(self):
        from repro.crn.rates import RateScheme

        network, z = build_multiplier(3, 3)
        simulator = StochasticSimulator(
            network, RateScheme.with_separation(200.0), seed=5)
        assert simulator.final_counts(300.0)[z] == 9
