"""Machine tests beyond single-input single-output designs."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.dfg import SignalFlowGraph
from repro.core.machine import SynchronousMachine


def _mixer() -> SignalFlowGraph:
    """Two inputs, two outputs: s[n] = a+b (delayed), d[n] = a-b."""
    sfg = SignalFlowGraph("mixer")
    a = sfg.input("a")
    b = sfg.input("b")
    total = sfg.delay("dt", source=sfg.add(a, b))
    sfg.output("s", total)
    sfg.output("d", sfg.subtract(a, b))
    return sfg


class TestMimo:
    @pytest.fixture(scope="class")
    def run(self):
        machine = SynchronousMachine(_mixer())
        return machine.run({"a": [10.0, 4.0, 7.0],
                            "b": [3.0, 9.0, 7.0]}, extra_cycles=2)

    def test_both_outputs_tracked(self, run):
        assert set(run.outputs) == {"s", "d"}
        assert run.reference["s"].tolist() == [0.0, 13.0, 13.0]
        assert run.reference["d"].tolist() == [7.0, -5.0, 0.0]

    def test_errors_bounded(self, run):
        assert run.max_error("s") < 0.3
        assert run.max_error("d") < 0.3


class TestInitialState:
    def test_preloaded_delay_shows_in_first_output(self):
        sfg = SignalFlowGraph("preload")
        x = sfg.input("x")
        d = sfg.delay("d", source=x, initial=12.0)
        sfg.output("y", d)
        machine = SynchronousMachine(sfg)
        run = machine.run({"x": [5.0, 0.0]}, extra_cycles=2)
        assert run.reference["y"][0] == 12.0
        assert abs(run.outputs["y"][0] - 12.0) < 0.3
        assert abs(run.outputs["y"][1] - 5.0) < 0.3


class TestFanoutHeavyDesign:
    def test_one_source_feeding_four_sinks(self):
        sfg = SignalFlowGraph("fan4")
        x = sfg.input("x")
        d1 = sfg.delay("d1", source=x)
        d2 = sfg.delay("d2", source=x)
        y = sfg.add(sfg.gain(Fraction(1, 4), x),
                    sfg.gain(Fraction(1, 4), d1),
                    sfg.gain(Fraction(1, 2), d2))
        sfg.output("y", y)
        machine = SynchronousMachine(sfg)
        run = machine.run({"x": [8.0, 16.0, 4.0]}, extra_cycles=2)
        expected = np.array([2.0, 10.0, 13.0])
        assert np.allclose(run.reference["y"][:3], expected)
        assert run.max_error() < 0.3
