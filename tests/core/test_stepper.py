"""Tests for the incremental (closed-loop) machine driver."""

import pytest

from repro.core.machine import SynchronousMachine
from repro.errors import SynthesisError


class TestStepper:
    @pytest.fixture(scope="class")
    def machine(self):
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("ma2")
        x = sfg.input("x")
        d = sfg.delay("d1", source=x)
        sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                                sfg.gain(Fraction(1, 2), d)))
        return SynchronousMachine(sfg)

    def test_stepwise_matches_batch(self, machine):
        samples = [10.0, 20.0, 40.0]
        batch = machine.run({"x": samples})
        stepper = machine.stepper()
        stepped = [stepper.step({"x": v})["y"] for v in samples]
        for a, b in zip(stepped, batch.outputs["y"]):
            assert a == pytest.approx(b, abs=0.1)

    def test_flush_drains_pipeline(self, machine):
        stepper = machine.stepper()
        stepper.step({"x": 10.0})
        tail = stepper.flush()["y"]
        assert tail == pytest.approx(5.0, abs=0.2)
        assert stepper.registers()["d1"] == pytest.approx(0.0, abs=0.1)

    def test_cycles_counted(self, machine):
        stepper = machine.stepper()
        stepper.step({"x": 1.0})
        stepper.flush()
        assert stepper.cycles == 2
        assert stepper.time > 0

    def test_wrong_inputs_rejected(self, machine):
        stepper = machine.stepper()
        with pytest.raises(SynthesisError):
            stepper.step({"z": 1.0})

    def test_feedback_through_environment(self):
        """A proportional controller regulating a Python plant."""
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("p_ctrl")
        e = sfg.input("e")
        sfg.output("u", sfg.gain(Fraction(1, 2), e))
        machine = SynchronousMachine(sfg, signed=True)
        stepper = machine.stepper()
        level, setpoint = 0.0, 10.0
        for _ in range(10):
            u = stepper.step({"e": setpoint - level})["u"]
            level += u - 0.1 * level
        # P control settles near setpoint * Kp / (Kp + leak).
        expected = setpoint * 0.5 / 0.6
        assert level == pytest.approx(expected, rel=0.1)

    def test_spans_recorded_per_cycle(self, machine):
        """The stepper shares the machine's cycle bookkeeping: one
        contiguous CycleSpan per step, ending at the stepper's clock."""
        stepper = machine.stepper()
        for value in (10.0, 20.0, 40.0):
            stepper.step({"x": value})
        assert len(stepper.spans) == stepper.cycles == 3
        assert stepper.spans[0].t0 == 0.0
        for before, after in zip(stepper.spans, stepper.spans[1:]):
            assert after.t0 == pytest.approx(before.t1)
            assert after.duration > 0
        assert stepper.spans[-1].t1 == pytest.approx(stepper.time)

    def test_feedback_with_telemetry(self):
        """A closed-loop run (>= 3 cycles, output feeding the next
        input) under full telemetry: spans, metrics and a clean bill
        of health from the protocol monitor."""
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph
        from repro.obs import MemorySink, MetricsRegistry, Tracer

        sfg = SignalFlowGraph("p_ctrl")
        e = sfg.input("e")
        sfg.output("u", sfg.gain(Fraction(1, 2), e))
        tracer = Tracer(MemorySink())
        metrics = MetricsRegistry()
        machine = SynchronousMachine(sfg, signed=True, tracer=tracer,
                                     metrics=metrics)
        stepper = machine.stepper()
        level, setpoint = 0.0, 10.0
        for _ in range(5):
            u = stepper.step({"e": setpoint - level})["u"]
            level += u - 0.1 * level
        assert stepper.cycles == 5
        cycle_spans = [r for r in tracer.sink.records
                       if getattr(r, "name", "") == "cycle"]
        assert len(cycle_spans) == 5
        assert metrics.counter("machine.cycles").value == 5
        # The monitor streams alongside the feedback loop.
        assert stepper.diagnostics() == []
