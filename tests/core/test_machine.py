"""End-to-end tests for the synchronous machine (chemistry vs reference).

These are the headline correctness tests: synthesized reaction networks
driven cycle by cycle must reproduce the exact discrete-time semantics.
They integrate stiff ODEs, so streams are kept short.
"""

import numpy as np
import pytest

from repro.core.machine import SynchronousMachine
from repro.errors import SynthesisError

#: Absolute output tolerance (units of signal quantity); the protocol's
#: quantisation floor is ~0.03 per species per cycle.
TOLERANCE = 0.25


@pytest.fixture(scope="module")
def ma2_machine():
    from fractions import Fraction

    from repro.core.dfg import SignalFlowGraph

    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    return SynchronousMachine(sfg)


class TestMovingAverage:
    def test_tracks_reference(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0, 40.0, 0.0, 30.0]})
        assert run.max_error() < TOLERANCE

    def test_output_length_covers_stream(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        assert len(run.outputs["y"]) >= 2

    def test_boundaries_monotonic(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        assert np.all(np.diff(run.boundary_times) > 0)

    def test_state_history_tracks_delay(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        # After cycle 0 the delay register holds x[0].
        assert run.state_history[1]["d1"] == pytest.approx(10.0, abs=0.2)
        assert run.state_history[2]["d1"] == pytest.approx(20.0, abs=0.3)

    def test_zero_samples_pass_through(self, ma2_machine):
        run = ma2_machine.run({"x": [0.0, 12.0, 0.0]})
        assert run.max_error() < TOLERANCE


class TestFeedback:
    def test_iir_lowpass(self, iir1_sfg):
        machine = SynchronousMachine(iir1_sfg)
        run = machine.run({"x": [16.0, 0.0, 0.0, 8.0]})
        assert run.reference["y"].tolist() == [8.0, 4.0, 2.0, 5.0]
        assert run.max_error() < TOLERANCE


class TestSigned:
    def test_differentiator(self, diff_sfg):
        machine = SynchronousMachine(diff_sfg)
        run = machine.run({"x": [5.0, 20.0, 10.0]})
        assert run.reference["y"].tolist() == [5.0, 15.0, -10.0]
        assert run.max_error() < TOLERANCE

    def test_negative_inputs(self, diff_sfg):
        machine = SynchronousMachine(diff_sfg)
        run = machine.run({"x": [-5.0, 5.0]})
        assert run.reference["y"].tolist() == [-5.0, 10.0]
        assert run.max_error() < TOLERANCE


class TestDriverApi:
    def test_wrong_input_names_rejected(self, ma2_machine):
        with pytest.raises(SynthesisError):
            ma2_machine.run({"z": [1.0]})

    def test_unequal_lengths_rejected(self):
        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("two_in")
        a = sfg.input("a")
        b = sfg.input("b")
        sfg.output("y", sfg.add(a, b))
        machine = SynchronousMachine(sfg)
        with pytest.raises(SynthesisError):
            machine.run({"a": [1.0], "b": [1.0, 2.0]})

    def test_negative_input_unsigned_rejected(self, ma2_machine):
        with pytest.raises(SynthesisError):
            ma2_machine.run({"x": [-1.0]})

    def test_record_keeps_trajectory(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0]}, record=True)
        assert run.trajectory is not None
        assert run.trajectory.t_final == pytest.approx(
            run.boundary_times[-1])

    def test_mean_cycle_time_positive(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 10.0]})
        assert 0.5 < run.mean_cycle_time < 20.0


class TestRateRobustness:
    def test_output_invariant_across_separations(self, iir1_sfg):
        """The headline claim: values do not depend on the rates,
        provided fast >> slow."""
        from repro.crn.rates import RateScheme

        results = []
        for separation in (300.0, 1000.0, 3000.0):
            machine = SynchronousMachine(
                iir1_sfg, scheme=RateScheme.with_separation(separation))
            run = machine.run({"x": [16.0, 0.0, 8.0]})
            results.append(run.outputs["y"][:3])
        for a, b in zip(results, results[1:]):
            assert np.allclose(a, b, atol=0.3)


class TestErrorMetrics:
    @staticmethod
    def _run(measured, expected):
        from repro.core.machine import MachineRun

        return MachineRun(
            outputs={"y": np.asarray(measured, dtype=float)},
            reference={"y": np.asarray(expected, dtype=float)},
            cycles=[])

    def test_short_measurement_raises_with_both_lengths(self):
        # Regression: a truncated run used to be *silently* compared
        # over the common prefix, hiding the missing samples.
        from repro.errors import SimulationError

        run = self._run([1.0], [1.0, 2.0])
        with pytest.raises(SimulationError,
                           match="has 1 samples but the reference has 2"):
            run.max_error()
        with pytest.raises(SimulationError, match="'y'"):
            run.rms_error("y")

    def test_longer_measurement_compares_reference_prefix(self):
        # Extra flush cycles legitimately extend the measured stream;
        # only the reference-covered prefix is scored.
        run = self._run([1.0, 2.0, 99.0], [1.0, 2.0])
        assert run.max_error() == 0.0
        assert run.rms_error("y") == 0.0

    def test_error_magnitudes(self):
        run = self._run([1.0, 2.5], [1.0, 2.0])
        assert run.max_error() == pytest.approx(0.5)
        assert run.rms_error("y") == pytest.approx(0.5 / np.sqrt(2))


class TestMachineOptions:
    def test_defaults_are_fixed_molecular(self):
        from repro.core.machine import MachineOptions

        options = MachineOptions()
        assert options.clocking == "fixed"
        assert not options.adaptive
        assert options.oscillator == "molecular"

    def test_invalid_clocking_rejected(self):
        from repro.core.machine import MachineOptions
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="clocking"):
            MachineOptions(clocking="turbo")

    def test_settle_fraction_range_enforced(self):
        from repro.core.machine import MachineOptions
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="settle_fraction"):
            MachineOptions(settle_fraction=0.4)
        with pytest.raises(SimulationError, match="settle_residual"):
            MachineOptions(settle_residual=0.0)

    def test_settle_fraction_must_undercut_boundary_fraction(self):
        from repro.apps.filters import moving_average
        from repro.core.machine import MachineOptions
        from repro.errors import SimulationError

        options = MachineOptions(clocking="adaptive",
                                 settle_fraction=0.95)
        with pytest.raises(SimulationError, match="boundary_fraction"):
            SynchronousMachine(moving_average(2), options=options)
