"""End-to-end tests for the synchronous machine (chemistry vs reference).

These are the headline correctness tests: synthesized reaction networks
driven cycle by cycle must reproduce the exact discrete-time semantics.
They integrate stiff ODEs, so streams are kept short.
"""

import numpy as np
import pytest

from repro.core.machine import SynchronousMachine
from repro.errors import SynthesisError

#: Absolute output tolerance (units of signal quantity); the protocol's
#: quantisation floor is ~0.03 per species per cycle.
TOLERANCE = 0.25


@pytest.fixture(scope="module")
def ma2_machine():
    from fractions import Fraction

    from repro.core.dfg import SignalFlowGraph

    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    return SynchronousMachine(sfg)


class TestMovingAverage:
    def test_tracks_reference(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0, 40.0, 0.0, 30.0]})
        assert run.max_error() < TOLERANCE

    def test_output_length_covers_stream(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        assert len(run.outputs["y"]) >= 2

    def test_boundaries_monotonic(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        assert np.all(np.diff(run.boundary_times) > 0)

    def test_state_history_tracks_delay(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 20.0]})
        # After cycle 0 the delay register holds x[0].
        assert run.state_history[1]["d1"] == pytest.approx(10.0, abs=0.2)
        assert run.state_history[2]["d1"] == pytest.approx(20.0, abs=0.3)

    def test_zero_samples_pass_through(self, ma2_machine):
        run = ma2_machine.run({"x": [0.0, 12.0, 0.0]})
        assert run.max_error() < TOLERANCE


class TestFeedback:
    def test_iir_lowpass(self, iir1_sfg):
        machine = SynchronousMachine(iir1_sfg)
        run = machine.run({"x": [16.0, 0.0, 0.0, 8.0]})
        assert run.reference["y"].tolist() == [8.0, 4.0, 2.0, 5.0]
        assert run.max_error() < TOLERANCE


class TestSigned:
    def test_differentiator(self, diff_sfg):
        machine = SynchronousMachine(diff_sfg)
        run = machine.run({"x": [5.0, 20.0, 10.0]})
        assert run.reference["y"].tolist() == [5.0, 15.0, -10.0]
        assert run.max_error() < TOLERANCE

    def test_negative_inputs(self, diff_sfg):
        machine = SynchronousMachine(diff_sfg)
        run = machine.run({"x": [-5.0, 5.0]})
        assert run.reference["y"].tolist() == [-5.0, 10.0]
        assert run.max_error() < TOLERANCE


class TestDriverApi:
    def test_wrong_input_names_rejected(self, ma2_machine):
        with pytest.raises(SynthesisError):
            ma2_machine.run({"z": [1.0]})

    def test_unequal_lengths_rejected(self):
        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("two_in")
        a = sfg.input("a")
        b = sfg.input("b")
        sfg.output("y", sfg.add(a, b))
        machine = SynchronousMachine(sfg)
        with pytest.raises(SynthesisError):
            machine.run({"a": [1.0], "b": [1.0, 2.0]})

    def test_negative_input_unsigned_rejected(self, ma2_machine):
        with pytest.raises(SynthesisError):
            ma2_machine.run({"x": [-1.0]})

    def test_record_keeps_trajectory(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0]}, record=True)
        assert run.trajectory is not None
        assert run.trajectory.t_final == pytest.approx(
            run.boundary_times[-1])

    def test_mean_cycle_time_positive(self, ma2_machine):
        run = ma2_machine.run({"x": [10.0, 10.0]})
        assert 0.5 < run.mean_cycle_time < 20.0


class TestRateRobustness:
    def test_output_invariant_across_separations(self, iir1_sfg):
        """The headline claim: values do not depend on the rates,
        provided fast >> slow."""
        from repro.crn.rates import RateScheme

        results = []
        for separation in (300.0, 1000.0, 3000.0):
            machine = SynchronousMachine(
                iir1_sfg, scheme=RateScheme.with_separation(separation))
            run = machine.run({"x": [16.0, 0.0, 8.0]})
            results.append(run.outputs["y"][:3])
        for a, b in zip(results, results[1:]):
            assert np.allclose(a, b, atol=0.3)
