"""Tests for design composition (cascade / parallel / rename)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.apps import iir_first_order, moving_average
from repro.core.compose import cascade, parallel_sum, rename
from repro.errors import SynthesisError


class TestRename:
    def test_ports_relabelled(self):
        design = moving_average(2).to_matrix()
        renamed = rename(design, inputs={"x": "u"}, outputs={"y": "v"})
        assert renamed.inputs == ["u"]
        assert renamed.outputs == ["v"]
        assert renamed.coefficient("v", "u") == Fraction(1, 2)

    def test_dynamics_unchanged(self):
        design = iir_first_order().to_matrix()
        renamed = rename(design, outputs={"y": "out"})
        a = design.reference_run({"x": [8.0, 0.0, 4.0]})["y"]
        b = renamed.reference_run({"x": [8.0, 0.0, 4.0]})["out"]
        assert a == b

    def test_unknown_port_rejected(self):
        design = moving_average(2).to_matrix()
        with pytest.raises(SynthesisError):
            rename(design, inputs={"nope": "u"})


class TestCascade:
    def test_reference_equals_staged_pipeline(self):
        """cascade(A, B) == B applied to A's output delayed one cycle."""
        first = moving_average(2).to_matrix()
        second = rename(iir_first_order().to_matrix(),
                        inputs={"x": "y"}, outputs={"y": "z"})
        composite = cascade(first, second)
        samples = [10.0, 20.0, 40.0, 0.0, 30.0, 30.0]
        staged_mid = first.reference_run({"x": samples})["y"]
        delayed = [0.0] + staged_mid[:-1]
        staged_out = second.reference_run({"y": delayed})["z"]
        composite_out = composite.reference_run({"x": samples})["z"]
        assert np.allclose(composite_out, staged_out)

    def test_port_mismatch_rejected(self):
        first = moving_average(2).to_matrix()
        second = iir_first_order().to_matrix()  # input is "x", not "y"
        with pytest.raises(SynthesisError):
            cascade(first, second)

    def test_delay_namespaces_do_not_collide(self):
        first = moving_average(3).to_matrix()
        second = rename(moving_average(3).to_matrix(),
                        inputs={"x": "y"}, outputs={"y": "z"})
        composite = cascade(first, second)
        assert len(set(composite.delays)) == len(composite.delays)

    def test_composite_synthesizes_and_runs(self):
        from repro.core.machine import SynchronousMachine

        first = moving_average(2).to_matrix()
        second = rename(moving_average(2).to_matrix(),
                        inputs={"x": "y"}, outputs={"y": "z"})
        composite = cascade(first, second)
        machine = SynchronousMachine(composite)
        run = machine.run({"x": [10.0, 20.0, 40.0]}, extra_cycles=2)
        assert run.max_error() < 0.3


class TestParallelSum:
    def test_outputs_add(self):
        a = moving_average(2).to_matrix()
        b = moving_average(2).to_matrix()
        combined = parallel_sum(a, b)
        samples = [4.0, 8.0, 2.0]
        single = a.reference_run({"x": samples})["y"]
        double = combined.reference_run({"x": samples})["y"]
        assert np.allclose(double, [2 * v for v in single])

    def test_different_ports_rejected(self):
        a = moving_average(2).to_matrix()
        b = rename(moving_average(2).to_matrix(), inputs={"x": "u"})
        with pytest.raises(SynthesisError):
            parallel_sum(a, b)


class TestNameCollisions:
    """Cross-module name collisions fail fast with REPRO-E701."""

    def test_cascade_duplicate_free_inputs_rejected(self):
        from repro.core.dfg import MatrixDesign

        first = MatrixDesign(
            name="f", inputs=["x", "shared"], outputs=["y"], delays=[],
            coefficients={("y", "x"): Fraction(1, 2),
                          ("y", "shared"): Fraction(1, 2)})
        second = MatrixDesign(
            name="s", inputs=["y", "shared"], outputs=["z"], delays=[],
            coefficients={("z", "y"): Fraction(1),
                          ("z", "shared"): Fraction(1)})
        with pytest.raises(SynthesisError, match="REPRO-E701"):
            cascade(first, second)

    def test_link_register_collision_rejected(self):
        from repro.core.dfg import MatrixDesign

        # The second stage exposes a free input named like the link
        # register cascade generates for port "y".
        first = MatrixDesign(
            name="f", inputs=["x"], outputs=["y"], delays=[],
            coefficients={("y", "x"): Fraction(1)})
        second = MatrixDesign(
            name="s", inputs=["y", "lnk_y"], outputs=["z"], delays=[],
            coefficients={("z", "y"): Fraction(1),
                          ("z", "lnk_y"): Fraction(1)})
        with pytest.raises(SynthesisError, match="REPRO-E701"):
            cascade(first, second)

    def test_clean_cascade_unaffected(self):
        first = moving_average(2).to_matrix()
        second = rename(moving_average(2).to_matrix(),
                        inputs={"x": "y"}, outputs={"y": "z"})
        composite = cascade(first, second)
        assert composite.outputs == ["z"]


class TestErrorPaths:
    """Every composition rejection carries REPRO-E701 phrasing."""

    def test_rename_onto_colliding_port_rejected(self):
        from repro.core.dfg import MatrixDesign

        design = MatrixDesign(
            name="two_in", inputs=["x", "u"], outputs=["y"], delays=[],
            coefficients={("y", "x"): Fraction(1, 2),
                          ("y", "u"): Fraction(1, 2)})
        with pytest.raises(SynthesisError, match="REPRO-E701"):
            rename(design, inputs={"x": "u"})

    def test_rename_onto_register_name_rejected(self):
        design = moving_average(2).to_matrix()
        register = design.delays[0]
        with pytest.raises(SynthesisError, match="REPRO-E701"):
            rename(design, inputs={"x": register})

    def test_cascade_width_mismatch_rejected(self):
        first = moving_average(2).to_matrix()
        second = moving_average(2).to_matrix()  # input "x", not "y"
        with pytest.raises(SynthesisError,
                           match="output width mismatch.*REPRO-E701"):
            cascade(first, second)

    def test_parallel_sum_input_mismatch_rejected(self):
        left = moving_average(2).to_matrix()
        right = rename(moving_average(2).to_matrix(),
                       inputs={"x": "u"})
        with pytest.raises(SynthesisError,
                           match="input arity/name mismatch.*REPRO-E701"):
            parallel_sum(left, right)

    def test_parallel_sum_output_mismatch_rejected(self):
        left = moving_average(2).to_matrix()
        right = rename(moving_average(2).to_matrix(),
                       outputs={"y": "v"})
        with pytest.raises(SynthesisError,
                           match="output ports differ.*REPRO-E701"):
            parallel_sum(left, right)
