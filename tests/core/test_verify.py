"""Tests for the static circuit verifier."""

from fractions import Fraction

import pytest

from repro.core.dfg import SignalFlowGraph
from repro.core.synthesis import synthesize
from repro.core.verify import check_circuit, verify_circuit
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import SynthesisError


class TestCleanCircuits:
    def test_ma2_verifies(self, ma2_sfg):
        report = verify_circuit(synthesize(ma2_sfg))
        assert report.ok, report.summary()
        assert len(report.checked) == 4

    def test_signed_design_verifies(self, diff_sfg):
        assert verify_circuit(synthesize(diff_sfg)).ok

    def test_iir_verifies(self, iir1_sfg):
        assert verify_circuit(synthesize(iir1_sfg)).ok

    def test_check_circuit_passes_silently(self, ma2_sfg):
        check_circuit(synthesize(ma2_sfg))


class TestInjectedFaults:
    def test_parked_species_detected(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        # Add a coloured species with no way out of its colour.
        circuit.network.add_species(Species("orphan", color="red"))
        circuit.network.add(None, "orphan", "slow")
        report = verify_circuit(circuit)
        assert not report.ok
        assert any("orphan" in error for error in report.errors)

    def test_wrong_gate_detected(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        # A red source gated by r (its own colour) that *consumes* the
        # source without being a scavenger (it has another product).
        circuit.network.add_reaction(Reaction(
            {Species("r"): 1, Species("s_x_p", color="red"): 1},
            {Species("r"): 1, Species("c_x__y_p", color="green"): 1},
            "slow", label="bad gate"))
        report = verify_circuit(circuit)
        assert not report.ok
        assert any("assigns" in error for error in report.errors)

    def test_color_skip_detected(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        circuit.network.add_reaction(Reaction(
            {Species("b"): 1, Species("s_x_p", color="red"): 1},
            {Species("a_y_p", color="blue"): 1},
            "slow", label="skip a colour"))
        report = verify_circuit(circuit)
        assert not report.ok
        assert any("adjacent" in error for error in report.errors)

    def test_wrong_coefficient_detected(self):
        sfg = SignalFlowGraph("gain")
        x = sfg.input("x")
        sfg.output("y", sfg.gain(Fraction(1, 2), x))
        circuit = synthesize(sfg)
        # Sabotage the gain's closing reaction: produce 2 instead of 1.
        for index, reaction in enumerate(circuit.network.reactions):
            if "close" in reaction.label:
                circuit.network.reactions[index] = Reaction(
                    reaction.reactants,
                    {Species("a_y_p", color="blue"): 2},
                    reaction.rate, label=reaction.label)
        report = verify_circuit(circuit)
        assert not report.ok
        assert any("realise" in error for error in report.errors)

    def test_check_circuit_raises(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        circuit.network.add_species(Species("orphan", color="blue"))
        with pytest.raises(SynthesisError):
            check_circuit(circuit)


class TestImplementability:
    def test_trimolecular_warns(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        circuit.network.add(
            {"s_x_p": 1, "c_x__y_p": 1, "a_y_p": 1}, {"a_y_p": 2}, "fast")
        report = verify_circuit(circuit)
        assert any("trimolecular" in warning
                   for warning in report.warnings)

    def test_order_four_errors(self, ma2_sfg):
        circuit = synthesize(ma2_sfg)
        circuit.network.add({"s_x_p": 4}, {"a_y_p": 1}, "fast")
        report = verify_circuit(circuit)
        assert any("order 4" in error for error in report.errors)
