"""Tests for the DSP application builders."""

from fractions import Fraction

import numpy as np
import pytest

from repro.apps import (biquad, fir, iir_first_order, moving_average,
                        run_filter, tone)
from repro.baselines import (biquad_reference, fir_reference,
                             iir_first_order_reference,
                             moving_average_reference)
from repro.errors import SynthesisError


class TestBuilders:
    def test_moving_average_structure(self):
        design = moving_average(4).to_matrix()
        assert design.delays == ["d1", "d2", "d3"]
        for source in design.sources:
            assert design.coefficient("y", source) == Fraction(1, 4)

    def test_moving_average_needs_tap(self):
        with pytest.raises(SynthesisError):
            moving_average(0)

    def test_fir_zero_coefficients_skipped(self):
        design = fir([Fraction(1, 2), 0, Fraction(1, 4)]).to_matrix()
        assert ("y", "d1") not in design.coefficients
        assert design.coefficient("y", "d2") == Fraction(1, 4)

    def test_fir_all_zero_rejected(self):
        with pytest.raises(SynthesisError):
            fir([0, 0])

    def test_iir_stability_guard(self):
        with pytest.raises(SynthesisError):
            iir_first_order(feedback=Fraction(3, 2))

    def test_biquad_structure(self):
        design = biquad(Fraction(1, 4), Fraction(1, 2), Fraction(1, 4),
                        Fraction(-1, 2), Fraction(1, 4)).to_matrix()
        assert design.coefficient("y", "y1") == Fraction(1, 2)
        assert design.coefficient("y", "y2") == Fraction(-1, 4)
        assert design.signed


class TestReferenceAgreement:
    """The SFG reference semantics must equal the hand-written DSP."""

    def test_moving_average(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        design = moving_average(3).to_matrix()
        ours = design.reference_run({"x": samples})["y"]
        golden = moving_average_reference(3, samples)
        assert np.allclose(ours, golden)

    def test_fir(self):
        coefficients = [Fraction(1, 2), Fraction(-1, 4), Fraction(1, 8)]
        samples = [2.0, 7.0, 1.0, 8.0, 2.0]
        design = fir(coefficients).to_matrix()
        ours = design.reference_run({"x": samples})["y"]
        golden = fir_reference(coefficients, samples)
        assert np.allclose(ours, golden)

    def test_iir(self):
        samples = [16.0, 0.0, 4.0, 0.0]
        design = iir_first_order().to_matrix()
        ours = design.reference_run({"x": samples})["y"]
        golden = iir_first_order_reference(0.5, 0.5, samples)
        assert np.allclose(ours, golden)

    def test_biquad(self):
        b = (Fraction(1, 4), Fraction(1, 2), Fraction(1, 4))
        a = (Fraction(-1, 2), Fraction(1, 4))
        samples = [8.0, 0.0, 4.0, 2.0, 0.0]
        design = biquad(*b, *a).to_matrix()
        ours = design.reference_run({"x": samples})["y"]
        golden = biquad_reference(*(float(v) for v in b),
                                  *(float(v) for v in a), samples)
        assert np.allclose(ours, golden)


class TestEndToEnd:
    def test_moving_average_machine(self):
        run = run_filter(moving_average(2), [10.0, 30.0, 20.0])
        assert run.max_error() < 0.3

    def test_tone_is_non_negative(self):
        samples = tone(16, period=8, amplitude=5.0)
        assert len(samples) == 16
        assert min(samples) >= 0.0


class TestExtendedFilters:
    def test_leaky_integrator_reference(self):
        from repro.apps import leaky_integrator

        design = leaky_integrator(Fraction(1, 2)).to_matrix()
        outputs = design.reference_run({"x": [8.0, 0.0, 0.0, 4.0]})["y"]
        assert outputs == [8.0, 4.0, 2.0, 5.0]

    def test_leaky_integrator_retention_guard(self):
        from repro.apps import leaky_integrator

        with pytest.raises(SynthesisError):
            leaky_integrator(Fraction(3, 2))

    def test_dc_blocker_kills_constant_input(self):
        from repro.apps import dc_blocker

        design = dc_blocker(Fraction(1, 2)).to_matrix()
        outputs = design.reference_run({"x": [10.0] * 10})["y"]
        assert abs(outputs[-1]) < 0.1      # DC removed
        assert outputs[0] == 10.0          # transient passes
        assert design.signed

    def test_comb_echo(self):
        from repro.apps import comb

        design = comb(delay_taps=2, gain=Fraction(1, 2)).to_matrix()
        outputs = design.reference_run(
            {"x": [8.0, 0.0, 0.0, 0.0]})["y"]
        assert outputs == [8.0, 0.0, 4.0, 0.0]

    def test_comb_needs_delay(self):
        from repro.apps import comb

        with pytest.raises(SynthesisError):
            comb(delay_taps=0)

    def test_dc_blocker_machine_e2e(self):
        from repro.apps import dc_blocker
        from repro.core.machine import SynchronousMachine

        machine = SynchronousMachine(dc_blocker(Fraction(1, 2)))
        run = machine.run({"x": [10.0, 10.0, 10.0, 10.0]})
        assert run.max_error() < 0.3
