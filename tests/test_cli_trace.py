"""End-to-end tests for the CLI telemetry flags and the report command."""

import json

import pytest

from repro.cli import main


class TestTraceFlag:
    def test_filter_trace_then_report(self, tmp_path, capsys):
        """The acceptance loop: record a trace, summarise it, export
        the Chrome view -- all from the command line."""
        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "chrome.json"
        metrics = tmp_path / "metrics.json"

        assert main(["filter", "ma", "--input", "10,20,40",
                     "--trace", str(trace),
                     "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {trace}" in out
        assert f"wrote metrics to {metrics}" in out
        records = [json.loads(line)
                   for line in trace.read_text().splitlines() if line]
        names = {r.get("name") for r in records if r["type"] == "span"}
        assert "cycle" in names and "phase:red" in names
        assert any(n and n.startswith("transfer:") for n in names)
        assert json.loads(metrics.read_text())["counters"]["ode.nfev"] > 0

        assert main(["report", str(trace), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        for section in ("cycles", "phase share", "phase overlap",
                        "solver effort", "diagnostics"):
            assert section in out
        events = json.loads(chrome.read_text())
        assert any(e.get("name") == "cycle" for e in events)

    def test_chrome_trace_direct(self, tmp_path, capsys):
        """A .json trace target records Chrome events directly."""
        trace = tmp_path / "trace.json"
        assert main(["filter", "ma", "--input", "5,10",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        events = json.loads(trace.read_text())
        assert any(e.get("ph") == "X" for e in events)

    def test_clock_trace(self, tmp_path, capsys):
        trace = tmp_path / "clock.jsonl"
        assert main(["clock", "--t", "25", "--trace", str(trace)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in trace.read_text().splitlines() if line]
        cycles = [r for r in records
                  if r["type"] == "span" and r["name"] == "cycle"]
        assert len(cycles) >= 10

    def test_counter_trace(self, tmp_path, capsys):
        trace = tmp_path / "counter.jsonl"
        assert main(["counter", "--bits", "2", "--pulses", "3",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in trace.read_text().splitlines() if line]
        pulses = [r for r in records if r["type"] == "span"
                  and r["name"].startswith("pulse:")]
        assert len(pulses) == 3


class TestUnwritableTarget:
    def test_trace_to_missing_dir_fails_cleanly(self, capsys):
        code = main(["filter", "ma", "--input", "1,2",
                     "--trace", "/nonexistent-dir/t.jsonl"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "cannot write trace file" in err

    def test_chrome_target_fails_before_running(self, capsys):
        """The eager writability probe rejects a bad .json target too."""
        code = main(["clock", "--t", "25",
                     "--trace", "/nonexistent-dir/t.json"])
        assert code == 1
        assert "cannot write trace file" in capsys.readouterr().err


class TestReportErrors:
    def test_missing_trace(self, capsys):
        assert main(["report", "/nonexistent-dir/t.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_corrupt_trace(self, tmp_path, capsys):
        # The bad line sits mid-file: only a corrupt *final* line is
        # tolerated as a truncated tail (see test_report.py).
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\nnot json\n{\"type\": \"event\"}\n")
        assert main(["report", str(path)]) == 1
        assert "not a JSONL trace record" in capsys.readouterr().err

    def test_truncated_tail_is_tolerated(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        path.write_text("{\"type\": \"event\", \"name\": \"a\"}\n"
                        "{\"type\": \"ev")
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            assert main(["report", str(path)]) == 0
