"""Whole-machine round trips through the text format.

The strongest serialisation test: a complete synthesized machine
(hundreds of reactions, colour metadata, initial conditions) written to
the ``.crn`` text format, parsed back, and simulated -- trajectories must
be identical, because the round trip preserves the species order and
with it the state-vector layout.
"""

import numpy as np
import pytest

from repro.crn.parser import parse_network
from repro.crn.simulation.ode import OdeSimulator
from repro.core.synthesis import synthesize


class TestMachineRoundTrip:
    @pytest.fixture(scope="class")
    def circuits(self, request):
        from fractions import Fraction

        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("ma2")
        x = sfg.input("x")
        d = sfg.delay("d1", source=x)
        sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                                sfg.gain(Fraction(1, 2), d)))
        original = synthesize(sfg).network
        original.set_initial("s_x_p", 10.0)
        parsed = parse_network(original.to_text())
        return original, parsed

    def test_structure_preserved(self, circuits):
        original, parsed = circuits
        assert parsed.species_names == original.species_names
        assert parsed.n_reactions == original.n_reactions
        assert parsed.initial == original.initial

    def test_metadata_preserved(self, circuits):
        original, parsed = circuits
        for species in original.species:
            replica = parsed.get_species(species.name)
            assert replica.color == species.color
            assert replica.role == species.role

    def test_trajectories_identical(self, circuits):
        original, parsed = circuits
        a = OdeSimulator(original).simulate(5.0, n_samples=40)
        b = OdeSimulator(parsed).simulate(5.0, n_samples=40)
        assert a.names == b.names
        assert np.allclose(a.states, b.states, rtol=1e-10, atol=1e-12)

    def test_reparse_is_fixed_point(self, circuits):
        original, _ = circuits
        once = original.to_text()
        twice = parse_network(once).to_text()
        assert once == twice
