"""Tests for the reporting helpers."""

import numpy as np
import pytest

from repro.crn.simulation.result import Trajectory
from repro.reporting import (csv_table, markdown_table, plot_samples,
                             plot_series, plot_trajectory, write_report)


class TestTables:
    def test_markdown_structure(self):
        text = markdown_table(["name", "value"],
                              [["a", 1.0], ["b", 0.000123]])
        lines = text.splitlines()
        assert lines[0].startswith("| name")
        assert lines[1].startswith("|-")
        assert len(lines) == 4
        assert "1.230e-04" in text

    def test_csv(self):
        text = csv_table(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report(path, "Title", [("Sec", "body")])
        content = path.read_text()
        assert "# Title" in content and "## Sec" in content


class TestPlots:
    def test_plot_series_contains_glyphs(self):
        times = np.linspace(0, 1, 50)
        text = plot_series(times, {"up": times, "down": 1 - times},
                           width=40, height=8, title="demo")
        assert "demo" in text
        assert "#=up" in text and "*=down" in text
        assert text.count("\n") >= 10

    def test_plot_flat_series_ok(self):
        times = np.linspace(0, 1, 10)
        text = plot_series(times, {"flat": np.ones(10)})
        assert "flat" in text

    def test_plot_needs_two_samples(self):
        with pytest.raises(ValueError):
            plot_series(np.array([0.0]), {"x": np.array([1.0])})

    def test_plot_trajectory(self):
        times = np.linspace(0, 2, 30)
        states = np.column_stack([np.sin(times) + 1, np.cos(times) + 1])
        trajectory = Trajectory(times, states, ["A", "B"])
        text = plot_trajectory(trajectory, ["A", "B"])
        assert "#=A" in text

    def test_plot_samples_pads_short_series(self):
        text = plot_samples({"long": [1, 2, 3, 4], "short": [1, 2]})
        assert "short" in text
