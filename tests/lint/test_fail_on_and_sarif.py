"""Exit-code thresholds (``--fail-on``) and SARIF 2.1.0 conformance."""

import json

import pytest

from repro.cli import main
from repro.crn.parser import parse_network
from repro.lint import Severity, lint_network
from repro.lint.output import help_uri, render_sarif

WARNY = ("A + B + C -> D @ fast\ninit A = 1\n"
         "init B = 1\ninit C = 1\n")

PARKED = "species P color=red\n-> P @ slow\n"


class TestExitCodeThresholds:
    @pytest.fixture
    def warning_report(self):
        report = lint_network(parse_network(WARNY))
        assert report.errors == [] and report.warnings
        return report

    def test_default_fails_on_errors_only(self, warning_report):
        assert warning_report.exit_code() == 0

    def test_fail_on_warning(self, warning_report):
        assert warning_report.exit_code(
            fail_on=Severity.WARNING) == 1

    def test_fail_on_note_is_strictest(self, warning_report):
        # A WARNING diagnostic reaches the NOTE threshold too.
        assert warning_report.exit_code(fail_on=Severity.NOTE) == 1

    def test_fail_on_error_explicit(self, warning_report):
        assert warning_report.exit_code(
            fail_on=Severity.ERROR) == 0

    def test_strict_and_fail_on_stricter_wins(self, warning_report):
        # strict == fail_on=warning; an explicit looser fail_on does
        # not relax it, an explicit stricter one tightens it.
        assert warning_report.exit_code(
            strict=True, fail_on=Severity.ERROR) == 1
        assert warning_report.exit_code(
            strict=True, fail_on=Severity.NOTE) == 1


class TestCliFailOn:
    @pytest.fixture
    def warny_crn(self, tmp_path):
        path = tmp_path / "tri.crn"
        path.write_text(WARNY)
        return str(path)

    def test_thresholds(self, warny_crn, capsys):
        assert main(["lint", warny_crn]) == 0
        assert main(["lint", warny_crn, "--fail-on", "error"]) == 0
        assert main(["lint", warny_crn, "--fail-on", "warning"]) == 1
        assert main(["lint", warny_crn, "--fail-on", "note"]) == 1
        capsys.readouterr()

    def test_clean_file_passes_strictest(self, tmp_path, capsys):
        path = tmp_path / "clean.crn"
        path.write_text("""
species X color=red role=signal
species Y color=green role=signal
species Z color=blue role=signal
species r role=indicator
species g role=indicator
species b role=indicator
init X = 50
b + X -> Y @ slow
r + Y -> Z @ slow
g + Z -> X @ slow
-> r @ slow
-> g @ slow
-> b @ slow
r + X -> X @ fast
g + Y -> Y @ fast
b + Z -> Z @ fast
""")
        assert main(["lint", str(path), "--fail-on", "note"]) == 0
        capsys.readouterr()


class TestHelpUris:
    def test_lint_codes_anchor_into_lint_docs(self):
        assert help_uri("REPRO-E101") == "docs/lint.md#repro-e101"
        assert help_uri("REPRO-W201") == "docs/lint.md#repro-w201"

    def test_certificate_codes_anchor_into_certify_docs(self):
        assert help_uri("REPRO-C802") == "docs/certify.md#repro-c802"
        assert help_uri("REPRO-W803") == "docs/certify.md#repro-w803"

    def test_anchors_exist_in_docs(self):
        for doc, code in (("docs/lint.md", "REPRO-E101"),
                          ("docs/lint.md", "REPRO-W501"),
                          ("docs/certify.md", "REPRO-C801"),
                          ("docs/certify.md", "REPRO-W804")):
            anchor = help_uri(code).split("#", 1)[1]
            with open(doc, encoding="utf-8") as handle:
                assert f'id="{anchor}"' in handle.read(), (doc, code)


#: Structural subset of the SARIF 2.1.0 schema: the properties GitHub
#: code scanning actually consumes, with the integer/uri constraints
#: that have bitten this renderer before (regions must be integers,
#: not spans).  CI validates against the full official schema.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "helpUri": {
                                                    "type": "string"},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "level"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer"},
                                                            "endLine": {
                                                                "type":
                                                                "integer"},
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifConformance:
    @pytest.fixture
    def document(self):
        results = [("parked.crn", lint_network(parse_network(PARKED)))]
        return json.loads(render_sarif(results))

    def test_validates_against_subset_schema(self, document):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(document, SARIF_SUBSET_SCHEMA)

    def test_regions_are_integer_lines(self, document):
        regions = [
            loc["physicalLocation"]["region"]
            for result in document["runs"][0]["results"]
            for loc in result.get("locations", [])
            if "region" in loc.get("physicalLocation", {})]
        assert regions, "expected at least one spanned diagnostic"
        for region in regions:
            assert isinstance(region["startLine"], int)
            assert isinstance(region["endLine"], int)
            assert region["endLine"] >= region["startLine"] >= 1

    def test_every_rule_has_help_uri(self, document):
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        for rule in rules:
            assert rule["helpUri"].startswith("docs/")
            assert "#repro-" in rule["helpUri"]
