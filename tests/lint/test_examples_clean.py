"""Every shipped network must lint clean.

Parametrized over all ``.crn`` files under ``examples/`` and every
built-in circuit: none may produce a single error-severity diagnostic.
This is the test CI mirrors with ``python -m repro lint``.
"""

from pathlib import Path

import pytest

from repro.crn.network import Network
from repro.crn.parser import load_network
from repro.lint import lint_circuit, lint_network
from repro.lint.builtins import BUILTIN_CIRCUITS

EXAMPLES = sorted(Path(__file__).resolve()
                  .parents[2].joinpath("examples").glob("*.crn"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "expected shipped .crn examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_file_lints_clean(path):
    network = load_network(path)
    report = lint_network(network, path=str(path))
    assert report.ok, report.summary()
    assert report.warnings == [], [d.format() for d in report.warnings]


@pytest.mark.parametrize("name", sorted(BUILTIN_CIRCUITS))
def test_builtin_lints_clean(name):
    target = BUILTIN_CIRCUITS[name]()
    if isinstance(target, Network):
        report = lint_network(target)
    else:
        report = lint_circuit(target)
    assert report.ok, report.summary()
    assert report.warnings == [], [d.format() for d in report.warnings]


class TestVerifyShimEquivalence:
    """`verify_circuit` must behave exactly as the pre-lint version."""

    def test_checked_labels_unchanged(self, ma2_sfg):
        from repro.core.synthesis import synthesize
        from repro.core.verify import verify_circuit

        report = verify_circuit(synthesize(ma2_sfg))
        assert report.checked == ["parking", "gate legality",
                                  "coefficient realisation",
                                  "implementability"]
        assert report.ok

    def test_legacy_messages_preserved(self, ma2_sfg):
        from repro.core.synthesis import synthesize
        from repro.core.verify import verify_circuit
        from repro.crn.species import Species

        circuit = synthesize(ma2_sfg)
        circuit.network.add_species(Species("orphan", color="red"))
        circuit.network.add(None, "orphan", "slow")
        report = verify_circuit(circuit)
        assert report.errors == [
            "coloured species 'orphan' has no way out of its colour: "
            "standing quantity would block the red-absence indicator "
            "forever"]

    def test_shim_only_runs_legacy_rules(self, ma2_sfg):
        """New rules (rates, conservation, ...) must not leak into
        verify_circuit: its report shape is API."""
        from repro.core.synthesis import synthesize
        from repro.core.verify import verify_circuit

        circuit = synthesize(ma2_sfg)
        # A deliberately thin numeric separation would trip REPRO-W203,
        # but the shim must not run that rule.
        circuit.network.add({"s_x_p": 1}, {"a_y_p": 1}, 200.0)
        report = verify_circuit(circuit)
        assert all("separation" not in w for w in report.warnings)
