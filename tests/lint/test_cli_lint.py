"""Tests for the ``python -m repro lint`` subcommand."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def clean_crn(tmp_path):
    path = tmp_path / "clean.crn"
    path.write_text("""
species X color=red role=signal
species Y color=green role=signal
species Z color=blue role=signal
species r role=indicator
species g role=indicator
species b role=indicator
init X = 50
b + X -> Y @ slow
r + Y -> Z @ slow
g + Z -> X @ slow
-> r @ slow
-> g @ slow
-> b @ slow
r + X -> X @ fast
g + Y -> Y @ fast
b + Z -> Z @ fast
""")
    return str(path)


@pytest.fixture
def broken_crn(tmp_path):
    path = tmp_path / "broken.crn"
    path.write_text("species P color=red\n-> P @ slow\n")
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_crn, capsys):
        assert main(["lint", clean_crn]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_errors_exit_nonzero(self, broken_crn, capsys):
        assert main(["lint", broken_crn]) == 1
        assert "REPRO-E101" in capsys.readouterr().out

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_strict_turns_warnings_fatal(self, tmp_path, capsys):
        path = tmp_path / "tri.crn"
        path.write_text("A + B + C -> D @ fast\ninit A = 1\n"
                        "init B = 1\ninit C = 1\n")
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--strict"]) == 1

    def test_disable_suppresses_rule(self, broken_crn):
        assert main(["lint", broken_crn, "--disable", "parking"]) == 0

    def test_unknown_rule_reports_error(self, broken_crn, capsys):
        assert main(["lint", broken_crn, "--disable", "no-such"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err


class TestBuiltinTargets:
    def test_counter_builtin_clean(self, capsys):
        assert main(["lint", "--circuit", "counter"]) == 0

    def test_unknown_builtin_is_an_error(self, capsys):
        assert main(["lint", "--circuit", "warp-core"]) == 1
        assert "unknown built-in" in capsys.readouterr().err


class TestFormats:
    def test_json_output(self, broken_crn, capsys):
        assert main(["lint", broken_crn, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1

    def test_sarif_to_file(self, broken_crn, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        assert main(["lint", broken_crn, "--format", "sarif",
                     "--output", str(out)]) == 1
        document = json.loads(out.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "REPRO-E101"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "parking" in out and "REPRO-E101" in out
