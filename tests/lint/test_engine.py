"""Tests for the lint engine: registry, config, severities, reports."""

import pytest

from repro.crn.parser import parse_network
from repro.lint import (LintConfig, LintConfigError, RULE_REGISTRY,
                        Severity, all_codes, lint_network)
from repro.lint.output import render_json, render_sarif, render_text


CLEAN = """
species X color=red role=signal
species Y color=green role=signal
species Z color=blue role=signal
species r role=indicator
species g role=indicator
species b role=indicator
init X = 50
b + X -> Y @ slow
r + Y -> Z @ slow
g + Z -> X @ slow
-> r @ slow
-> g @ slow
-> b @ slow
r + X -> X @ fast
g + Y -> Y @ fast
b + Z -> Z @ fast
"""

PARKED = """
species P color=red role=signal
-> P @ slow
"""


class TestRegistry:
    def test_expected_rules_registered(self):
        assert set(RULE_REGISTRY) >= {
            "parking", "gate-legality", "coefficient-realisation",
            "implementability", "rate-category", "rate-separation",
            "indicator-misuse", "conservation", "reachability",
            "composition"}

    def test_every_code_is_namespaced(self):
        for code, registered in all_codes().items():
            assert code.startswith(("REPRO-E", "REPRO-W", "REPRO-C")), code
            assert code in registered.codes

    def test_codes_are_unique_across_rules(self):
        seen = {}
        for registered in RULE_REGISTRY.values():
            for code in registered.codes:
                assert code not in seen, \
                    f"{code} in both {seen.get(code)} and {registered.name}"
                seen[code] = registered.name

    def test_default_severity_by_prefix(self):
        registered = RULE_REGISTRY["gate-legality"]
        assert registered.severity_for("REPRO-E102") == Severity.ERROR


class TestConfig:
    def test_unknown_rule_rejected(self):
        with pytest.raises(LintConfigError):
            LintConfig(select=frozenset({"no-such-rule"}))

    def test_unknown_code_rejected(self):
        with pytest.raises(LintConfigError):
            LintConfig(severity_overrides={"REPRO-E999": Severity.NOTE})

    def test_select_limits_rules(self):
        config = LintConfig(select=frozenset({"parking"}))
        assert [r.name for r in config.enabled_rules()] == ["parking"]

    def test_disable_removes_rule(self):
        config = LintConfig(disable=frozenset({"parking"}))
        names = [r.name for r in config.enabled_rules()]
        assert "parking" not in names and "gate-legality" in names

    def test_severity_override_applies(self):
        network = parse_network(PARKED)
        config = LintConfig(
            severity_overrides={"REPRO-E101": Severity.WARNING})
        report = lint_network(network, config)
        assert report.ok  # demoted: no errors left
        assert any(d.code == "REPRO-E101" for d in report.warnings)


class TestReport:
    def test_clean_network_passes(self):
        report = lint_network(parse_network(CLEAN))
        assert report.ok, report.summary()
        assert not report.errors and not report.warnings

    def test_circuit_rules_skipped_on_raw_network(self):
        report = lint_network(parse_network(CLEAN))
        assert "coefficient-realisation" in report.skipped
        assert "composition" in report.skipped
        assert "coefficient-realisation" not in report.checked

    def test_exit_code_semantics(self):
        clean = lint_network(parse_network(CLEAN))
        assert clean.exit_code() == 0
        broken = lint_network(parse_network(PARKED))
        assert broken.exit_code() == 1

    def test_strict_exit_on_warnings(self):
        network = parse_network("A + B + C -> D @ fast\ninit A = 1\n"
                                "init B = 1\ninit C = 1")
        report = lint_network(network)
        assert report.errors == []
        assert any(d.code == "REPRO-W106" for d in report.warnings)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_diagnostics_carry_spans_from_parser(self):
        report = lint_network(parse_network(PARKED), path="broken.crn")
        diag = report.errors[0]
        assert diag.span == (2, 2)  # the `species P` line
        assert diag.path == "broken.crn"
        assert "broken.crn:2" in diag.format()


class TestRenderers:
    @pytest.fixture
    def results(self):
        return [("clean.crn", lint_network(parse_network(CLEAN))),
                ("parked.crn", lint_network(parse_network(PARKED)))]

    def test_text_mentions_code_and_counts(self, results):
        text = render_text(results)
        assert "REPRO-E101" in text
        assert "1 error(s)" in text

    def test_json_is_parseable(self, results):
        import json

        payload = json.loads(render_json(results))
        assert payload["summary"]["errors"] == 1
        codes = [d["code"] for t in payload["targets"]
                 for d in t["diagnostics"]]
        assert "REPRO-E101" in codes

    def test_sarif_shape(self, results):
        import json

        document = json.loads(render_sarif(results))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(all_codes()) == rule_ids
        assert any(r["ruleId"] == "REPRO-E101" for r in run["results"])
