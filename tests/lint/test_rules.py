"""Every diagnostic code fires on a deliberately-broken network."""

from fractions import Fraction

import pytest

from repro.core.compose import cascade
from repro.core.dfg import SignalFlowGraph
from repro.core.synthesis import synthesize
from repro.crn.network import Network
from repro.crn.parser import parse_network
from repro.errors import SynthesisError
from repro.lint import lint_circuit, lint_network, merge_diagnostics
from repro.lint.rules.rates import classify_rate
from repro.crn.rates import RateScheme


def codes_of(report):
    return report.codes()


# A colour-complete header shared by the protocol-rule fixtures.
HEADER = """
species X color=red role=signal
species Y color=green role=signal
species Z color=blue role=signal
species r role=indicator
species g role=indicator
species b role=indicator
init X = 10
-> r @ slow
-> g @ slow
-> b @ slow
r + X -> X @ fast
g + Y -> Y @ fast
b + Z -> Z @ fast
"""

ROTATION = """
b + X -> Y @ slow
r + Y -> Z @ slow
g + Z -> X @ slow
"""


class TestProtocolRules:
    def test_E101_parked_species(self):
        network = parse_network(HEADER + ROTATION
                                + "species P color=red\n-> P @ slow\n")
        report = lint_network(network)
        assert "REPRO-E101" in codes_of(report)

    def test_E102_wrong_gate(self):
        # Transfer out of red gated by r; the protocol assigns b.
        network = parse_network(HEADER + """
r + X -> Y @ slow
b + Y -> Z @ slow
g + Z -> X @ slow
""")
        report = lint_network(network)
        assert "REPRO-E102" in codes_of(report)

    def test_E103_colour_skip(self):
        # Red quantity lands directly in blue.
        network = parse_network(HEADER + ROTATION + "b + X -> Z @ slow\n")
        report = lint_network(network)
        assert "REPRO-E103" in codes_of(report)


class TestCoefficientRealisation:
    def test_E104_wrong_gain(self):
        sfg = SignalFlowGraph("gain")
        x = sfg.input("x")
        sfg.output("y", sfg.gain(Fraction(1, 2), x))
        circuit = synthesize(sfg)
        # Sabotage the bookkeeping: claim a different coefficient.
        circuit.design.coefficients[("y", "x")] = Fraction(3, 4)
        report = lint_circuit(circuit)
        assert "REPRO-E104" in codes_of(report)


class TestImplementability:
    def test_E105_order_four(self):
        network = parse_network("2 A + 2 B -> C @ fast\n"
                                "init A = 4\ninit B = 4\n")
        assert "REPRO-E105" in codes_of(lint_network(network))

    def test_W106_trimolecular(self):
        network = parse_network("A + B + C -> D @ fast\n"
                                "init A = 1\ninit B = 1\ninit C = 1\n")
        assert "REPRO-W106" in codes_of(lint_network(network))


class TestRateRules:
    def test_classify_rate(self):
        scheme = RateScheme()
        assert classify_rate("fast", scheme) == "fast"
        assert classify_rate("slow", scheme) == "slow"
        assert classify_rate("amp", scheme) == "slow"
        assert classify_rate("warp", scheme) is None
        assert classify_rate(1000.0, scheme) == "fast"
        assert classify_rate(1.0, scheme) == "slow"

    def test_W201_unknown_category(self):
        network = parse_network("A -> B @ warp\ninit A = 1\nB -> @ slow\n")
        assert "REPRO-W201" in codes_of(lint_network(network))

    def test_W201_ambiguous_numeric(self):
        # sqrt(1000 * 1) ~ 31.6: a rate of 40 sits in neither band.
        network = parse_network("A -> B @ 40\ninit A = 1\nB -> @ slow\n")
        assert "REPRO-W201" in codes_of(lint_network(network))

    def test_W202_mixed_cycle(self):
        network = parse_network("A -> B @ fast\nB -> A @ slow\n"
                                "init A = 1\n")
        assert "REPRO-W202" in codes_of(lint_network(network))

    def test_W203_thin_separation(self):
        network = parse_network("A -> B @ 200\nC -> D @ 3\n"
                                "init A = 1\ninit C = 1\n"
                                "B -> @ 200\nD -> @ 3\n")
        assert "REPRO-W203" in codes_of(lint_network(network))

    def test_separation_threshold_option(self):
        from repro.lint import LintConfig

        network = parse_network("A -> B @ 200\nC -> D @ 3\n"
                                "init A = 1\ninit C = 1\n"
                                "B -> @ 200\nD -> @ 3\n")
        config = LintConfig(options={"separation_threshold": 10.0})
        assert "REPRO-W203" not in codes_of(lint_network(network, config))


class TestIndicatorRules:
    def test_E301_indicator_feeds_data(self):
        # An indicator drained by an unrelated, uncoloured reaction.
        network = parse_network(HEADER + ROTATION
                                + "species U\nr + U -> U + U @ slow\n"
                                  "init U = 1\nU -> @ slow\n")
        report = lint_network(network)
        assert "REPRO-E301" in codes_of(report)

    def test_W302_unconsumed_indicator(self):
        network = parse_network("""
species X color=red role=signal
species r role=indicator
init X = 1
X -> @ slow
-> r @ slow
""")
        report = lint_network(network)
        assert "REPRO-W302" in codes_of(report)

    def test_clean_rotation_has_no_indicator_findings(self):
        report = lint_network(parse_network(HEADER + ROTATION))
        assert not {"REPRO-E301", "REPRO-W302"} & codes_of(report)


class TestConservationRules:
    def test_W401_uncovered_signal(self):
        network = parse_network("species X color=red\ninit X = 5\n"
                                "X -> @ slow\n")
        assert "REPRO-W401" in codes_of(lint_network(network))

    def test_W402_leaky_total(self):
        network = parse_network("species X color=red\ninit X = 5\n"
                                "X -> @ slow\n")
        assert "REPRO-W402" in codes_of(lint_network(network))

    def test_conserved_rotation_is_silent(self):
        report = lint_network(parse_network(HEADER + ROTATION))
        assert not {"REPRO-W401", "REPRO-W402"} & codes_of(report)


class TestReachabilityRules:
    def test_W501_stranded_species(self):
        network = parse_network("A -> B @ slow\ninit A = 5\n")
        report = lint_network(network)
        diags = [d for d in report.diagnostics if d.code == "REPRO-W501"]
        assert [d.subject for d in diags] == ["B"]

    def test_W501_exempts_aux_pools(self):
        network = parse_network("species B role=aux\nA -> B @ slow\n"
                                "init A = 5\n")
        assert "REPRO-W501" not in codes_of(lint_network(network))

    def test_W502_deadlocked_cycle(self):
        # P and Q feed each other but neither has any supply.
        network = parse_network("A -> B @ slow\ninit A = 5\nB -> @ slow\n"
                                "P -> Q @ slow\nQ -> P @ slow\n")
        report = lint_network(network)
        assert "REPRO-W502" in codes_of(report)

    def test_driver_injected_inputs_are_not_dead(self):
        # A consumed-only species counts as an external input.
        network = parse_network("P0 + B0 -> B1 @ fast\ninit B0 = 1\n"
                                "B1 -> @ fast\n")
        assert "REPRO-W502" not in codes_of(lint_network(network))


class TestCompositionRules:
    def _design(self, name="m", input_name="x", output="y"):
        sfg = SignalFlowGraph(name)
        x = sfg.input(input_name)
        sfg.output(output, sfg.gain(Fraction(1, 2), x))
        return sfg

    def test_W703_reserved_prefix_port(self):
        circuit = synthesize(self._design(input_name="lnk_x"))
        report = lint_circuit(circuit)
        assert "REPRO-W703" in codes_of(report)

    def test_clean_ports_are_silent(self):
        report = lint_circuit(synthesize(self._design()))
        assert "REPRO-W703" not in codes_of(report)

    def test_E701_conflicting_merge_metadata(self):
        a = Network("a")
        a.add_species("S", color="red", role="signal")
        b = Network("b")
        b.add_species("S", color="blue", role="signal")
        diagnostics = merge_diagnostics(a, b)
        assert [d.code for d in diagnostics] == ["REPRO-E701"]

    def test_W702_double_initialised_merge(self):
        a = Network("a")
        a.add_species("S", initial=5.0)
        b = Network("b")
        b.add_species("S", initial=3.0)
        diagnostics = merge_diagnostics(a, b)
        assert [d.code for d in diagnostics] == ["REPRO-W702"]

    def test_compatible_merge_is_silent(self):
        a = Network("a")
        a.add_species("S", color="red")
        b = Network("b")
        b.add_species("S")  # bare default upgrades cleanly
        assert merge_diagnostics(a, b) == []

    def test_cascade_rejects_duplicate_inputs(self):
        from repro.core.dfg import MatrixDesign

        first = MatrixDesign(
            name="f", inputs=["x", "shared"], outputs=["y"], delays=[],
            coefficients={("y", "x"): Fraction(1, 2),
                          ("y", "shared"): Fraction(1, 2)})
        second = MatrixDesign(
            name="s", inputs=["y", "shared"], outputs=["z"], delays=[],
            coefficients={("z", "y"): Fraction(1),
                          ("z", "shared"): Fraction(1)})
        with pytest.raises(SynthesisError, match="REPRO-E701"):
            cascade(first, second)
