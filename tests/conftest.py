"""Shared fixtures for the test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.dfg import SignalFlowGraph


@pytest.fixture
def ma2_sfg() -> SignalFlowGraph:
    """Two-tap moving average: y[n] = (x[n] + x[n-1]) / 2."""
    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    d = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), d)))
    return sfg


@pytest.fixture
def iir1_sfg() -> SignalFlowGraph:
    """First-order IIR low-pass: y[n] = x[n]/2 + y[n-1]/2."""
    sfg = SignalFlowGraph("iir1")
    x = sfg.input("x")
    state = sfg.delay("s")
    y = sfg.add(sfg.gain(Fraction(1, 2), x),
                sfg.gain(Fraction(1, 2), state))
    sfg.output("y", y)
    sfg.connect(y, state)
    return sfg


@pytest.fixture
def diff_sfg() -> SignalFlowGraph:
    """Signed differentiator: y[n] = x[n] - x[n-1]."""
    sfg = SignalFlowGraph("diff")
    x = sfg.input("x")
    d = sfg.delay("d", source=x)
    sfg.output("y", sfg.subtract(x, d))
    return sfg
