"""The ``python -m repro robustness`` command."""

import json

import pytest

from repro.cli import main


class TestRobustness:
    def test_runs_and_reports(self, capsys):
        assert main(["robustness", "--circuit", "counter",
                     "--trials", "2", "--seed", "0", "--no-margin"]) == 0
        out = capsys.readouterr().out
        assert "robustness campaign" in out
        assert "baseline" in out
        assert "failures: 0" in out

    def test_json_report_is_valid_and_complete(self, tmp_path, capsys):
        report = tmp_path / "campaign.json"
        assert main(["robustness", "--circuit", "counter",
                     "--trials", "2", "--seed", "0",
                     "--margin-trials", "1",
                     "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["circuit"] == "counter"
        assert payload["bit_errors"] == 0
        assert payload["failures"] == 0
        assert payload["margin"]["margin"] is not None
        assert payload["margin"]["classification"].startswith("REPRO-R")
        assert len(payload["trials"]) == payload["n_trials"]

    def test_explicit_fault_selection(self, capsys):
        assert main(["robustness", "--circuit", "counter",
                     "--trials", "2", "--seed", "0", "--no-margin",
                     "--fault", "rate_mismatch",
                     "--fault", "leak"]) == 0
        out = capsys.readouterr().out
        assert "rate_mismatch" in out
        assert "leak" in out
        assert "dilution" not in out  # default suite not used

    def test_unknown_fault_is_a_usage_error(self, capsys):
        assert main(["robustness", "--circuit", "counter",
                     "--trials", "2", "--no-margin",
                     "--fault", "gremlins"]) == 2
        assert "unknown fault" in capsys.readouterr().err

    def test_deterministic_across_invocations(self, tmp_path):
        reports = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(["robustness", "--circuit", "counter",
                         "--trials", "3", "--seed", "7", "--no-margin",
                         "--json", str(path)]) == 0
            reports.append(json.loads(path.read_text()))
        assert reports[0] == reports[1]
