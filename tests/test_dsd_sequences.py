"""Tests for nucleotide sequence assignment."""

import pytest

from repro.crn.network import Network
from repro.dsd import compile_network, recognition, toehold
from repro.dsd.sequences import (SequenceDesigner, gc_fraction, hamming,
                                 longest_run, reverse_complement,
                                 validate_assignment)
from repro.dsd.structures import Strand
from repro.errors import NetworkError


class TestPrimitives:
    def test_reverse_complement(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAC") == "GTTT"

    def test_gc_fraction(self):
        assert gc_fraction("GGCC") == 1.0
        assert gc_fraction("ATAT") == 0.0
        assert gc_fraction("") == 0.0

    def test_longest_run(self):
        assert longest_run("AAAT") == 3
        assert longest_run("ACAC") == 1

    def test_hamming(self):
        assert hamming("ACGT", "ACGA") == 1
        with pytest.raises(NetworkError):
            hamming("A", "AA")


class TestDesigner:
    def test_deterministic_per_seed(self):
        a = SequenceDesigner(seed=5).sequence_for(toehold("t1"))
        b = SequenceDesigner(seed=5).sequence_for(toehold("t1"))
        assert a == b

    def test_domain_and_complement_consistent(self):
        designer = SequenceDesigner()
        domain = recognition("x1")
        forward = designer.sequence_for(domain)
        backward = designer.sequence_for(domain.complement)
        assert backward == reverse_complement(forward)
        assert len(forward) == domain.length

    def test_constraints_respected(self):
        designer = SequenceDesigner(seed=1)
        for i in range(12):
            sequence = designer.sequence_for(recognition(f"x{i}"))
            assert gc_fraction(sequence) <= 0.7
            assert longest_run(sequence) <= 4

    def test_same_length_domains_separated(self):
        designer = SequenceDesigner(seed=2)
        a = designer.sequence_for(recognition("xa"))
        b = designer.sequence_for(recognition("xb"))
        assert hamming(a, b) >= int(0.3 * len(a))

    def test_three_letter_code_on_forward_domains(self):
        designer = SequenceDesigner(seed=3)
        sequence = designer.sequence_for(recognition("x"))
        assert "G" not in sequence

    def test_strand_sequence_concatenates(self):
        designer = SequenceDesigner()
        strand = Strand("s", (toehold("t"), recognition("x")))
        sequence = designer.strand_sequence(strand)
        assert len(sequence) == strand.length

    def test_impossible_constraints_raise(self):
        designer = SequenceDesigner(gc_bounds=(0.9, 1.0),
                                    alphabet="AT", max_attempts=50)
        with pytest.raises(NetworkError):
            designer.sequence_for(toehold("t"))


class TestInventoryAssignment:
    @pytest.fixture(scope="class")
    def compilation(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.add({"A": 1, "B": 1}, "C", 0.5)
        return compile_network(network)

    def test_assign_covers_all_strands(self, compilation):
        designer = SequenceDesigner()
        sequences = designer.assign(compilation.inventory)
        assert len(sequences) == \
            compilation.inventory.n_distinct_strands

    def test_bonds_are_watson_crick(self, compilation):
        designer = SequenceDesigner()
        designer.assign(compilation.inventory)
        validate_assignment(designer, compilation.inventory)

    def test_fasta_format(self, compilation):
        text = SequenceDesigner().to_fasta(compilation.inventory)
        lines = text.strip().splitlines()
        assert lines[0].startswith(">")
        assert all(set(line) <= set("ACGT") for line in lines
                   if not line.startswith(">"))
