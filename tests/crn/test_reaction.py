"""Unit tests for the reaction model."""

import pytest

from repro.crn.reaction import Reaction, reversible
from repro.crn.species import Species
from repro.errors import NetworkError


class TestConstruction:
    def test_from_strings(self):
        r = Reaction("A", "B")
        assert r.reactants == {Species("A"): 1}
        assert r.products == {Species("B"): 1}

    def test_from_iterables_accumulate(self):
        r = Reaction(["A", "A", "B"], ["C"])
        assert r.reactants == {Species("A"): 2, Species("B"): 1}

    def test_from_mapping(self):
        r = Reaction({"A": 2}, {"B": 3}, rate="fast")
        assert r.reactants[Species("A")] == 2
        assert r.products[Species("B")] == 3

    def test_zero_coefficients_dropped(self):
        r = Reaction({"A": 1, "B": 0}, {"C": 1})
        assert Species("B") not in r.reactants

    def test_empty_sides(self):
        source = Reaction(None, "X")
        assert source.reactants == {}
        sink = Reaction("X", None)
        assert sink.products == {}

    def test_both_sides_empty_rejected(self):
        with pytest.raises(NetworkError):
            Reaction(None, None)

    def test_negative_stoichiometry_rejected(self):
        with pytest.raises(NetworkError):
            Reaction({"A": -1}, {"B": 1})

    def test_negative_rate_rejected(self):
        with pytest.raises(NetworkError):
            Reaction("A", "B", rate=-1.0)

    def test_symbolic_rate_kept(self):
        assert Reaction("A", "B", rate="slow").rate == "slow"


class TestQueries:
    def test_order(self):
        assert Reaction(None, "X").order == 0
        assert Reaction("A", "B").order == 1
        assert Reaction({"A": 2}, "B").order == 2
        assert Reaction({"A": 2, "B": 1}, "C").order == 3

    def test_species(self):
        r = Reaction({"A": 1, "B": 1}, {"C": 2})
        assert r.species == {Species("A"), Species("B"), Species("C")}

    def test_net_change(self):
        r = Reaction({"A": 2, "B": 1}, {"B": 1, "C": 3})
        assert r.net_change() == {Species("A"): -2, Species("C"): 3}

    def test_catalytic(self):
        r = Reaction({"E": 1, "S": 1}, {"E": 1, "P": 1})
        assert r.is_catalytic_in("E")
        assert not r.is_catalytic_in("S")
        assert not r.is_catalytic_in("P")

    def test_conserves_mass_of_group(self):
        transfer = Reaction({"R": 1, "b": 1}, {"G": 1})
        assert transfer.conserves_mass_of(["R", "G"])
        assert not transfer.conserves_mass_of(["R"])
        assert not transfer.conserves_mass_of(["R", "G", "b"])


class TestEqualityAndRendering:
    def test_equality_ignores_label(self):
        a = Reaction("A", "B", "fast", label="one")
        b = Reaction("A", "B", "fast", label="two")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_rate(self):
        assert Reaction("A", "B", "fast") != Reaction("A", "B", "slow")

    def test_str_contains_parts(self):
        text = str(Reaction({"A": 2, "b": 1}, {"C": 1}, "fast"))
        assert "2 A" in text and "b" in text
        assert "-> C" in text and "@ fast" in text

    def test_str_empty_side(self):
        assert str(Reaction(None, "X", 1.5)).startswith("0 -> X")

    def test_relabeled_and_with_rate(self):
        r = Reaction("A", "B", "slow")
        assert r.relabeled("tag").label == "tag"
        assert r.with_rate(2.0).rate == 2.0


class TestReversible:
    def test_builds_both_directions(self):
        fwd, bwd = reversible({"A": 2}, {"I": 1}, "slow", "fast")
        assert fwd.reactants == {Species("A"): 2}
        assert fwd.rate == "slow"
        assert bwd.products == {Species("A"): 2}
        assert bwd.rate == "fast"
