"""Tests for the parallel sweep runner and ensemble determinism."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.simulation import ParallelSweepRunner, run_seeded
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.tau_leaping import TauLeapingSimulator


def _square(value):
    return value * value


def _decay(x0=200):
    network = Network()
    network.add("A", "B", 0.5)
    network.set_initial("A", x0)
    return network


class TestRunner:
    def test_preserves_payload_order(self):
        runner = ParallelSweepRunner(n_workers=2)
        assert runner.map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_serial_forced(self):
        runner = ParallelSweepRunner(n_workers=1)
        assert runner.map(_square, range(4)) == [0, 1, 4, 9]

    def test_run_seeded_wrapper(self):
        assert run_seeded(_square, [2, 3], n_workers=2) == [4, 9]


class TestEnsembleDeterminism:
    def test_mean_trajectory_identical_serial_vs_parallel(self):
        """The ensemble mean is a pure function of the seed: fixed-size
        chunking makes the serial and pooled reductions bitwise equal."""
        serial = StochasticSimulator(_decay(), seed=5).mean_trajectory(
            2.0, n_runs=12, n_samples=25, n_workers=1)
        pooled = StochasticSimulator(_decay(), seed=5).mean_trajectory(
            2.0, n_runs=12, n_samples=25, n_workers=2)
        assert np.array_equal(serial.states, pooled.states)
        assert serial.meta["events"] == pooled.meta["events"]

    def test_mean_trajectory_tau_parallel(self):
        serial = TauLeapingSimulator(_decay(500), seed=9).mean_trajectory(
            1.0, n_runs=10, n_samples=20, n_workers=1)
        pooled = TauLeapingSimulator(_decay(500), seed=9).mean_trajectory(
            1.0, n_runs=10, n_samples=20, n_workers=2)
        assert np.array_equal(serial.states, pooled.states)

    def test_mean_trajectory_reproducible_across_instances(self):
        a = StochasticSimulator(_decay(), seed=13).mean_trajectory(
            1.0, n_runs=6, n_samples=10)
        b = StochasticSimulator(_decay(), seed=13).mean_trajectory(
            1.0, n_runs=6, n_samples=10)
        assert np.array_equal(a.states, b.states)
