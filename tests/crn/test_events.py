"""Unit tests for the event helpers."""

import pytest

from repro.crn.network import Network
from repro.crn.simulation.events import (species_above, species_below,
                                         total_above, total_below)
from repro.crn.simulation.ode import OdeSimulator


@pytest.fixture
def splitter():
    """A -> B and A -> C in parallel; totals drain/accumulate."""
    network = Network()
    network.add("A", "B", 1.0)
    network.add("A", "C", 1.0)
    network.set_initial("A", 10.0)
    return network


class TestEventDirections:
    def test_species_below_marks_terminal(self, splitter):
        event = species_below(splitter, "A", 2.0)
        assert event.terminal is True
        assert event.direction == -1.0

    def test_non_terminal_event_records_nothing(self, splitter):
        event = species_below(splitter, "A", 5.0, terminal=False)
        simulator = OdeSimulator(splitter)
        trajectory = simulator.simulate(3.0, events=[event])
        assert trajectory.t_final == pytest.approx(3.0)

    def test_total_below_fires_on_group(self, splitter):
        event = total_below(splitter, ["A"], 1.0)
        simulator = OdeSimulator(splitter)
        trajectory = simulator.simulate(10.0, events=[event])
        assert trajectory.final("A") == pytest.approx(1.0, rel=1e-3)

    def test_total_above_fires_on_group(self, splitter):
        event = total_above(splitter, ["B", "C"], 8.0)
        simulator = OdeSimulator(splitter)
        trajectory = simulator.simulate(10.0, events=[event])
        assert (trajectory.final("B") + trajectory.final("C")) == \
            pytest.approx(8.0, rel=1e-3)

    def test_unknown_species_rejected(self, splitter):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            species_above(splitter, "Z", 1.0)
