"""Golden tests: compiled sparse kinetics vs the dense reference.

:class:`MassActionKinetics` compiles order-grouped index arrays so the
hot paths run as a handful of vector operations.  The straightforward
triple-loop :class:`DenseKineticsReference` exists purely as the golden
implementation; these tests pin the compiled paths to it at 1e-12 over
every example network in the repository plus synthesized machine
networks, on random states including exact zeros.
"""

from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.core.synthesis import synthesize
from repro.crn.kinetics import (DenseKineticsReference, MassActionKinetics,
                                build_kinetics)
from repro.crn.parser import parse_network
from repro.crn.rates import RateScheme

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.crn"))

TOL = dict(rtol=1e-12, atol=1e-12)


def _machine_networks():
    from repro.core.dfg import SignalFlowGraph

    ma2 = SignalFlowGraph("ma2")
    x = ma2.input("x")
    d1 = ma2.delay("d1")
    ma2.output("y", ma2.add(ma2.gain(Fraction(1, 2), x),
                            ma2.gain(Fraction(1, 2), d1)))
    ma2.connect(x, d1)

    iir1 = SignalFlowGraph("iir1")
    x = iir1.input("x")
    s = iir1.delay("s")
    y = iir1.add(iir1.gain(Fraction(1, 2), x), iir1.gain(Fraction(1, 2), s))
    iir1.output("y", y)
    iir1.connect(y, s)

    return [synthesize(ma2).network, synthesize(iir1).network]


def _all_networks():
    networks = [(path.stem, parse_network(path.read_text(), path.stem))
                for path in EXAMPLES]
    networks += [(network.name or f"machine{i}", network)
                 for i, network in enumerate(_machine_networks())]
    return networks


def _states(network, rng):
    n = network.n_species
    base = rng.uniform(0.0, 30.0, size=n)
    zeros = base.copy()
    zeros[rng.integers(0, n, size=max(n // 3, 1))] = 0.0
    return [base, zeros, np.zeros(n), np.full(n, 1.0)]


@pytest.mark.parametrize(("name", "network"), _all_networks(),
                         ids=lambda value: value if isinstance(value, str)
                         else "")
class TestDenseSparseEquivalence:
    def test_rates_rhs_jacobian_match_reference(self, name, network):
        kinetics = build_kinetics(network, RateScheme())
        reference = DenseKineticsReference(network, kinetics.rates)
        rng = np.random.default_rng(hash(name) % (2 ** 32))
        for x in _states(network, rng):
            np.testing.assert_allclose(
                kinetics.reaction_rates(x),
                reference.reaction_rates(x), **TOL)
            np.testing.assert_allclose(
                kinetics.rhs(0.0, x), reference.rhs(0.0, x), **TOL)
            np.testing.assert_allclose(
                kinetics.jacobian(0.0, x), reference.jacobian(0.0, x),
                **TOL)

    def test_sparse_jacobian_matches_dense(self, name, network):
        kinetics = build_kinetics(network, RateScheme())
        rng = np.random.default_rng(hash(name) % (2 ** 31))
        for x in _states(network, rng):
            np.testing.assert_allclose(
                kinetics.jacobian_sparse(0.0, x).toarray(),
                kinetics.jacobian(0.0, x), **TOL)

    def test_sparsity_pattern_covers_nonzeros(self, name, network):
        kinetics = build_kinetics(network, RateScheme())
        pattern = np.asarray(kinetics.jacobian_sparsity()) != 0
        rng = np.random.default_rng(0)
        for x in _states(network, rng):
            nonzero = kinetics.jacobian(0.0, x) != 0.0
            assert np.all(pattern | ~nonzero), \
                "jacobian entry outside declared sparsity pattern"

    def test_propensities_match_reference(self, name, network):
        kinetics = build_kinetics(network, RateScheme())
        reference = DenseKineticsReference(network, kinetics.rates)
        constants = kinetics.stochastic_constants(volume=1.0)
        rng = np.random.default_rng(7)
        for _ in range(4):
            counts = rng.integers(0, 25, size=network.n_species)
            np.testing.assert_allclose(
                kinetics.propensities(counts, constants),
                reference.propensities(counts, constants), **TOL)


class TestReactionDependencies:
    def test_dependencies_cover_every_firing(self):
        """Firing reaction j may only change the propensities the
        dependency graph lists for j."""
        for name, network in _all_networks():
            kinetics = build_kinetics(network, RateScheme())
            constants = kinetics.stochastic_constants(volume=1.0)
            deps = kinetics.reaction_dependencies()
            rng = np.random.default_rng(11)
            counts = rng.integers(2, 20, size=network.n_species)
            base = kinetics.propensities(counts, constants).copy()
            for j in range(network.n_reactions):
                fired = counts + kinetics.stoich[:, j]
                changed = set(np.nonzero(np.abs(
                    kinetics.propensities(fired, constants)
                    - base) > 1e-12)[0].tolist())
                listed = set(int(i) for i in deps[j])
                assert changed <= listed, (
                    f"{name}: firing reaction {j} changes propensities "
                    f"{sorted(changed - listed)} missing from the "
                    f"dependency graph")
