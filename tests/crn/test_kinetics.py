"""Unit tests for compiled mass-action kinetics."""

import numpy as np
import pytest

from repro.crn.kinetics import build_kinetics
from repro.crn.network import Network


def _simple_network():
    network = Network()
    network.add({"A": 1}, {"B": 1}, 2.0)          # A -> B
    network.add({"A": 1, "B": 1}, {"C": 1}, 3.0)  # A + B -> C
    network.add({"B": 2}, {"D": 1}, 0.5)          # 2B -> D
    network.add(None, {"A": 1}, 4.0)              # 0 -> A
    return network


class TestDeterministic:
    def test_reaction_rates(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        x = np.zeros(network.n_species)
        x[network.species_index("A")] = 2.0
        x[network.species_index("B")] = 3.0
        rates = kinetics.reaction_rates(x)
        assert rates[0] == pytest.approx(2.0 * 2.0)
        assert rates[1] == pytest.approx(3.0 * 2.0 * 3.0)
        assert rates[2] == pytest.approx(0.5 * 9.0)
        assert rates[3] == pytest.approx(4.0)

    def test_rhs_respects_stoichiometry(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        x = np.zeros(network.n_species)
        x[network.species_index("A")] = 1.0
        x[network.species_index("B")] = 1.0
        dx = kinetics.rhs(0.0, x)
        ia = network.species_index("A")
        ib = network.species_index("B")
        # dA = -k1 A - k2 A B + k4; dB = +k1 A - k2 A B - 2 k3 B^2
        assert dx[ia] == pytest.approx(-2.0 - 3.0 + 4.0)
        assert dx[ib] == pytest.approx(2.0 - 3.0 - 2 * 0.5)

    def test_negative_states_clamped(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        x = -np.ones(network.n_species)
        assert np.all(np.isfinite(kinetics.rhs(0.0, x)))

    def test_jacobian_matches_finite_differences(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        rng = np.random.default_rng(0)
        x = rng.uniform(0.5, 3.0, network.n_species)
        analytic = kinetics.jacobian(0.0, x)
        eps = 1e-6
        for j in range(network.n_species):
            bump = x.copy()
            bump[j] += eps
            numeric = (kinetics.rhs(0.0, bump) - kinetics.rhs(0.0, x)) / eps
            assert np.allclose(analytic[:, j], numeric, rtol=1e-4,
                               atol=1e-6)

    def test_rate_vector_mismatch_rejected(self):
        network = _simple_network()
        with pytest.raises(ValueError):
            build_kinetics(network, rates=np.ones(2))


class TestStochastic:
    def test_constants_volume_scaling(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        c1 = kinetics.stochastic_constants(volume=1.0)
        c2 = kinetics.stochastic_constants(volume=10.0)
        # Unimolecular unchanged, bimolecular /V, zeroth * V.
        assert c2[0] == pytest.approx(c1[0])
        assert c2[1] == pytest.approx(c1[1] / 10.0)
        assert c2[3] == pytest.approx(c1[3] * 10.0)

    def test_propensities_combinatorics(self):
        network = _simple_network()
        kinetics = build_kinetics(network)
        constants = kinetics.stochastic_constants()
        counts = np.zeros(network.n_species, dtype=np.int64)
        counts[network.species_index("B")] = 3
        a = kinetics.propensities(counts, constants)
        # 2B -> D: c * C(3,2) = (0.5 * 2!) * 3 = 3.0
        assert a[2] == pytest.approx(0.5 * 2 * 3)
        # A -> B has zero propensity with no A.
        assert a[0] == 0.0

    def test_propensity_zero_below_stoichiometry(self):
        network = Network()
        network.add({"X": 2}, {"Y": 1}, 1.0)
        kinetics = build_kinetics(network)
        constants = kinetics.stochastic_constants()
        counts = np.array([1, 0])
        assert kinetics.propensities(counts, constants)[0] == 0.0
