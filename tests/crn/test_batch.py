"""Batched structure-of-arrays ensemble engine (PR 8).

The contract under test is *bitwise* equivalence: a seeded trial run
through :class:`BatchStochasticSimulator` must reproduce the reference
:class:`StochasticSimulator` realisation exactly -- states, sample
grid and event count -- so cached baselines and seeded corpora stay
valid whichever backend executes them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance.generator import BUDGETS, generate_targets
from repro.crn.network import Network
from repro.crn.simulation import (SimulationOptions, backend_names,
                                  register_backend, simulate)
from repro.crn.simulation.batch import (BatchStochasticSimulator,
                                        EnsembleResult)
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.sweep import simulate_mean_chunk
from repro.crn.simulation.result import Trajectory
from repro.errors import SimulationError


def _chain(x0=40):
    network = Network()
    network.add("A", "B", 2.0)
    network.add({"B": 2}, "C", 0.7)
    network.add({}, "A", 1.5)
    network.set_initial("A", x0)
    return network


def _decay(x0=30):
    network = Network()
    network.add("A", "B", 1.0)
    network.set_initial("A", x0)
    return network


def _reference_runs(network, seeds, t_final, n_samples=40, rates=None,
                    volume=1.0, initial=None):
    runs = []
    for seed in seeds:
        simulator = StochasticSimulator(
            network, rates=rates, volume=volume,
            seed=np.random.default_rng(seed))
        runs.append(simulator.simulate(t_final, n_samples=n_samples,
                                       initial=initial))
    return runs


def _assert_trials_match(ensemble, runs):
    assert len(ensemble) == len(runs)
    for i, run in enumerate(runs):
        trial = ensemble.trial(i)
        assert np.array_equal(trial.times, run.times)
        assert np.array_equal(trial.states, run.states)
        assert trial.meta["events"] == run.meta["events"]


class TestBitwiseEquivalence:
    def test_chain_network_matches_reference(self):
        network = _chain()
        seeds = np.random.SeedSequence(42).spawn(24)
        ensemble = BatchStochasticSimulator(network).simulate_ensemble(
            3.0, seeds=seeds, n_samples=40)
        _assert_trials_match(
            ensemble, _reference_runs(network, seeds, 3.0))

    def test_absorbing_network_matches_reference(self):
        seeds = np.random.SeedSequence(7).spawn(16)
        network = _decay(x0=5)
        ensemble = BatchStochasticSimulator(network).simulate_ensemble(
            50.0, seeds=seeds, n_samples=25)
        runs = _reference_runs(network, seeds, 50.0, n_samples=25)
        _assert_trials_match(ensemble, runs)
        assert ensemble.absorbed.all()

    @pytest.mark.parametrize("budget_name", ["tiny", "small"])
    def test_generator_corpus_matches_reference(self, budget_name):
        """Every stochastic conformance-generator target is bitwise
        identical between backends on matched per-trial seeds."""
        budget = BUDGETS[budget_name]
        checked = 0
        for index, target in enumerate(generate_targets(budget, seed=3)):
            if not target.stochastic:
                continue
            rates = target.network.rate_vector(target.scheme)
            seeds = np.random.SeedSequence([3, index]).spawn(4)
            t_final = min(target.t_final, 1.0)
            try:
                runs = _reference_runs(target.network, seeds, t_final,
                                       n_samples=17, rates=rates)
                ensemble = BatchStochasticSimulator(
                    target.network, rates=rates).simulate_ensemble(
                        t_final, seeds=seeds, n_samples=17)
            except SimulationError:
                continue  # over the event budget for a test-sized run
            _assert_trials_match(ensemble, runs)
            checked += 1
        assert checked >= 1

    def test_t_start_shift_matches_reference(self):
        network = _chain()
        seeds = np.random.SeedSequence(5).spawn(6)
        ensemble = BatchStochasticSimulator(network).simulate_ensemble(
            4.0, seeds=seeds, t_start=1.0, n_samples=33)
        runs = []
        for seed in seeds:
            simulator = StochasticSimulator(
                network, seed=np.random.default_rng(seed))
            runs.append(simulator.simulate(4.0, t_start=1.0,
                                           n_samples=33))
        _assert_trials_match(ensemble, runs)

    def test_per_trial_rates_match_reference(self):
        network = _chain()
        seeds = np.random.SeedSequence(8).spawn(10)
        rng = np.random.default_rng(123)
        draws = rng.uniform(0.2, 3.0, size=(10, network.n_reactions))
        ensemble = BatchStochasticSimulator(network).simulate_ensemble(
            2.0, seeds=seeds, rates=draws, n_samples=21)
        for i, seed in enumerate(seeds):
            run = _reference_runs(network, [seed], 2.0, n_samples=21,
                                  rates=draws[i])[0]
            trial = ensemble.trial(i)
            assert np.array_equal(trial.states, run.states)
            assert trial.meta["events"] == run.meta["events"]

    def test_per_trial_initials_and_volume_match_reference(self):
        network = _chain()
        seeds = np.random.SeedSequence(9).spawn(6)
        initials = [{"A": 10 + 5 * i} for i in range(6)]
        ensemble = BatchStochasticSimulator(
            network, volume=2.5).simulate_ensemble(
                2.0, seeds=seeds, initial=initials, n_samples=21)
        for i, seed in enumerate(seeds):
            run = _reference_runs(network, [seed], 2.0, n_samples=21,
                                  volume=2.5, initial=initials[i])[0]
            assert np.array_equal(ensemble.trial(i).states, run.states)

    def test_mean_matches_mean_trajectory_serial_and_pooled(self):
        network = _chain()
        reference = StochasticSimulator(network, seed=17).mean_trajectory(
            2.0, n_runs=24, n_samples=31, n_workers=1)
        batch_serial = StochasticSimulator(
            network, seed=17).mean_trajectory(
                2.0, n_runs=24, n_samples=31, n_workers=1,
                backend="batch")
        batch_pooled = StochasticSimulator(
            network, seed=17).mean_trajectory(
                2.0, n_runs=24, n_samples=31, n_workers=2,
                backend="batch")
        for candidate in (batch_serial, batch_pooled):
            assert np.array_equal(candidate.states, reference.states)
            assert candidate.meta == reference.meta


class TestFacadeRouting:
    def test_backend_batch_matches_reference(self):
        network = _chain()
        options = SimulationOptions(seed=np.random.default_rng(7))
        reference = simulate(network, 2.0, "ssa", options=options)
        options = SimulationOptions(seed=np.random.default_rng(7),
                                    backend="batch")
        batch = simulate(network, 2.0, "ssa", options=options)
        assert np.array_equal(batch.states, reference.states)
        assert batch.meta["events"] == reference.meta["events"]

    def test_backend_batch_ode_delegates_to_reference(self):
        network = _chain()
        reference = simulate(network, 2.0, "ode")
        batch = simulate(network, 2.0, "ode",
                         options=SimulationOptions(backend="batch"))
        assert np.array_equal(batch.states, reference.states)

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="backend"):
            simulate(_chain(), 1.0, "ssa",
                     options=SimulationOptions(backend="gpu"))

    def test_registry_lists_backends(self):
        names = backend_names()
        assert "reference" in names and "batch" in names

    def test_registered_backend_receives_dispatch(self):
        from repro.crn.simulation import _BACKEND_DISPATCH

        seen = {}

        def probe(engine, network, t_final, scheme, options):
            seen["engine"] = engine
            return simulate(network, t_final, engine, scheme=scheme)

        register_backend("probe-backend", probe)
        try:
            result = simulate(_chain(), 1.0, "ode",
                              options=SimulationOptions(
                                  backend="probe-backend"))
            assert seen["engine"] == "ode"
            assert result.states.shape[0] > 0
        finally:
            _BACKEND_DISPATCH.pop("probe-backend", None)


class TestEnsembleSemantics:
    def test_max_events_raises_with_trial_index(self):
        network = _chain(x0=200)
        seeds = np.random.SeedSequence(1).spawn(4)
        with pytest.raises(SimulationError, match="ensemble trial"):
            BatchStochasticSimulator(network).simulate_ensemble(
                5.0, seeds=seeds, max_events=10)

    def test_n_trials_spawning_matches_explicit_root(self):
        network = _chain()
        first = BatchStochasticSimulator(
            network, seed=3).simulate_ensemble(1.0, n_trials=5,
                                               n_samples=11)
        seeds = np.random.SeedSequence(3).spawn(5)
        second = BatchStochasticSimulator(network).simulate_ensemble(
            1.0, seeds=seeds, n_samples=11)
        assert np.array_equal(first.states, second.states)

    def test_invalid_ensemble_arguments(self):
        simulator = BatchStochasticSimulator(_chain())
        with pytest.raises(SimulationError, match="n_trials"):
            simulator.simulate_ensemble(1.0)
        with pytest.raises(SimulationError, match="disagrees"):
            simulator.simulate_ensemble(
                1.0, 3, seeds=np.random.SeedSequence(0).spawn(2))
        with pytest.raises(SimulationError, match="non-empty"):
            simulator.simulate_ensemble(1.0, seeds=[])
        with pytest.raises(SimulationError, match="t_final"):
            simulator.simulate_ensemble(0.0, 2)


# -- active-mask freeze properties (hypothesis) ----------------------------

_FREEZE_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestFreezeProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n_trials=st.integers(min_value=1, max_value=10),
           x0=st.integers(min_value=0, max_value=25))
    @_FREEZE_SETTINGS
    def test_absorbed_trials_stay_absorbed(self, seed, n_trials, x0):
        """Once a trial's total propensity hits zero it is frozen: the
        recorded tail repeats the absorbing state and no further events
        fire, however ragged the rest of the batch still is."""
        network = _decay(x0=x0)
        ensemble = BatchStochasticSimulator(
            network, seed=seed).simulate_ensemble(
                200.0, n_trials=n_trials, n_samples=15)
        a = ensemble.states[:, :, network.species_names.index("A")]
        assert np.all(np.diff(a, axis=1) <= 0)
        for i in range(n_trials):
            assert ensemble.events[i] == x0 - a[i, -1]
            if ensemble.absorbed[i]:
                assert a[i, -1] == 0
                frozen = np.nonzero(a[i] == 0)[0]
                assert np.all(a[i, frozen[0]:] == 0)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n_trials=st.integers(min_value=1, max_value=8))
    @_FREEZE_SETTINGS
    def test_no_post_horizon_events(self, seed, n_trials):
        """A trial that crosses ``t_final`` is retired immediately:
        extending the horizon with the same seeds replays the short
        ensemble's samples exactly (prefix property), so no short-run
        trial can have consumed post-horizon draws."""
        network = _chain(x0=15)
        seeds = np.random.SeedSequence(seed).spawn(n_trials)
        simulator = BatchStochasticSimulator(network)
        short = simulator.simulate_ensemble(1.0, seeds=seeds,
                                            n_samples=11)
        long = simulator.simulate_ensemble(2.0, seeds=seeds,
                                           n_samples=21)
        # The grids share their first ten points bitwise (the short
        # grid's final point is forced to exactly 1.0 by linspace, so
        # it is excluded from the prefix comparison).
        assert np.array_equal(long.times[:10], short.times[:10])
        assert np.array_equal(long.states[:, :10], short.states[:, :10])
        assert np.all(long.events >= short.events)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @_FREEZE_SETTINGS
    def test_trial_views_match_bulk_arrays(self, seed):
        network = _chain(x0=10)
        ensemble = BatchStochasticSimulator(
            network, seed=seed).simulate_ensemble(1.0, n_trials=4,
                                                  n_samples=9)
        for i, trial in enumerate(ensemble.trials()):
            assert np.array_equal(trial.states, ensemble.states[i])
        assert np.array_equal(ensemble.final_states(),
                              ensemble.states[:, -1])


# -- ensemble chunk grid validation ----------------------------------------

class _VaryingGridSimulator:
    """Stub whose sample grid drifts between constructions."""

    calls = 0
    _supports_batch_ensembles = False

    def __init__(self, network, rates=None, volume=1.0, seed=None):
        self.network = network

    def simulate(self, t_final, n_samples=10, **kwargs):
        cls = type(self)
        size = n_samples + cls.calls
        cls.calls += 1
        times = np.linspace(0.0, t_final, size)
        states = np.zeros((size, len(self.network.species_names)))
        return Trajectory(times, states, self.network.species_names,
                          {"events": 0})


class TestChunkGridValidation:
    def test_mismatched_run_grid_raises_with_index(self):
        network = _decay()
        _VaryingGridSimulator.calls = 0
        spec = {"cls": _VaryingGridSimulator, "network": network,
                "rates": None, "volume": 1.0, "extra": {}}
        seeds = np.random.SeedSequence(0).spawn(3)
        with pytest.raises(SimulationError,
                           match="chunk run 1 .*misaligned"):
            simulate_mean_chunk((spec, seeds, 1.0, 10, {}))

    def test_unknown_chunk_backend_raises(self):
        spec = {"cls": StochasticSimulator, "network": _decay(),
                "rates": None, "volume": 1.0, "extra": {},
                "backend": "quantum"}
        seeds = np.random.SeedSequence(0).spawn(2)
        with pytest.raises(SimulationError, match="quantum"):
            simulate_mean_chunk((spec, seeds, 1.0, 10, {}))

    def test_cross_chunk_mismatch_raises_with_chunk_index(self,
                                                          monkeypatch):
        import repro.crn.simulation.sweep as sweep_module

        grids = iter([np.linspace(0.0, 1.0, 5),
                      np.linspace(0.0, 1.0, 7)])

        def fake_chunk(payload):
            times = next(grids)
            return times, np.zeros((times.size, 2)), 0

        monkeypatch.setattr(sweep_module, "simulate_mean_chunk",
                            fake_chunk)
        simulator = StochasticSimulator(_decay(), seed=0)
        with pytest.raises(SimulationError,
                           match="chunk 1 .*misaligned"):
            simulator.mean_trajectory(1.0, n_runs=16, n_samples=5,
                                      n_workers=1)

    def test_mean_trajectory_unknown_backend_raises(self):
        simulator = StochasticSimulator(_decay(), seed=0)
        with pytest.raises(SimulationError, match="gpu"):
            simulator.mean_trajectory(1.0, n_runs=2, backend="gpu")


class TestEnsembleResult:
    def test_summed_states_matches_left_associated_sum(self):
        network = _chain()
        ensemble = BatchStochasticSimulator(
            network, seed=2).simulate_ensemble(1.0, n_trials=9,
                                               n_samples=7)
        expected = ensemble.states[0].copy()
        for i in range(1, 9):
            expected += ensemble.states[i]
        assert np.array_equal(ensemble.summed_states(), expected)

    def test_len_and_meta(self):
        ensemble = BatchStochasticSimulator(
            _decay(), seed=1).simulate_ensemble(1.0, n_trials=3,
                                                n_samples=5)
        assert len(ensemble) == 3
        assert isinstance(ensemble, EnsembleResult)
        assert ensemble.states.shape == (3, 5, 2)
