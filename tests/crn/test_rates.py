"""Unit tests for rate categories and schemes."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.rates import (AMP, DAMP, DEFAULT_FAST, DEFAULT_SLOW, FAST,
                             GEN, SLOW, RateScheme, jittered_rates)
from repro.errors import NetworkError


class TestRateScheme:
    def test_defaults_match_paper(self):
        scheme = RateScheme()
        assert scheme.fast == DEFAULT_FAST == 1000.0
        assert scheme.slow == DEFAULT_SLOW == 1.0
        assert scheme.separation == 1000.0

    def test_all_categories_present(self):
        scheme = RateScheme()
        for category in (FAST, SLOW, GEN, AMP, DAMP):
            assert scheme.resolve(category) > 0

    def test_resolve_numeric_passthrough(self):
        assert RateScheme().resolve(3.5) == 3.5
        assert RateScheme().resolve(0) == 0.0

    def test_resolve_unknown_category(self):
        with pytest.raises(NetworkError):
            RateScheme().resolve("medium")

    def test_resolve_invalid_numeric(self):
        with pytest.raises(NetworkError):
            RateScheme().resolve(-1.0)
        with pytest.raises(NetworkError):
            RateScheme().resolve(float("nan"))

    def test_nonpositive_category_rejected(self):
        with pytest.raises(NetworkError):
            RateScheme({FAST: 0.0, SLOW: 1.0})

    def test_missing_aux_categories_filled(self):
        scheme = RateScheme({FAST: 100.0, SLOW: 2.0})
        assert scheme.resolve(GEN) == pytest.approx(2.0 * 0.01)
        assert scheme.resolve(AMP) == pytest.approx(2.0 * 30.0)
        assert scheme.resolve(DAMP) == pytest.approx(2.0)

    def test_with_separation(self):
        scheme = RateScheme.with_separation(50.0, slow=2.0)
        assert scheme.separation == pytest.approx(50.0)
        assert scheme.slow == 2.0

    def test_with_separation_invalid(self):
        with pytest.raises(NetworkError):
            RateScheme.with_separation(0.0)

    def test_scaled_tracks_slow_for_aux(self):
        scheme = RateScheme().scaled(fast_factor=2.0, slow_factor=3.0)
        assert scheme.fast == pytest.approx(2000.0)
        assert scheme.slow == pytest.approx(3.0)
        assert scheme.resolve(GEN) == pytest.approx(0.01 * 3.0)
        assert scheme.resolve(AMP) == pytest.approx(30.0 * 3.0)


class TestJitteredRates:
    def _network(self):
        network = Network()
        network.add("A", "B", "slow")
        network.add("B", "C", "fast")
        network.add("C", "A", 5.0)
        return network

    def test_shape_and_bounds(self):
        network = self._network()
        rng = np.random.default_rng(0)
        rates = jittered_rates(network, RateScheme(), rng,
                               low=0.5, high=2.0)
        nominal = network.rate_vector(RateScheme())
        assert rates.shape == nominal.shape
        assert np.all(rates >= 0.5 * nominal)
        assert np.all(rates <= 2.0 * nominal)

    def test_jitter_actually_varies(self):
        network = self._network()
        rng = np.random.default_rng(1)
        a = jittered_rates(network, RateScheme(), rng)
        b = jittered_rates(network, RateScheme(), rng)
        assert not np.allclose(a, b)
