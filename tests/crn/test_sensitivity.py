"""Tests for rate-sensitivity analysis."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.simulation.sensitivity import (observable_final,
                                              rate_sensitivities,
                                              sensitivity_report)
from repro.errors import SimulationError


class TestSensitivities:
    def test_rate_dependent_observable_has_unit_sensitivity(self):
        """For A -> B at time t << 1/k, [B](t) ~ k A0 t, so
        d ln B / d ln k ~ 1."""
        network = Network()
        network.add("A", "B", 0.1)
        network.set_initial("A", 10.0)
        sensitivities = rate_sensitivities(
            network, observable_final("B", t_final=0.2))
        assert sensitivities[0] == pytest.approx(1.0, abs=0.1)

    def test_settled_observable_is_insensitive(self):
        """Once the transfer has completed, the final value no longer
        depends on the rate at all."""
        network = Network()
        network.add("A", "B", 1.0)
        network.set_initial("A", 10.0)
        sensitivities = rate_sensitivities(
            network, observable_final("B", t_final=100.0))
        assert abs(sensitivities[0]) < 1e-3

    def test_phased_transfer_value_is_rate_insensitive(self):
        """The headline claim, quantified: every reaction of the
        phase-ordered delay chain has |d ln Y / d ln k| << 1."""
        from repro.core.memory import build_delay_chain

        network, _, _ = build_delay_chain(n=1, initial=20.0)
        sensitivities = rate_sensitivities(
            network, observable_final("Y", t_final=30.0))
        assert np.max(np.abs(sensitivities)) < 0.05

    def test_zero_baseline_rejected(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.set_initial("A", 1.0)
        with pytest.raises(SimulationError):
            rate_sensitivities(network,
                               observable_final("C", t_final=1.0))

    def test_report_sorted_by_magnitude(self):
        network = Network()
        network.add("A", "B", 0.1)
        network.add("B", "C", 50.0)   # fast downstream: insensitive
        network.set_initial("A", 10.0)
        report = sensitivity_report(
            network, observable_final("C", t_final=0.2), top=2)
        assert len(report) == 2
        assert abs(report[0][1]) >= abs(report[1][1])
        assert "A -> B" in report[0][0]
