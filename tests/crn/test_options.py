"""SimulationOptions: canonical serialisation and replace() hygiene."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import SimulationOptions
from repro.crn.simulation.options import OPTIONS_SCHEMA
from repro.errors import SimulationError


class TestReplace:
    def test_valid_field_replaced(self):
        opts = SimulationOptions().replace(rtol=1e-9)
        assert opts.rtol == 1e-9

    def test_unknown_field_names_nearest(self):
        with pytest.raises(TypeError,
                           match="did you mean 'n_samples'"):
            SimulationOptions().replace(n_sample=10)

    def test_unknown_field_without_a_near_miss(self):
        with pytest.raises(TypeError, match="valid options are"):
            SimulationOptions().replace(zzzzz=1)


class TestCanonicalDict:
    def test_defaults_collapse_to_schema_tag(self):
        assert SimulationOptions().canonical_dict() == {
            "schema": OPTIONS_SCHEMA}

    def test_non_default_fields_appear(self):
        payload = SimulationOptions(
            solver="BDF", n_samples=50).canonical_dict()
        assert payload == {"schema": OPTIONS_SCHEMA,
                           "solver": "BDF", "n_samples": 50}

    def test_mapping_initial_serialises_sorted(self):
        payload = SimulationOptions(
            initial={"b": 2, "a": 1.5}).canonical_dict()
        assert list(payload["initial"]) == ["a", "b"]
        assert payload["initial"]["b"] == 2.0
        json.dumps(payload)

    def test_array_initial_rejected(self):
        opts = SimulationOptions(initial=np.array([1.0, 2.0]))
        with pytest.raises(SimulationError, match="declaration order"):
            opts.canonical_dict()

    @pytest.mark.parametrize("field,value", [
        ("seed", 3),
        ("rates", (1.0, 2.0)),
        ("events", (lambda t, y: y[0],)),
        ("tracer", object()),
        ("metrics", object()),
    ])
    def test_uncacheable_fields_rejected(self, field, value):
        opts = SimulationOptions(**{field: value})
        with pytest.raises(SimulationError, match=field):
            opts.canonical_dict()
