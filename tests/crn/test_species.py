"""Unit tests for species and colour categories."""

import pytest

from repro.crn.species import (COLORS, Species, as_species, next_color,
                               previous_color)
from repro.errors import NetworkError


class TestSpecies:
    def test_basic_construction(self):
        s = Species("X")
        assert s.name == "X"
        assert s.color is None
        assert s.role == "signal"

    def test_colored_construction(self):
        s = Species("R_1", color="red", role="clock")
        assert s.color == "red"
        assert s.role == "clock"

    @pytest.mark.parametrize("bad", ["", "1X", "a b", "x-y", "@x"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(NetworkError):
            Species(bad)

    @pytest.mark.parametrize("good", ["X", "x_1", "R_d1", "a.b", "s[3]",
                                      "_tmp"])
    def test_valid_names_accepted(self, good):
        assert Species(good).name == good

    def test_invalid_color_rejected(self):
        with pytest.raises(NetworkError):
            Species("X", color="purple")

    def test_invalid_role_rejected(self):
        with pytest.raises(NetworkError):
            Species("X", role="villain")

    def test_equality_is_by_name_only(self):
        assert Species("X", color="red") == Species("X", color="blue")
        assert Species("X") != Species("Y")

    def test_hash_consistent_with_equality(self):
        assert hash(Species("X", color="red")) == hash(Species("X"))
        assert len({Species("X", color="red"), Species("X")}) == 1

    def test_same_metadata(self):
        a = Species("X", color="red")
        assert a.same_metadata(Species("X", color="red"))
        assert not a.same_metadata(Species("X", color="green"))
        assert not a.same_metadata(Species("Y", color="red"))

    def test_str(self):
        assert str(Species("R_1", color="red")) == "R_1"


class TestColors:
    def test_rotation_order(self):
        assert COLORS == ("red", "green", "blue")

    @pytest.mark.parametrize("color,expected", [
        ("red", "green"), ("green", "blue"), ("blue", "red")])
    def test_next_color(self, color, expected):
        assert next_color(color) == expected

    @pytest.mark.parametrize("color,expected", [
        ("red", "blue"), ("green", "red"), ("blue", "green")])
    def test_previous_color(self, color, expected):
        assert previous_color(color) == expected

    def test_next_previous_inverse(self):
        for color in COLORS:
            assert previous_color(next_color(color)) == color

    def test_unknown_color_raises(self):
        with pytest.raises(NetworkError):
            next_color("violet")
        with pytest.raises(NetworkError):
            previous_color("violet")


class TestAsSpecies:
    def test_from_string(self):
        assert as_species("X") == Species("X")

    def test_identity_on_species(self):
        s = Species("X", color="red")
        assert as_species(s) is s
