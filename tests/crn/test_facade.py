"""The repro.simulate facade: dispatch, options, deprecation shims."""

import numpy as np
import pytest

from repro import SimulationOptions, parse_network, simulate
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.ode import simulate as ode_simulate
from repro.crn.simulation.result import SimulationResult
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.tau_leaping import TauLeapingSimulator
from repro.errors import SimulationError


@pytest.fixture
def network():
    return parse_network("""
        network: facade_demo
        X -> Y @ fast
        Y -> Z @ slow
        init X = 30
    """)


class TestDispatch:
    def test_ode_matches_direct_engine(self, network):
        facade = simulate(network, 6.0, n_samples=50)
        direct = OdeSimulator(network).simulate(6.0, n_samples=50)
        np.testing.assert_array_equal(facade.times, direct.times)
        np.testing.assert_array_equal(facade.states, direct.states)

    def test_ssa_matches_direct_engine_same_seed(self, network):
        facade = simulate(network, 6.0, method="ssa", seed=7)
        direct = StochasticSimulator(network, seed=7).simulate(
            6.0, n_samples=200)
        np.testing.assert_array_equal(facade.states, direct.states)

    def test_tau_matches_direct_engine_same_seed(self, network):
        facade = simulate(network, 6.0, method="tau",
                          options=SimulationOptions(seed=11))
        direct = TauLeapingSimulator(network, seed=11).simulate(
            6.0, n_samples=200)
        np.testing.assert_array_equal(facade.states, direct.states)

    def test_unknown_method_raises(self, network):
        with pytest.raises(SimulationError, match="unknown simulation"):
            simulate(network, 1.0, method="quantum")

    def test_events_rejected_under_stochastic_semantics(self, network):
        with pytest.raises(SimulationError, match="only supported by"):
            simulate(network, 1.0, method="ssa",
                     events=[lambda t, x: x[0] - 1.0])

    def test_overrides_beat_options_bag(self, network):
        base = SimulationOptions(n_samples=10)
        trajectory = simulate(network, 6.0, options=base, n_samples=33)
        assert len(trajectory) == 33

    def test_unknown_override_raises_typeerror(self, network):
        with pytest.raises(TypeError, match="unknown simulation option"):
            simulate(network, 1.0, nsamples=10)


class TestResultProtocol:
    @pytest.mark.parametrize("method", ["ode", "ssa", "tau"])
    def test_every_engine_satisfies_the_protocol(self, network, method):
        trajectory = simulate(network, 4.0, method=method, seed=1,
                              n_samples=20)
        assert isinstance(trajectory, SimulationResult)
        assert trajectory.species_index("Z") == \
            trajectory.names.index("Z")
        final = trajectory.final_state()
        assert set(final) == {"X", "Y", "Z"}
        assert final["Z"] == pytest.approx(
            trajectory.states[-1, trajectory.species_index("Z")])

    def test_species_index_unknown_name(self, network):
        trajectory = simulate(network, 1.0, n_samples=5)
        with pytest.raises(SimulationError, match="no species"):
            trajectory.species_index("NOPE")


class TestTStart:
    @pytest.mark.parametrize("method", ["ode", "ssa", "tau"])
    def test_grid_spans_t_start_to_t_final(self, network, method):
        trajectory = simulate(network, 5.0, method=method, seed=1,
                              t_start=2.0, n_samples=13)
        assert trajectory.times[0] == pytest.approx(2.0)
        assert trajectory.t_final == pytest.approx(5.0)

    @pytest.mark.parametrize("method", ["ode", "ssa", "tau"])
    def test_t_final_must_exceed_t_start(self, network, method):
        with pytest.raises(SimulationError):
            simulate(network, 1.0, method=method, t_start=2.0)


class TestRemovedShims:
    """The PR 4 renamed-kwarg shims are gone after two releases.

    The removed spellings must fail loudly -- ``rng=`` / ``max_steps=``
    as plain unexpected-keyword TypeErrors, solver-name methods with a
    targeted migration hint (see docs/serving.md, "Migration notes").
    """

    def test_ssa_rng_kwarg_removed(self, network):
        with pytest.raises(TypeError, match="rng"):
            StochasticSimulator(network, rng=5)

    def test_tau_max_steps_kwarg_removed(self, network):
        simulator = TauLeapingSimulator(network, seed=1)
        with pytest.raises(TypeError, match="max_steps"):
            simulator.simulate(4.0, max_steps=1)

    def test_facade_solver_name_as_method_removed(self, network):
        with pytest.raises(SimulationError,
                           match="SimulationOptions\\(solver='BDF'\\)"):
            simulate(network, 4.0, method="BDF", n_samples=20)

    def test_ode_engine_with_solver_option_is_the_replacement(
            self, network):
        trajectory = simulate(
            network, 4.0, method="ode",
            options=SimulationOptions(solver="BDF", n_samples=20))
        direct = OdeSimulator(network, method="BDF").simulate(
            4.0, n_samples=20)
        np.testing.assert_allclose(trajectory.states, direct.states)


class TestLegacyOdeHelper:
    def test_known_kwargs_still_work(self, network):
        trajectory = ode_simulate(network, 4.0, n_samples=17, rtol=1e-8)
        assert len(trajectory) == 17

    def test_unknown_kwarg_raises_typeerror(self, network):
        # Regression: this helper used to silently ignore misspellings
        # via kwargs.pop defaults.
        with pytest.raises(TypeError, match="unknown option"):
            ode_simulate(network, 4.0, nsamples=17)
