"""Tests for structural CRN analysis (graphs, deficiency, catalysis)."""


from repro.crn.analysis import (catalytic_summary, complex_graph,
                                complexes, deficiency,
                                is_weakly_reversible, linkage_classes,
                                reachable_species,
                                reaction_order_histogram,
                                species_reaction_graph, stranded_species)
from repro.crn.network import Network


def _cycle_network():
    network = Network()
    network.add("A", "B", 1.0)
    network.add("B", "C", 1.0)
    network.add("C", "A", 1.0)
    return network


class TestGraphs:
    def test_species_reaction_graph_structure(self):
        network = _cycle_network()
        graph = species_reaction_graph(network)
        assert graph.number_of_nodes() == 3 + 3
        assert graph.has_edge("S:A", "R:0")
        assert graph.has_edge("R:0", "S:B")
        assert graph.nodes["S:A"]["kind"] == "species"

    def test_complexes_deduplicated(self):
        network = _cycle_network()
        assert len(complexes(network)) == 3

    def test_complex_graph_edges(self):
        graph = complex_graph(_cycle_network())
        assert graph.number_of_edges() == 3


class TestReachability:
    def test_requires_all_reactants(self):
        network = Network()
        network.add({"A": 1, "B": 1}, "C", 1.0)
        assert "C" not in reachable_species(network, ["A"])
        assert "C" in reachable_species(network, ["A", "B"])

    def test_zeroth_order_always_available(self):
        network = Network()
        network.add(None, "X", 1.0)
        network.add("X", "Y", 1.0)
        assert reachable_species(network, []) == {"X", "Y"}

    def test_transitive_closure(self):
        network = _cycle_network()
        assert reachable_species(network, ["A"]) == {"A", "B", "C"}


class TestCrnTheory:
    def test_cycle_is_weakly_reversible(self):
        assert is_weakly_reversible(_cycle_network())

    def test_chain_is_not(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.add("B", "C", 1.0)
        assert not is_weakly_reversible(network)

    def test_cycle_deficiency_zero(self):
        network = _cycle_network()
        assert linkage_classes(network) == 1
        assert deficiency(network) == 0

    def test_two_linkage_classes(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.add("C", "D", 1.0)
        assert linkage_classes(network) == 2


class TestCatalysis:
    def test_pure_catalyst_identified(self):
        network = Network()
        network.add({"E": 1, "S": 1}, {"E": 1, "P": 1}, 1.0)
        summary = catalytic_summary(network)
        assert "E" in summary.catalysts
        assert "S" in summary.sinks_only
        assert "P" in summary.sources_only

    def test_stranded_species(self):
        network = Network()
        network.add("A", "B", 1.0)   # B produced, never consumed
        network.add("A", None, 1.0)
        assert stranded_species(network) == {"B"}

    def test_order_histogram(self):
        network = Network()
        network.add(None, "A", 1.0)
        network.add("A", "B", 1.0)
        network.add({"A": 1, "B": 1}, "C", 1.0)
        network.add({"A": 1, "B": 1, "C": 1}, "D", 1.0)
        assert reaction_order_histogram(network) == \
            {0: 1, 1: 1, 2: 1, 3: 1}


class TestProtocolNetworks:
    def test_machine_network_orders_within_dsd_limits(self, ma2_sfg):
        from repro.core.synthesis import synthesize

        circuit = synthesize(ma2_sfg)
        histogram = reaction_order_histogram(circuit.network)
        assert max(histogram) <= 3

    def test_machine_readouts_are_stranded_on_purpose(self, ma2_sfg):
        from repro.core.synthesis import synthesize

        circuit = synthesize(ma2_sfg)
        stranded = stranded_species(circuit.network)
        assert "y_y_p" in stranded
        # But no *coloured* species may be stranded.
        colored = {s.name for s in circuit.network.species
                   if s.color is not None}
        assert not (stranded & colored)


class TestAvailabilityAwareAnalysis:
    """Regression tests for fireability-aware reachability/strandedness."""

    def test_zeroth_order_source_with_dead_consumer(self):
        # -> X runs forever, but X's only consumer is gated on Y, which
        # has no supply: X is stranded even though stoichiometry says a
        # reaction "consumes" it.
        network = Network()
        network.add(None, "X", 1.0)
        network.add({"X": 1, "Y": 1}, {"Y": 1}, 1.0)
        assert stranded_species(network) == set()  # stoichiometric view
        assert stranded_species(network, sources=[]) == {"X"}

    def test_pure_catalyst_supply_unblocks_consumer(self):
        network = Network()
        network.add(None, "X", 1.0)
        network.add({"X": 1, "Y": 1}, {"Y": 1}, 1.0)
        network.set_initial("Y", 1.0)
        # sources=None seeds from non-zero initials: Y is available, the
        # consumer fires, X is no longer stranded.
        assert stranded_species(network, sources=None) == set()

    def test_reachable_accepts_species_objects(self):
        from repro.crn.species import Species

        network = Network()
        network.add("A", "B", 1.0)
        assert reachable_species(network, [Species("A")]) == {"A", "B"}

    def test_reachable_default_seeds_from_initials(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.set_initial("A", 2.0)
        assert reachable_species(network) == {"A", "B"}

    def test_external_species(self):
        from repro.crn.analysis import external_species

        network = Network()
        network.add(None, "X", 1.0)            # X is produced
        network.add({"E": 1, "S": 1}, {"E": 1, "P": 1}, 1.0)
        # E (pure catalyst) and S (consumed only) are external; X and P
        # are manufactured by the network.
        assert external_species(network) == {"E", "S"}
