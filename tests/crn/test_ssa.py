"""Integration tests for the stochastic simulators."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.simulation.ode import simulate
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.tau_leaping import TauLeapingSimulator
from repro.errors import SimulationError


def _decay(x0=200):
    network = Network()
    network.add("A", "B", 0.5)
    network.set_initial("A", x0)
    return network


class TestSSA:
    def test_counts_conserved(self):
        network = _decay()
        trajectory = StochasticSimulator(network, seed=0).simulate(5.0)
        totals = trajectory["A"] + trajectory["B"]
        assert np.all(totals == 200)

    def test_absorbing_state_halts(self):
        network = _decay(x0=3)
        trajectory = StochasticSimulator(network, seed=1).simulate(100.0)
        assert trajectory.final("A") == 0
        assert trajectory.final("B") == 3

    def test_mean_converges_to_ode(self):
        network = _decay(x0=300)
        ssa = StochasticSimulator(network, seed=2)
        mean = ssa.mean_trajectory(2.0, n_runs=30, n_samples=20)
        ode = simulate(network, 2.0).resampled(mean.times)
        error = np.abs(mean["A"] - ode["A"]) / 300.0
        assert error.max() < 0.05

    def test_final_counts_are_ints(self):
        counts = StochasticSimulator(_decay(5), seed=3).final_counts(50.0)
        assert counts["B"] == 5
        assert isinstance(counts["B"], int)

    def test_reproducible_with_seed(self):
        a = StochasticSimulator(_decay(), seed=42).simulate(1.0)
        b = StochasticSimulator(_decay(), seed=42).simulate(1.0)
        assert np.array_equal(a.states, b.states)

    def test_negative_initial_rejected(self):
        network = _decay()
        simulator = StochasticSimulator(network, seed=0)
        with pytest.raises(SimulationError):
            simulator.simulate(1.0, initial=np.array([-1.0, 0.0]))

    def test_bimolecular_needs_two(self):
        network = Network()
        network.add({"X": 2}, "Y", 10.0)
        network.set_initial("X", 1)
        trajectory = StochasticSimulator(network, seed=0).simulate(10.0)
        assert trajectory.final("X") == 1  # lone molecule cannot pair

    def test_zero_runs_rejected(self):
        with pytest.raises(SimulationError):
            StochasticSimulator(_decay(), seed=0).mean_trajectory(
                1.0, n_runs=0)


class TestTauLeaping:
    def test_tracks_ode_for_large_counts(self):
        network = _decay(x0=5000)
        tau = TauLeapingSimulator(network, seed=0)
        trajectory = tau.simulate(2.0, n_samples=20)
        ode = simulate(network, 2.0).resampled(trajectory.times)
        error = np.abs(trajectory["A"] - ode["A"]) / 5000.0
        assert error.max() < 0.03

    def test_counts_stay_non_negative(self):
        network = Network()
        network.add({"A": 1, "B": 1}, "C", 5.0)
        network.set_initial("A", 50)
        network.set_initial("B", 30)
        trajectory = TauLeapingSimulator(network, seed=1).simulate(5.0)
        assert trajectory.states.min() >= 0
        assert trajectory.final("C") == 30

    def test_invalid_epsilon(self):
        with pytest.raises(SimulationError):
            TauLeapingSimulator(_decay(), epsilon=1.5)
