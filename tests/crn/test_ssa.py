"""Integration tests for the stochastic simulators."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.simulation.ode import simulate
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.tau_leaping import TauLeapingSimulator
from repro.errors import SimulationError


def _decay(x0=200):
    network = Network()
    network.add("A", "B", 0.5)
    network.set_initial("A", x0)
    return network


class TestSSA:
    def test_counts_conserved(self):
        network = _decay()
        trajectory = StochasticSimulator(network, seed=0).simulate(5.0)
        totals = trajectory["A"] + trajectory["B"]
        assert np.all(totals == 200)

    def test_absorbing_state_halts(self):
        network = _decay(x0=3)
        trajectory = StochasticSimulator(network, seed=1).simulate(100.0)
        assert trajectory.final("A") == 0
        assert trajectory.final("B") == 3

    def test_mean_converges_to_ode(self):
        network = _decay(x0=300)
        ssa = StochasticSimulator(network, seed=2)
        mean = ssa.mean_trajectory(2.0, n_runs=30, n_samples=20)
        ode = simulate(network, 2.0).resampled(mean.times)
        error = np.abs(mean["A"] - ode["A"]) / 300.0
        assert error.max() < 0.05

    def test_final_counts_are_ints(self):
        counts = StochasticSimulator(_decay(5), seed=3).final_counts(50.0)
        assert counts["B"] == 5
        assert isinstance(counts["B"], int)

    def test_reproducible_with_seed(self):
        a = StochasticSimulator(_decay(), seed=42).simulate(1.0)
        b = StochasticSimulator(_decay(), seed=42).simulate(1.0)
        assert np.array_equal(a.states, b.states)

    def test_negative_initial_rejected(self):
        network = _decay()
        simulator = StochasticSimulator(network, seed=0)
        with pytest.raises(SimulationError):
            simulator.simulate(1.0, initial=np.array([-1.0, 0.0]))

    def test_bimolecular_needs_two(self):
        network = Network()
        network.add({"X": 2}, "Y", 10.0)
        network.set_initial("X", 1)
        trajectory = StochasticSimulator(network, seed=0).simulate(10.0)
        assert trajectory.final("X") == 1  # lone molecule cannot pair

    def test_zero_runs_rejected(self):
        with pytest.raises(SimulationError):
            StochasticSimulator(_decay(), seed=0).mean_trajectory(
                1.0, n_runs=0)

    def test_max_events_boundary_is_exact(self):
        """A decay chain with x0 molecules fires exactly x0 events, so
        max_events == x0 must succeed and max_events == x0 - 1 must
        raise (guards the classic off-by-one in the budget check)."""
        trajectory = StochasticSimulator(_decay(x0=50), seed=4).simulate(
            1000.0, max_events=50)
        assert trajectory.meta["events"] == 50
        assert trajectory.final("B") == 50
        with pytest.raises(SimulationError):
            StochasticSimulator(_decay(x0=50), seed=4).simulate(
                1000.0, max_events=49)

    def test_mean_converges_to_ode_parallel(self):
        """The ensemble mean through the process pool converges to the
        deterministic limit, same as the serial path."""
        network = _decay(x0=300)
        mean = StochasticSimulator(network, seed=6).mean_trajectory(
            2.0, n_runs=32, n_samples=20, n_workers=2)
        ode = simulate(network, 2.0).resampled(mean.times)
        error = np.abs(mean["A"] - ode["A"]) / 300.0
        assert error.max() < 0.05


class TestTauLeaping:
    def test_tracks_ode_for_large_counts(self):
        network = _decay(x0=5000)
        tau = TauLeapingSimulator(network, seed=0)
        trajectory = tau.simulate(2.0, n_samples=20)
        ode = simulate(network, 2.0).resampled(trajectory.times)
        error = np.abs(trajectory["A"] - ode["A"]) / 5000.0
        assert error.max() < 0.03

    def test_counts_stay_non_negative(self):
        network = Network()
        network.add({"A": 1, "B": 1}, "C", 5.0)
        network.set_initial("A", 50)
        network.set_initial("B", 30)
        trajectory = TauLeapingSimulator(network, seed=1).simulate(5.0)
        assert trajectory.states.min() >= 0
        assert trajectory.final("C") == 30

    def test_invalid_epsilon(self):
        with pytest.raises(SimulationError):
            TauLeapingSimulator(_decay(), epsilon=1.5)

    def test_fallback_fills_grid_inside_burst(self):
        """Small-count runs fall back to exact SSA for every step; the
        sample points crossed inside one fallback burst must record the
        state that held at each sample time, not be back-filled with the
        end-of-burst counts (the decay would then appear instantaneous).
        """
        trajectory = TauLeapingSimulator(_decay(x0=40), seed=3).simulate(
            10.0, n_samples=51)
        a = trajectory["A"]
        assert a[0] == 40
        # Early samples still hold most of the population (the old
        # back-fill jumped straight to the burst's final state) ...
        assert a[1] > 20
        # ... and the column resolves the decay through intermediate
        # values, monotonically.
        assert len(np.unique(a)) > 10
        assert np.all(np.diff(a) <= 0)


class TestIncrementalPropensityHardening:
    """PR 8 hardening: clamped updates + periodic exact rebuilds."""

    def _two_channel_state(self):
        network = Network()
        network.add({"A": 2}, "B", 1.0)
        network.add("C", "D", 2.0)
        network.set_initial("A", 10)
        network.set_initial("C", 10)
        simulator = StochasticSimulator(network, seed=0)
        state = simulator.propensity_state
        state.reset(simulator._initial_counts(None))
        return network, simulator, state

    def test_update_clamped_at_zero(self):
        """A corrupted gather buffer yielding a negative product must
        be clamped: a negative propensity would poison the
        cumulative-sum selection draw."""
        network, simulator, state = self._two_channel_state()
        a_idx = network.species_names.index("A")
        n_s = len(network.species_names)
        # Pre-set the two gather slots of A so that after fire(0)'s
        # in-place update (raw -= 2, half-pair -= 1) the product of the
        # dependent recompute is negative.
        state._cb[a_idx] = 1.0              # raw slot -> -1.0 after fire
        state._cb[a_idx + n_s + 1] = 2.0    # half slot -> 1.0 after fire
        state.fire(0)
        assert state.a[0] == 0.0

    def test_clamp_normalises_negative_zero(self):
        """fresh = c * (-1.0) * 0.0 is -0.0; the clamp must store +0.0
        so downstream sign tests and Poisson draws see a clean zero."""
        network, simulator, state = self._two_channel_state()
        a_idx = network.species_names.index("A")
        n_s = len(network.species_names)
        state._cb[a_idx] = 1.0              # raw slot -> -1.0 after fire
        state._cb[a_idx + n_s + 1] = 1.0    # half slot -> 0.0 after fire
        state.fire(0)
        assert state.a[0] == 0.0
        assert not np.signbit(state.a[0])

    def test_drift_heals_at_rebuild_interval(self):
        """Injected drift in the propensity vector survives incremental
        updates of *other* channels but is healed exactly by the
        periodic full rebuild."""
        network, simulator, state = self._two_channel_state()
        state.rebuild_interval = 3
        exact = state.kinetics.propensities(state.counts.copy(),
                                            state.constants)
        # Corrupt the A-channel entry; firing C -> D (reaction 1) only
        # re-evaluates channels that depend on C/D, so the drift sticks.
        state.a[0] = 123.456
        state.fire(1)
        assert state.a[0] == 123.456
        state.fire(1)
        assert state.a[0] == 123.456
        # Third fire reaches the interval: full in-place exact rebuild.
        state.fire(1)
        fresh = state.kinetics.propensities(state.counts.copy(),
                                            state.constants)
        assert state.a[0] == exact[0]
        assert np.array_equal(state.a, fresh)

    def test_rebuild_is_in_place(self):
        """Simulators alias ``state.a`` across the event loop, so the
        rebuild must mutate, never rebind."""
        _, _, state = self._two_channel_state()
        alias = state.a
        state.fire(0)
        state.rebuild()
        assert state.a is alias

    def test_rebuild_interval_is_bitwise_neutral(self):
        """The rebuild recomputes the same bits the incremental updates
        maintain, so any interval yields the identical realisation."""
        network = Network()
        network.add({"A": 2}, "B", 1.0)
        network.add("B", {"A": 2}, 0.5)
        network.set_initial("A", 60)
        baseline = StochasticSimulator(network, seed=11).simulate(4.0)
        frequent = StochasticSimulator(network, seed=11)
        frequent.propensity_state.rebuild_interval = 3
        rebuilt = frequent.simulate(4.0)
        assert np.array_equal(baseline.states, rebuilt.states)
        assert baseline.meta == rebuilt.meta

    def test_rebuild_interval_validated(self):
        _, simulator, _ = self._two_channel_state()
        from repro.crn.simulation.ssa import IncrementalPropensities
        with pytest.raises(SimulationError, match="rebuild_interval"):
            IncrementalPropensities(simulator.kinetics,
                                    simulator.constants,
                                    rebuild_interval=0)
