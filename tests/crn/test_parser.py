"""Unit tests for the CRN text parser."""

import pytest

from repro.crn.parser import parse_network
from repro.crn.species import Species
from repro.errors import ParseError


class TestReactionSyntax:
    def test_simple(self):
        network = parse_network("A + B -> C @ fast")
        reaction = network.reactions[0]
        assert reaction.reactants == {Species("A"): 1, Species("B"): 1}
        assert reaction.rate == "fast"

    def test_coefficients_both_styles(self):
        network = parse_network("2 A + 3*B -> 4 C")
        reaction = network.reactions[0]
        assert reaction.reactants[Species("A")] == 2
        assert reaction.reactants[Species("B")] == 3
        assert reaction.products[Species("C")] == 4

    def test_default_rate_is_slow(self):
        assert parse_network("A -> B").reactions[0].rate == "slow"

    def test_numeric_rate(self):
        assert parse_network("A -> B @ 2.5").reactions[0].rate == 2.5

    def test_zeroth_order_source(self):
        reaction = parse_network("-> r @ slow").reactions[0]
        assert reaction.reactants == {}
        assert reaction.products == {Species("r"): 1}

    def test_degradation(self):
        reaction = parse_network("X -> @ 0.1").reactions[0]
        assert reaction.products == {}

    def test_explicit_zero_side(self):
        reaction = parse_network("0 -> X").reactions[0]
        assert reaction.reactants == {}

    def test_reversible(self):
        network = parse_network("A <-> B @ slow / fast")
        assert network.n_reactions == 2
        assert network.reactions[0].rate == "slow"
        assert network.reactions[1].rate == "fast"
        assert network.reactions[1].reactants == {Species("B"): 1}

    def test_duplicate_species_accumulate(self):
        reaction = parse_network("A + A -> B").reactions[0]
        assert reaction.reactants[Species("A")] == 2

    def test_comments_and_blank_lines(self):
        network = parse_network(
            "# header\n\nA -> B @ fast  # inline comment\n")
        assert network.n_reactions == 1


class TestDirectives:
    def test_network_name(self):
        assert parse_network("network: demo\nA -> B").name == "demo"

    def test_species_declaration(self):
        network = parse_network(
            "species R_1 color=red role=clock\nR_1 -> G_1")
        species = network.get_species("R_1")
        assert species.color == "red"
        assert species.role == "clock"

    def test_init(self):
        network = parse_network("init X = 5.5\nX -> Y")
        assert network.get_initial("X") == 5.5


class TestErrors:
    @pytest.mark.parametrize("text", [
        "A -> B @ -1",
        "A -> B @ slow / fast",       # / only valid for reversible
        "A <-> B @ slow",             # reversible needs two rates
        "A  B -> C",                  # missing +/arrow
        "-> ",                        # both sides empty
        "init X = abc",
        "init X = -3",
        "species 1bad",
        "species X color=teal",
        "A + -> B",
    ])
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_network(text)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_network("A -> B\nC -> @ 1.2.3\n")
        assert "line 2" in str(info.value)

    def test_custom_rate_category_accepted(self):
        # Category names beyond fast/slow are legal; they resolve (or
        # fail) at simulation time via the RateScheme.
        reaction = parse_network("A -> B @ medium").reactions[0]
        assert reaction.rate == "medium"


class TestLoadFile:
    def test_load(self, tmp_path):
        path = tmp_path / "net.crn"
        path.write_text("A -> B @ fast\ninit A = 2\n")
        from repro.crn.parser import load_network

        network = load_network(path)
        assert network.n_reactions == 1
        assert network.get_initial("A") == 2.0


class TestErrorPaths:
    """The parser must fail with ParseError (a ReproError) and point at
    the offending line for every class of user mistake."""

    def test_conflicting_duplicate_species(self):
        text = ("species X color=red role=signal\n"
                "species X color=blue role=signal\n")
        with pytest.raises(ParseError) as info:
            parse_network(text)
        assert info.value.line_no == 2
        assert "conflicting declarations" in str(info.value)
        assert "red" in str(info.value) and "blue" in str(info.value)

    def test_duplicate_species_is_a_reproerror(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            parse_network("species X color=red\nspecies X color=green\n")

    def test_identical_redeclaration_is_fine(self):
        network = parse_network("species X color=red\n"
                                "species X color=red\n")
        assert network.get_species("X").color == "red"

    def test_malformed_rate(self):
        with pytest.raises(ParseError) as info:
            parse_network("A -> B @ 1.2.3\n")
        assert info.value.line_no == 1
        assert "cannot parse rate '1.2.3'" in str(info.value)

    def test_unknown_color_tag(self):
        with pytest.raises(ParseError) as info:
            parse_network("A -> B\nspecies Q color=teal\n")
        assert info.value.line_no == 2
        assert "unknown colour 'teal'" in str(info.value)
        assert "species Q color=teal" in str(info.value)

    def test_provenance_recorded(self):
        network = parse_network("species X color=red\n"
                                "A <-> B @ fast / slow\n")
        assert network.provenance[("species", "X")] == 1
        assert network.provenance[("reaction", 0)] == 2
        assert network.provenance[("reaction", 1)] == 2
