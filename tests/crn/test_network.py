"""Unit tests for the network container."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.parser import parse_network
from repro.crn.rates import RateScheme
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import NetworkError


class TestSpeciesRegistry:
    def test_add_and_order(self):
        network = Network()
        network.add_species("B")
        network.add_species("A")
        assert network.species_names == ["B", "A"]
        assert network.n_species == 2

    def test_idempotent_add(self):
        network = Network()
        network.add_species(Species("X", color="red"))
        network.add_species(Species("X", color="red"))
        assert network.n_species == 1

    def test_bare_redeclaration_is_ignored(self):
        network = Network()
        network.add_species(Species("X", color="red"))
        network.add_species("X")  # auto-registration form
        assert network.get_species("X").color == "red"

    def test_bare_then_explicit_upgrades(self):
        network = Network()
        network.add_species("X")
        network.add_species(Species("X", color="green"))
        assert network.get_species("X").color == "green"

    def test_conflicting_metadata_rejected(self):
        network = Network()
        network.add_species(Species("X", color="red"))
        with pytest.raises(NetworkError):
            network.add_species(Species("X", color="blue"))

    def test_contains_and_index(self):
        network = Network()
        network.add_species("X")
        assert "X" in network
        assert "Y" not in network
        assert network.species_index("X") == 0
        with pytest.raises(NetworkError):
            network.species_index("Y")

    def test_species_with_color_and_role(self):
        network = Network()
        network.add_species(Species("R", color="red"))
        network.add_species(Species("C", color="red", role="clock"))
        network.add_species(Species("x"))
        assert {s.name for s in network.species_with_color("red")} == \
            {"R", "C"}
        assert [s.name for s in network.species_with_role("clock")] == ["C"]


class TestReactions:
    def test_add_auto_registers_species(self):
        network = Network()
        network.add({"A": 1}, {"B": 2}, "fast")
        assert set(network.species_names) == {"A", "B"}
        assert network.n_reactions == 1

    def test_extend(self):
        network = Network()
        network.extend([Reaction("A", "B"), Reaction("B", "C")])
        assert network.n_reactions == 2


class TestInitialConditions:
    def test_set_get(self):
        network = Network()
        network.set_initial("X", 5.0)
        assert network.get_initial("X") == 5.0
        assert network.get_initial("Y") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            Network().set_initial("X", -1.0)

    def test_initial_vector_with_overrides(self):
        network = Network()
        network.add("A", "B")
        network.set_initial("A", 3.0)
        x0 = network.initial_vector({"B": 7.0})
        assert x0[network.species_index("A")] == 3.0
        assert x0[network.species_index("B")] == 7.0


class TestMerge:
    def test_merge_unions_and_sums(self):
        a = Network("a")
        a.add("X", "Y")
        a.set_initial("X", 2.0)
        b = Network("b")
        b.add("Y", "Z")
        b.set_initial("X", 3.0)
        a.merge(b)
        assert set(a.species_names) == {"X", "Y", "Z"}
        assert a.n_reactions == 2
        assert a.get_initial("X") == 5.0

    def test_merge_skips_duplicate_reactions(self):
        a = Network()
        a.add("X", "Y", "fast")
        b = Network()
        b.add("X", "Y", "fast")
        a.merge(b)
        assert a.n_reactions == 1

    def test_copy_independent(self):
        a = Network("a")
        a.add("X", "Y")
        clone = a.copy()
        clone.add("Y", "Z")
        assert a.n_reactions == 1
        assert clone.n_reactions == 2


class TestMatrices:
    def _network(self):
        network = Network()
        network.add({"A": 2, "B": 1}, {"C": 1}, 1.0)
        network.add(None, {"A": 1}, 2.0)
        return network

    def test_reactant_matrix(self):
        network = self._network()
        E = network.reactant_matrix()
        ia, ib = network.species_index("A"), network.species_index("B")
        assert E[0, ia] == 2 and E[0, ib] == 1
        assert np.all(E[1] == 0)

    def test_stoichiometry_matrix(self):
        network = self._network()
        S = network.stoichiometry_matrix()
        ia = network.species_index("A")
        ic = network.species_index("C")
        assert S[ia, 0] == -2 and S[ic, 0] == 1
        assert S[ia, 1] == 1

    def test_rate_vector(self):
        network = Network()
        network.add("A", "B", "fast")
        network.add("B", "A", 2.5)
        rates = network.rate_vector(RateScheme())
        assert rates[0] == 1000.0 and rates[1] == 2.5


class TestConservation:
    def test_closed_cycle_conserves_total(self):
        network = Network()
        network.add("A", "B")
        network.add("B", "C")
        network.add("C", "A")
        laws = network.conservation_laws()
        assert laws.shape[0] == 1
        # The conserved functional is proportional to A + B + C.
        law = laws[0]
        assert np.allclose(law, law[0])

    def test_open_system_has_no_laws(self):
        network = Network()
        network.add(None, "A")
        network.add("A", None)
        assert network.conservation_laws().shape[0] == 0


class TestValidationAndText:
    def test_empty_network_invalid(self):
        with pytest.raises(NetworkError):
            Network().validate()

    def test_to_text_roundtrip(self):
        network = Network("demo")
        network.add_species(Species("R_1", color="red", role="clock"))
        network.add({"R_1": 1, "b": 1}, {"G_1": 1}, "slow")
        network.add(None, "b", 0.25)
        network.set_initial("R_1", 10.0)
        parsed = parse_network(network.to_text())
        assert parsed.name == "demo"
        assert set(parsed.species_names) == set(network.species_names)
        assert parsed.n_reactions == network.n_reactions
        assert parsed.get_initial("R_1") == 10.0
        assert parsed.get_species("R_1").color == "red"

    def test_summary(self):
        network = Network("n")
        network.add("A", "B")
        assert "1 reactions" in network.summary()
        assert "2 species" in network.summary()
