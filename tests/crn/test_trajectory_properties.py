"""Property-based tests for Trajectory composition ops (PR 5).

The conformance harness checks these invariants across engines on
generated networks; here the same algebra is pinned down directly on
randomised trajectories, where hypothesis can shrink a violation to a
minimal counterexample:

- ``concat`` is associative: ``(a + b) + c == a + (b + c)`` bitwise;
- ``window`` composes: windowing a window equals windowing the original
  over the intersection of the two spans;
- ``resampled`` is idempotent on its own grid, and resampling onto the
  trajectory's own time axis is the identity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crn.simulation.result import Trajectory

# Seeded-random trajectory parameters: hypothesis drives the seed and
# shape, numpy fills in well-behaved float data (no NaN/inf corner
# cases -- simulators never emit those; shape and split points are the
# interesting search space here).
trajectories = st.tuples(st.integers(0, 2**32 - 1), st.integers(4, 12),
                         st.integers(1, 3))


def _trajectory(seed: int, n_samples: int, n_species: int) -> Trajectory:
    rng = np.random.default_rng(seed)
    steps = rng.uniform(0.05, 1.0, n_samples)
    times = np.concatenate([[0.0], np.cumsum(steps)])[:n_samples]
    states = rng.uniform(0.0, 10.0, (n_samples, n_species))
    names = [f"S{i}" for i in range(n_species)]
    return Trajectory(times, states, names)


def _split(trajectory: Trajectory, i: int, j: int):
    """Three overlapping-boundary pieces, as the cycle driver emits."""
    t, s, names = trajectory.times, trajectory.states, trajectory.names
    return (Trajectory(t[:i + 1], s[:i + 1], names),
            Trajectory(t[i:j + 1], s[i:j + 1], names),
            Trajectory(t[j:], s[j:], names))


@settings(deadline=None, max_examples=60)
@given(trajectories, st.data())
def test_concat_associative(params, data):
    trajectory = _trajectory(*params)
    n = len(trajectory)
    i = data.draw(st.integers(1, n - 2), label="first split")
    j = data.draw(st.integers(i + 1, n - 1), label="second split")
    a, b, c = _split(trajectory, i, j)
    left = a.concat(b).concat(c)
    right = a.concat(b.concat(c))
    assert np.array_equal(left.times, right.times)
    assert np.array_equal(left.states, right.states)
    # Reassembly also reproduces the original exactly.
    assert np.array_equal(left.times, trajectory.times)
    assert np.array_equal(left.states, trajectory.states)


@settings(deadline=None, max_examples=60)
@given(trajectories, st.data())
def test_window_composes(params, data):
    trajectory = _trajectory(*params)
    t0, t1 = float(trajectory.times[0]), float(trajectory.times[-1])
    span = t1 - t0
    # Outer window [a, b], inner window [c, d] with [c, d] inside [a, b].
    fracs = sorted(data.draw(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=4,
                 max_size=4), label="window fractions"))
    a, c, d, b = (t0 + f * span for f in fracs)
    once = trajectory.window(c, d)
    twice = trajectory.window(a, b).window(c, d)
    assert np.allclose(twice.times, once.times, rtol=0.0, atol=1e-12)
    # Boundary rows are re-interpolated on a refined knot set, which is
    # exact for a piecewise-linear signal up to float rounding.
    assert np.allclose(twice.states, once.states, rtol=1e-9, atol=1e-9)


@settings(deadline=None, max_examples=60)
@given(trajectories)
def test_resampled_idempotent(params):
    trajectory = _trajectory(*params)
    grid = np.linspace(trajectory.times[0], trajectory.t_final, 9)
    once = trajectory.resampled(grid)
    twice = once.resampled(grid)
    assert np.array_equal(once.times, twice.times)
    assert np.array_equal(once.states, twice.states)


@settings(deadline=None, max_examples=60)
@given(trajectories)
def test_resampled_on_own_grid_is_identity(params):
    trajectory = _trajectory(*params)
    again = trajectory.resampled(trajectory.times)
    assert np.array_equal(again.times, trajectory.times)
    assert np.array_equal(again.states, trajectory.states)
