"""Unit tests for the trajectory container."""

import numpy as np
import pytest

from repro.crn.simulation.result import Trajectory
from repro.errors import SimulationError


def _trajectory():
    times = np.linspace(0.0, 4.0, 5)
    states = np.column_stack([times ** 2, 10 - times])
    return Trajectory(times, states, ["A", "B"])


class TestAccess:
    def test_column_and_getitem(self):
        trajectory = _trajectory()
        assert np.allclose(trajectory.column("A"), trajectory["A"])
        assert trajectory["B"][0] == 10.0

    def test_unknown_species(self):
        with pytest.raises(SimulationError):
            _trajectory().column("Z")

    def test_final(self):
        trajectory = _trajectory()
        assert trajectory.final("A") == 16.0
        assert np.allclose(trajectory.final(), [16.0, 6.0])

    def test_final_state_dict(self):
        assert _trajectory().final_state() == {"A": 16.0, "B": 6.0}

    def test_interpolated_at(self):
        assert _trajectory().at(0.5, "B") == pytest.approx(9.5)

    def test_total(self):
        trajectory = _trajectory()
        assert np.allclose(trajectory.total(["A", "B"]),
                           trajectory["A"] + trajectory["B"])

    def test_len_and_contains(self):
        trajectory = _trajectory()
        assert len(trajectory) == 5
        assert "A" in trajectory and "Z" not in trajectory

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Trajectory(np.zeros(3), np.zeros((2, 2)), ["A", "B"])


class TestComposition:
    def test_concat_drops_duplicate_boundary(self):
        a = _trajectory()
        b = Trajectory(np.array([4.0, 5.0]), np.array([[16.0, 6.0],
                                                       [25.0, 5.0]]),
                       ["A", "B"])
        joined = a.concat(b)
        assert len(joined) == 6
        assert joined.t_final == 5.0
        assert np.all(np.diff(joined.times) > 0)

    def test_concat_drops_ulp_duplicate_at_large_t(self):
        """At t >> 1 the continuation's first sample can differ from the
        boundary by a few ulps; the duplicate test must be relative to
        the boundary time, or the stitched time axis stops being
        strictly increasing."""
        boundary = 32.0
        a = Trajectory(np.array([31.0, boundary]),
                       np.array([[1.0], [2.0]]), ["A"])
        # One ulp above the boundary (3.55e-15 at this magnitude): a
        # fixed absolute epsilon misses it and keeps the degenerate
        # near-duplicate sample.
        wobble = np.nextafter(boundary, 100.0)
        b = Trajectory(np.array([wobble, 33.0]),
                       np.array([[2.0], [3.0]]), ["A"])
        joined = a.concat(b)
        assert len(joined) == 3
        assert np.all(np.diff(joined.times) > 0)

    def test_concat_requires_same_species(self):
        a = _trajectory()
        b = Trajectory(np.array([5.0]), np.array([[1.0]]), ["A"])
        with pytest.raises(SimulationError):
            a.concat(b)

    def test_window(self):
        window = _trajectory().window(1.0, 3.0)
        assert window.times[0] == 1.0 and window.times[-1] == 3.0

    def test_resampled(self):
        dense = _trajectory().resampled(np.linspace(0, 4, 17))
        assert len(dense) == 17
        assert dense.at(2.0, "B") == pytest.approx(8.0)


class TestExport:
    def test_to_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        _trajectory().to_csv(path, species=["B"])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,B"
        assert len(lines) == 6
