"""Unit tests for the trajectory container."""

import numpy as np
import pytest

from repro.crn.simulation.result import Trajectory
from repro.errors import SimulationError


def _trajectory():
    times = np.linspace(0.0, 4.0, 5)
    states = np.column_stack([times ** 2, 10 - times])
    return Trajectory(times, states, ["A", "B"])


class TestAccess:
    def test_column_and_getitem(self):
        trajectory = _trajectory()
        assert np.allclose(trajectory.column("A"), trajectory["A"])
        assert trajectory["B"][0] == 10.0

    def test_unknown_species(self):
        with pytest.raises(SimulationError):
            _trajectory().column("Z")

    def test_final(self):
        trajectory = _trajectory()
        assert trajectory.final("A") == 16.0
        assert np.allclose(trajectory.final(), [16.0, 6.0])

    def test_final_state_dict(self):
        assert _trajectory().final_state() == {"A": 16.0, "B": 6.0}

    def test_interpolated_at(self):
        assert _trajectory().at(0.5, "B") == pytest.approx(9.5)

    def test_total(self):
        trajectory = _trajectory()
        assert np.allclose(trajectory.total(["A", "B"]),
                           trajectory["A"] + trajectory["B"])

    def test_len_and_contains(self):
        trajectory = _trajectory()
        assert len(trajectory) == 5
        assert "A" in trajectory and "Z" not in trajectory

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Trajectory(np.zeros(3), np.zeros((2, 2)), ["A", "B"])


class TestComposition:
    def test_concat_drops_duplicate_boundary(self):
        a = _trajectory()
        b = Trajectory(np.array([4.0, 5.0]), np.array([[16.0, 6.0],
                                                       [25.0, 5.0]]),
                       ["A", "B"])
        joined = a.concat(b)
        assert len(joined) == 6
        assert joined.t_final == 5.0
        assert np.all(np.diff(joined.times) > 0)

    def test_concat_drops_ulp_duplicate_at_large_t(self):
        """At t >> 1 the continuation's first sample can differ from the
        boundary by a few ulps; the duplicate test must be relative to
        the boundary time, or the stitched time axis stops being
        strictly increasing."""
        boundary = 32.0
        a = Trajectory(np.array([31.0, boundary]),
                       np.array([[1.0], [2.0]]), ["A"])
        # One ulp above the boundary (3.55e-15 at this magnitude): a
        # fixed absolute epsilon misses it and keeps the degenerate
        # near-duplicate sample.
        wobble = np.nextafter(boundary, 100.0)
        b = Trajectory(np.array([wobble, 33.0]),
                       np.array([[2.0], [3.0]]), ["A"])
        joined = a.concat(b)
        assert len(joined) == 3
        assert np.all(np.diff(joined.times) > 0)

    def test_concat_requires_same_species(self):
        a = _trajectory()
        b = Trajectory(np.array([5.0]), np.array([[1.0]]), ["A"])
        with pytest.raises(SimulationError):
            a.concat(b)

    def test_window(self):
        window = _trajectory().window(1.0, 3.0)
        assert window.times[0] == 1.0 and window.times[-1] == 3.0

    def test_resampled(self):
        dense = _trajectory().resampled(np.linspace(0, 4, 17))
        assert len(dense) == 17
        assert dense.at(2.0, "B") == pytest.approx(8.0)


class TestHorizon:
    """Reads outside the simulated span must fail loudly (PR 5 fix).

    ``np.interp`` silently clamps to the endpoint values, which used to
    turn readout schedules that outran the horizon into plausible-but-
    wrong numbers."""

    def test_at_past_horizon_raises(self):
        with pytest.raises(SimulationError, match="horizon"):
            _trajectory().at(4.5, "A")

    def test_at_before_horizon_raises(self):
        with pytest.raises(SimulationError, match="horizon"):
            _trajectory().at(-0.5, "A")

    def test_at_clamp_optin_extends_endpoint(self):
        assert _trajectory().at(99.0, "A", clamp=True) == 16.0
        assert _trajectory().at(-1.0, "B", clamp=True) == 10.0

    def test_at_tolerates_boundary_float_fuzz(self):
        t = np.nextafter(4.0, 5.0)  # one ulp past t_final
        assert _trajectory().at(t, "A") == pytest.approx(16.0)

    def test_resampled_past_horizon_raises(self):
        with pytest.raises(SimulationError, match="horizon"):
            _trajectory().resampled(np.linspace(0.0, 5.0, 11))

    def test_resampled_clamp_optin(self):
        dense = _trajectory().resampled(np.array([3.0, 5.0]), clamp=True)
        assert dense.final("A") == 16.0

    def test_empty_trajectory_readouts_raise(self):
        empty = Trajectory(np.empty(0), np.empty((0, 1)), ["A"])
        with pytest.raises(SimulationError):
            empty.final()
        with pytest.raises(SimulationError):
            empty.final_state()
        with pytest.raises(SimulationError):
            _ = empty.t_final
        with pytest.raises(SimulationError):
            empty.at(0.0, "A")


class TestWindowBoundaries:
    """window() interpolates its boundaries and is never empty (PR 5 fix).

    A window falling strictly between two samples used to return an
    empty trajectory whose ``t_final`` crashed with a raw IndexError."""

    def test_window_between_samples_is_nonempty(self):
        window = _trajectory().window(1.25, 1.75)
        assert len(window) == 2
        assert window.times[0] == 1.25 and window.t_final == 1.75
        # Boundary values are linear interpolants of the bracketing rows.
        assert window.final("B") == pytest.approx(10.0 - 1.75)

    def test_window_interpolates_partial_overlap(self):
        window = _trajectory().window(2.5, 99.0)
        assert window.times[0] == 2.5
        assert window.t_final == 4.0

    def test_window_degenerate_point(self):
        point = _trajectory().window(1.5, 1.5)
        assert len(point) == 1
        assert point.final("B") == pytest.approx(8.5)

    def test_window_reversed_bounds_raise(self):
        with pytest.raises(SimulationError, match="reversed"):
            _trajectory().window(3.0, 1.0)

    def test_window_disjoint_raises(self):
        with pytest.raises(SimulationError, match="overlap"):
            _trajectory().window(5.0, 6.0)

    def test_window_of_empty_raises(self):
        empty = Trajectory(np.empty(0), np.empty((0, 1)), ["A"])
        with pytest.raises(SimulationError):
            empty.window(0.0, 1.0)

    def test_window_exact_samples_bitwise(self):
        window = _trajectory().window(1.0, 3.0)
        original = _trajectory()
        assert np.array_equal(window.times, original.times[1:4])
        assert np.array_equal(window.states, original.states[1:4])


class TestExport:
    def test_to_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        _trajectory().to_csv(path, species=["B"])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,B"
        assert len(lines) == 6
