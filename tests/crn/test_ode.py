"""Integration tests for the deterministic simulators."""

import numpy as np
import pytest

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.events import species_above, species_below
from repro.crn.simulation.ode import METHODS, OdeSimulator, simulate
from repro.errors import SimulationError


def _decay_network(k=0.7, x0=10.0):
    network = Network("decay")
    network.add("A", "B", k)
    network.set_initial("A", x0)
    return network


class TestAnalyticSolutions:
    def test_first_order_decay(self):
        network = _decay_network(k=0.7, x0=10.0)
        trajectory = simulate(network, 5.0)
        expected = 10.0 * np.exp(-0.7 * trajectory.times)
        assert np.allclose(trajectory["A"], expected, atol=1e-5)
        assert np.allclose(trajectory["A"] + trajectory["B"], 10.0,
                           atol=1e-6)

    def test_bimolecular_annihilation(self):
        # A + A -> 0 with rate k: dA/dt = -2k A^2,
        # A(t) = A0 / (1 + 2 k A0 t).
        network = Network()
        network.add({"A": 2}, None, 0.25)
        network.set_initial("A", 8.0)
        trajectory = simulate(network, 4.0)
        expected = 8.0 / (1 + 2 * 0.25 * 8.0 * trajectory.times)
        assert np.allclose(trajectory["A"], expected, rtol=1e-4)

    def test_equilibrium_of_reversible_pair(self):
        network = Network()
        network.add("A", "B", 2.0)
        network.add("B", "A", 1.0)
        network.set_initial("A", 9.0)
        final = simulate(network, 50.0).final_state()
        assert final["B"] / final["A"] == pytest.approx(2.0, rel=1e-4)

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_agree(self, method):
        network = _decay_network()
        simulator = OdeSimulator(network, method=method)
        trajectory = simulator.simulate(3.0)
        assert trajectory.final("A") == pytest.approx(
            10.0 * np.exp(-0.7 * 3.0), rel=1e-3)


class TestSimulatorApi:
    def test_initial_override_mapping(self):
        network = _decay_network()
        simulator = OdeSimulator(network)
        trajectory = simulator.simulate(1.0, initial={"A": 20.0})
        assert trajectory["A"][0] == pytest.approx(20.0)

    def test_initial_override_vector(self):
        network = _decay_network()
        simulator = OdeSimulator(network)
        x0 = np.array([5.0, 1.0])
        trajectory = simulator.simulate(1.0, initial=x0)
        assert trajectory["B"][0] == pytest.approx(1.0)

    def test_bad_initial_vector_shape(self):
        simulator = OdeSimulator(_decay_network())
        with pytest.raises(SimulationError):
            simulator.simulate(1.0, initial=np.ones(5))

    def test_bad_time_span(self):
        simulator = OdeSimulator(_decay_network())
        with pytest.raises(SimulationError):
            simulator.simulate(0.0)

    def test_unknown_method(self):
        with pytest.raises(SimulationError):
            OdeSimulator(_decay_network(), method="Euler")

    def test_symbolic_rates_resolved_by_scheme(self):
        network = Network()
        network.add("A", "B", "slow")
        network.set_initial("A", 1.0)
        fast_scheme = RateScheme({"fast": 1000.0, "slow": 10.0})
        t1 = simulate(network, 0.1)
        t2 = simulate(network, 0.1, scheme=fast_scheme)
        assert t2.final("B") > t1.final("B")

    def test_steady_state(self):
        network = Network()
        network.add("A", "B", 1.0)
        network.set_initial("A", 4.0)
        state = OdeSimulator(network).steady_state(t_final=100.0)
        assert state["B"] == pytest.approx(4.0, abs=1e-5)

    def test_steady_state_unsettled_raises(self):
        network = Network()
        network.add(None, "A", 1.0)  # grows forever
        with pytest.raises(SimulationError):
            OdeSimulator(network).steady_state(t_final=10.0)


class TestEvents:
    def test_terminal_event_stops_and_records(self):
        network = _decay_network(k=1.0, x0=10.0)
        simulator = OdeSimulator(network)
        event = species_below(network, "A", 5.0)
        trajectory = simulator.simulate(20.0, events=[event])
        assert trajectory.meta["event"] == 0
        assert trajectory.t_final == pytest.approx(np.log(2.0), rel=1e-3)
        assert trajectory.final("A") == pytest.approx(5.0, rel=1e-3)

    def test_rising_event(self):
        network = _decay_network(k=1.0, x0=10.0)
        simulator = OdeSimulator(network)
        event = species_above(network, "B", 9.0)
        trajectory = simulator.simulate(20.0, events=[event])
        assert trajectory.final("B") == pytest.approx(9.0, rel=1e-3)

    def test_no_event_runs_to_completion(self):
        network = _decay_network()
        simulator = OdeSimulator(network)
        event = species_below(network, "A", -1.0)  # never fires
        trajectory = simulator.simulate(2.0, events=[event])
        assert "event" not in trajectory.meta
        assert trajectory.t_final == pytest.approx(2.0)

    def test_event_time_not_duplicated(self):
        """The trajectory appends the event state only when the last
        sampled time is not already the event time (to relative float
        spacing); the time axis must stay strictly increasing."""
        network = _decay_network(k=1.0, x0=10.0)
        simulator = OdeSimulator(network)
        event = species_below(network, "A", 5.0)
        for n_samples in (7, 100, 4001):
            trajectory = simulator.simulate(20.0, n_samples=n_samples,
                                            events=[event])
            assert np.all(np.diff(trajectory.times) > 0)
            assert trajectory.t_final == trajectory.meta["event_time"]

    def test_fast_path_matches_solve_ivp_event_location(self):
        """The chunked LSODA event search agrees with solve_ivp's
        root-finding (BDF here) well inside the solver tolerances."""
        network = _decay_network(k=1.0, x0=10.0)
        event_time_fast = OdeSimulator(network).simulate(
            20.0, events=[species_below(network, "A", 5.0)]
        ).meta["event_time"]
        event_time_bdf = OdeSimulator(network, method="BDF").simulate(
            20.0, events=[species_below(network, "A", 5.0)]
        ).meta["event_time"]
        assert event_time_fast == pytest.approx(np.log(2.0), rel=1e-5)
        assert event_time_fast == pytest.approx(event_time_bdf, rel=1e-4)

    def test_event_hint_does_not_change_result(self):
        network = _decay_network(k=1.0, x0=10.0)
        simulator = OdeSimulator(network)
        event = species_below(network, "A", 5.0)
        plain = simulator.simulate(20.0, events=[event])
        hinted = simulator.simulate(20.0, events=[event],
                                    event_hint=0.7)
        assert hinted.meta["event_time"] == pytest.approx(
            plain.meta["event_time"], rel=1e-6)


class TestJacobianModes:
    def test_modes_agree(self):
        from repro.core.memory import build_delay_chain

        network, _, _ = build_delay_chain(n=2, initial=20.0)
        reference = None
        for method, jacobian in (("LSODA", "dense"), ("LSODA", "none"),
                                 ("BDF", "dense"), ("BDF", "sparse"),
                                 ("BDF", "sparsity"), ("Radau", "sparse")):
            final = OdeSimulator(network, method=method,
                                 jacobian=jacobian).simulate(20.0).final("Y")
            if reference is None:
                reference = final
            assert final == pytest.approx(reference, rel=1e-5), \
                f"{method}/{jacobian} diverges"

    def test_auto_uses_pattern_not_analytic_sparse_when_large(self):
        """``auto`` must hand scipy the sparsity pattern, not the
        analytic sparse callable: with bitwise-identical Jacobian
        values, BDF's step control flips borderline step acceptances
        under the SuperLU backend and can silently integrate a wrong
        trajectory on stiff compiled networks at loose tolerances
        (observed on the DSD benchmark at C_max = 3e4)."""
        network = Network("chain")
        for i in range(70):
            network.add(f"S{i}", f"S{i + 1}", 1.0)
        network.set_initial("S0", 1.0)
        options = OdeSimulator(network, method="BDF")._jacobian_options()
        assert "jac_sparsity" in options
        assert "jac" not in options
        small = OdeSimulator(_decay_network(),
                             method="BDF")._jacobian_options()
        assert callable(small.get("jac"))

    def test_unknown_mode_rejected(self):
        network = _decay_network()
        with pytest.raises(SimulationError):
            OdeSimulator(network, jacobian="banded")


class TestInternalIntegrator:
    def test_matches_scipy_on_stiff_transfer(self):
        from repro.core.memory import build_delay_chain

        network, line, _ = build_delay_chain(n=1, initial=20.0)
        scipy_y = OdeSimulator(network).simulate(20.0).final("Y")
        internal = OdeSimulator(network, method="internal-rk45",
                                rtol=1e-7, atol=1e-9)
        internal_y = internal.simulate(20.0).final("Y")
        assert internal_y == pytest.approx(scipy_y, rel=1e-3)

    def test_dense_output_matches_tolerance_between_steps(self):
        """Sampled values must carry step-level accuracy (PR 5 fix).

        The conformance oracle caught the internal integrator linearly
        interpolating between accepted steps: at tight tolerances the
        steps are large, so mid-grid samples carried O(h^2) error that
        swamped the integration tolerance.  The Dormand-Prince 4th-order
        dense output keeps sampled values at integrator accuracy."""
        import numpy as np

        from repro.crn.simulation.rk import integrate_rk45

        grid = np.linspace(0.0, 3.0, 200)
        _, dense = integrate_rk45(
            lambda t, x: np.array([-x[0], -5.0 * x[1]]), (0.0, 3.0),
            np.array([2.0, 1.0]), rtol=1e-9, atol=1e-11,
            dense_times=grid)
        exact = np.stack([2.0 * np.exp(-grid), np.exp(-5.0 * grid)],
                         axis=1)
        assert float(np.abs(dense - exact).max()) < 1e-8

    def test_internal_rejects_events(self):
        network = _decay_network()
        simulator = OdeSimulator(network, method="internal-rk45")
        with pytest.raises(SimulationError):
            simulator.simulate(1.0, events=[species_below(network, "A", 1)])
