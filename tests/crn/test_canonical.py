"""Canonical network serialisation: the content-addressing substrate.

The serving layer (``repro.serve``) keys its result cache on
``Network.canonical_hash()``, so these tests pin the two properties the
cache depends on: the hash is *stable* under every presentation change
that does not alter the chemistry (species/reaction permutation,
exact-duplicate reaction repetition, display name), and it *moves* for
every change that does (rates, stoichiometry, initials, metadata).
"""

from __future__ import annotations

import pytest

from repro.crn.network import CANONICAL_SCHEMA, Network
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import NetworkError


def _example() -> Network:
    net = Network("demo")
    net.add_species(Species("b", color="green", role="clock"))
    net.add_species(Species("a", color="red"))
    net.add_species(Species("c"))
    net.add_reaction(Reaction({"a": 1, "b": 1}, {"c": 2}, "fast"))
    net.add_reaction(Reaction({"c": 1}, None, 0.5))
    net.set_initial("a", 10.0)
    net.set_initial("b", 2.5)
    return net


def _permuted() -> Network:
    """The same chemistry declared in a different order."""
    net = Network("demo-permuted")
    net.add_species(Species("c"))
    net.add_species(Species("a", color="red"))
    net.add_species(Species("b", color="green", role="clock"))
    net.add_reaction(Reaction({"c": 1}, None, 0.5))
    net.add_reaction(Reaction({"b": 1, "a": 1}, {"c": 2}, "fast"))
    net.set_initial("b", 2.5)
    net.set_initial("a", 10.0)
    return net


class TestCanonicalDict:
    def test_schema_tag(self):
        payload = _example().to_canonical_dict()
        assert payload["schema"] == CANONICAL_SCHEMA

    def test_species_sorted_with_metadata(self):
        payload = _example().to_canonical_dict()
        assert [s["name"] for s in payload["species"]] == ["a", "b", "c"]
        assert payload["species"][0] == {"name": "a", "color": "red"}
        assert payload["species"][1] == {
            "name": "b", "color": "green", "role": "clock"}
        assert payload["species"][2] == {"name": "c"}

    def test_zero_initials_dropped(self):
        net = _example()
        net.set_initial("c", 0.0)
        payload = net.to_canonical_dict()
        assert payload["initial"] == {"a": 10.0, "b": 2.5}

    def test_json_serialisable(self):
        import json

        json.dumps(_example().to_canonical_dict())

    def test_exact_duplicates_merge_with_count(self):
        net = Network()
        for _ in range(3):
            net.add_reaction(Reaction({"x": 1}, {"y": 1}, "fast"))
        (entry,) = net.to_canonical_dict()["reactions"]
        assert entry["count"] == 3

    def test_near_duplicates_stay_separate(self):
        net = Network()
        net.add_reaction(Reaction({"x": 1}, {"y": 1}, "fast"))
        net.add_reaction(Reaction({"x": 1}, {"y": 1}, "slow"))
        assert len(net.to_canonical_dict()["reactions"]) == 2


class TestCanonicalHash:
    def test_permutation_invariant(self):
        assert _example().canonical_hash() == _permuted().canonical_hash()

    def test_name_excluded(self):
        a, b = _example(), _example()
        b.name = "renamed"
        assert a.canonical_hash() == b.canonical_hash()

    def test_rate_change_moves_hash(self):
        a, b = _example(), _example()
        b.reactions[1] = Reaction({"c": 1}, None, 0.25)
        assert a.canonical_hash() != b.canonical_hash()

    def test_initial_change_moves_hash(self):
        a, b = _example(), _example()
        b.set_initial("a", 11.0)
        assert a.canonical_hash() != b.canonical_hash()

    def test_metadata_change_moves_hash(self):
        a = _example()
        b = Network()
        for sp in a.species:
            if sp.name == "c":
                b.add_species(Species("c", color="blue"))
            else:
                b.add_species(sp)
        b.extend(a.reactions)
        for name, value in a.initial.items():
            b.set_initial(name, value)
        assert a.canonical_hash() != b.canonical_hash()

    def test_duplicate_count_moves_hash(self):
        a = Network()
        a.add_reaction(Reaction({"x": 1}, {"y": 1}, "fast"))
        b = a.copy()
        b.add_reaction(Reaction({"x": 1}, {"y": 1}, "fast"))
        assert a.canonical_hash() != b.canonical_hash()


class TestRoundTrip:
    def test_dict_round_trip_identity(self):
        payload = _example().to_canonical_dict()
        rebuilt = Network.from_canonical_dict(payload)
        assert rebuilt.to_canonical_dict() == payload

    def test_canonical_form_is_fixed_point(self):
        canonical = _permuted().canonical_form()
        assert canonical.species_names == ["a", "b", "c"]
        assert canonical.canonical_hash() == _example().canonical_hash()
        again = canonical.canonical_form()
        assert again.species_names == canonical.species_names
        assert [str(r) for r in again.reactions] == \
            [str(r) for r in canonical.reactions]

    def test_duplicates_re_expanded(self):
        net = Network()
        for _ in range(3):
            net.add_reaction(Reaction({"x": 1}, {"y": 1}, "fast"))
        rebuilt = Network.from_canonical_dict(net.to_canonical_dict())
        assert rebuilt.n_reactions == 3

    def test_simulatable_after_round_trip(self):
        import repro

        rebuilt = _example().canonical_form()
        result = repro.simulate(rebuilt, 1.0, method="ode")
        assert result.states.shape[1] == 3


class TestValidation:
    def test_rejects_non_mapping(self):
        with pytest.raises(NetworkError, match="mapping"):
            Network.from_canonical_dict([1, 2])

    def test_rejects_unknown_fields(self):
        payload = _example().to_canonical_dict()
        payload["extra"] = 1
        with pytest.raises(NetworkError, match="extra"):
            Network.from_canonical_dict(payload)

    def test_rejects_wrong_schema(self):
        payload = _example().to_canonical_dict()
        payload["schema"] = "repro.network/0"
        with pytest.raises(NetworkError, match="schema"):
            Network.from_canonical_dict(payload)
