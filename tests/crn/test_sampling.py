"""Unit tests for the shared stochastic-sampling primitives."""

import numpy as np
import pytest

from repro.crn.simulation.sampling import (cumulative_propensities,
                                           select_reaction)
from repro.errors import SimulationError


class TestSelectReaction:
    def test_proportional_selection(self):
        propensities = np.array([1.0, 3.0])
        assert select_reaction(propensities, 0.1) == 0
        assert select_reaction(propensities, 0.9) == 1

    def test_zero_propensity_never_selected(self):
        propensities = np.array([0.0, 2.0, 0.0, 1.0])
        draws = np.linspace(0.0, 0.999, 101)
        chosen = {select_reaction(propensities, u) for u in draws}
        assert chosen <= {1, 3}

    def test_rounding_overflow_falls_back_to_last_positive(self):
        # u == 1.0 can never be produced by rng.random(), but rounding
        # in the cumulative sum can push the draw past the final bin;
        # the last *positive* reaction fires, never a zero one.
        propensities = np.array([2.0, 1.0, 0.0])
        assert select_reaction(propensities, 1.0) == 1

    def test_all_zero_propensities_raise(self):
        """The absorbing-state draw must fail loudly (PR 5 fix).

        The fallback used to silently fire the last reaction even when
        every propensity was zero, corrupting the state instead of
        surfacing the caller bug (both simulators guard ``total > 0``
        before drawing)."""
        with pytest.raises(SimulationError, match="absorbing"):
            select_reaction(np.zeros(3), 0.5)

    def test_precomputed_cumulative_path(self):
        propensities = np.array([1.0, 1.0])
        cumulative = cumulative_propensities(propensities)
        assert select_reaction(propensities, 0.75, cumulative=cumulative,
                               total=float(cumulative[-1])) == 1

    def test_stale_oversized_total_is_refreshed(self):
        """A stale ``total`` larger than ``cumulative[-1]`` must not
        bias the draw toward later reactions.

        With the total inflated to 3.0, ``u=0.4`` maps to ``1.2``,
        which lands in bin 1 instead of bin 0 where the true draw
        ``0.4 * 2.0 = 0.8`` belongs.  The refreshed total keeps the
        draw proportional to the *current* propensities."""
        propensities = np.array([1.0, 1.0])
        cumulative = cumulative_propensities(propensities)
        assert select_reaction(propensities, 0.4, cumulative=cumulative,
                               total=3.0) == 0

    def test_stale_undersized_total_is_refreshed(self):
        """A stale ``total`` smaller than the true sum would make the
        last bin unreachable; the refresh restores it."""
        propensities = np.array([1.0, 3.0])
        cumulative = cumulative_propensities(propensities)
        assert select_reaction(propensities, 0.9, cumulative=cumulative,
                               total=1.0) == 1

    def test_stale_total_overflow_rounding_path(self):
        """Directly exercise the post-refresh overflow fallback.

        Even with the refreshed (exact) total, ``u == 1.0`` makes
        ``u * total == cumulative[-1]``, the ``side='right'`` search
        returns an index past the final bin, and the last *positive*
        reaction fires -- never the trailing zero-propensity one."""
        propensities = np.array([2.0, 1.0, 0.0])
        cumulative = cumulative_propensities(propensities)
        assert select_reaction(propensities, 1.0, cumulative=cumulative,
                               total=5.0) == 1

    def test_stale_total_all_zero_still_raises(self):
        cumulative = cumulative_propensities(np.zeros(3))
        with pytest.raises(SimulationError, match="absorbing"):
            select_reaction(np.zeros(3), 0.5, cumulative=cumulative,
                            total=1.0)
