"""Unit tests for the shared stochastic-sampling primitives."""

import numpy as np
import pytest

from repro.crn.simulation.sampling import (cumulative_propensities,
                                           select_reaction)
from repro.errors import SimulationError


class TestSelectReaction:
    def test_proportional_selection(self):
        propensities = np.array([1.0, 3.0])
        assert select_reaction(propensities, 0.1) == 0
        assert select_reaction(propensities, 0.9) == 1

    def test_zero_propensity_never_selected(self):
        propensities = np.array([0.0, 2.0, 0.0, 1.0])
        draws = np.linspace(0.0, 0.999, 101)
        chosen = {select_reaction(propensities, u) for u in draws}
        assert chosen <= {1, 3}

    def test_rounding_overflow_falls_back_to_last_positive(self):
        # u == 1.0 can never be produced by rng.random(), but rounding
        # in the cumulative sum can push the draw past the final bin;
        # the last *positive* reaction fires, never a zero one.
        propensities = np.array([2.0, 1.0, 0.0])
        assert select_reaction(propensities, 1.0) == 1

    def test_all_zero_propensities_raise(self):
        """The absorbing-state draw must fail loudly (PR 5 fix).

        The fallback used to silently fire the last reaction even when
        every propensity was zero, corrupting the state instead of
        surfacing the caller bug (both simulators guard ``total > 0``
        before drawing)."""
        with pytest.raises(SimulationError, match="absorbing"):
            select_reaction(np.zeros(3), 0.5)

    def test_precomputed_cumulative_path(self):
        propensities = np.array([1.0, 1.0])
        cumulative = cumulative_propensities(propensities)
        assert select_reaction(propensities, 0.75, cumulative=cumulative,
                               total=float(cumulative[-1])) == 1
