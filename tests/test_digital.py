"""Tests for the digital layer: bits, gates, counter, FSMs."""

import itertools

import pytest

from repro.crn.network import Network
from repro.crn.simulation.ssa import StochasticSimulator
from repro.digital import (BinaryCounter, Bit, MolecularFSM, and_gate,
                           binary_gate, bits_to_int, fan_out, full_adder,
                           half_adder, int_to_bits, not_gate,
                           parity_machine, sequence_detector, xor_gate)
from repro.errors import NetworkError, SimulationError


def _evaluate(network, bits):
    """Settle a one-shot logic network under exact SSA and read bits."""
    simulator = StochasticSimulator(network, seed=0)
    trajectory = simulator.simulate(1.0, n_samples=2)
    final = trajectory.final_state()
    return [bit.read_state(lambda n: final[n]) for bit in bits]


class TestBits:
    def test_declare_and_set(self):
        network = Network()
        bit = Bit("a").declare(network, value=True)
        assert network.get_initial(bit.hi) == 1.0
        assert network.get_initial(bit.lo) == 0.0

    def test_read_state_clean(self):
        bit = Bit("a")
        assert bit.read_state(lambda n: {"a_hi": 1.0, "a_lo": 0.0}[n])
        assert not bit.read_state(lambda n: {"a_hi": 0.0, "a_lo": 1.0}[n])

    def test_read_state_unsettled_raises(self):
        bit = Bit("a")
        with pytest.raises(NetworkError):
            bit.read_state(lambda n: 0.5)

    def test_int_round_trip(self):
        for value in range(16):
            assert bits_to_int(int_to_bits(value, 4)) == value

    def test_int_to_bits_range_checked(self):
        with pytest.raises(NetworkError):
            int_to_bits(16, 4)


class TestGates:
    @pytest.mark.parametrize("kind,table", [
        ("and", lambda a, b: a and b),
        ("or", lambda a, b: a or b),
        ("xor", lambda a, b: a != b),
        ("nand", lambda a, b: not (a and b)),
        ("nor", lambda a, b: not (a or b)),
        ("xnor", lambda a, b: a == b),
    ])
    def test_binary_gate_truth_tables(self, kind, table):
        for va, vb in itertools.product([False, True], repeat=2):
            network = Network()
            a = Bit("a").declare(network, va)
            b = Bit("b").declare(network, vb)
            out = binary_gate(network, kind, a, b, Bit("o"))
            assert _evaluate(network, [out]) == [bool(table(va, vb))], \
                f"{kind}({va},{vb})"

    def test_not_gate(self):
        for value in (False, True):
            network = Network()
            a = Bit("a").declare(network, value)
            out = not_gate(network, a, Bit("o"))
            assert _evaluate(network, [out]) == [not value]

    def test_unknown_gate_kind(self):
        network = Network()
        a = Bit("a").declare(network, True)
        b = Bit("b").declare(network, True)
        with pytest.raises(NetworkError):
            binary_gate(network, "maybe", a, b, Bit("o"))

    def test_fan_out_copies(self):
        network = Network()
        a = Bit("a").declare(network, True)
        copies = fan_out(network, a, [Bit("c1"), Bit("c2")])
        assert _evaluate(network, copies) == [True, True]

    def test_composed_circuit(self):
        """(a AND b) XOR c over all eight input combinations."""
        for va, vb, vc in itertools.product([False, True], repeat=3):
            network = Network()
            a = Bit("a").declare(network, va)
            b = Bit("b").declare(network, vb)
            c = Bit("c").declare(network, vc)
            ab = and_gate(network, a, b, Bit("ab"))
            out = xor_gate(network, ab, c, Bit("o"))
            assert _evaluate(network, [out]) == [(va and vb) != vc]


class TestAdders:
    def test_half_adder(self):
        for va, vb in itertools.product([False, True], repeat=2):
            network = Network()
            a = Bit("a").declare(network, va)
            b = Bit("b").declare(network, vb)
            total, carry = half_adder(network, a, b, Bit("s"), Bit("c"))
            s, c = _evaluate(network, [total, carry])
            assert (int(c) << 1) + int(s) == int(va) + int(vb)

    def test_full_adder(self):
        for va, vb, vc in itertools.product([False, True], repeat=3):
            network = Network()
            a = Bit("a").declare(network, va)
            b = Bit("b").declare(network, vb)
            cin = Bit("ci").declare(network, vc)
            total, carry = full_adder(network, a, b, cin, Bit("s"),
                                      Bit("co"))
            s, c = _evaluate(network, [total, carry])
            assert (int(c) << 1) + int(s) == int(va) + int(vb) + int(vc)


class TestCounter:
    def test_counts_and_wraps(self):
        counter = BinaryCounter(3)
        run = counter.count(10, seed=0)
        run.check(8)
        assert run.overflow == 1

    def test_two_bit_counter(self):
        run = BinaryCounter(2).count(6, seed=1)
        assert run.values == [0, 1, 2, 3, 0, 1, 2]

    def test_invalid_width(self):
        with pytest.raises(NetworkError):
            BinaryCounter(0)


class TestFSM:
    def test_parity_machine(self):
        fsm = parity_machine()
        run = fsm.run("110101", seed=0)
        expected = ["even"]
        for symbol in "110101":
            if symbol == "1":
                expected.append("odd" if expected[-1] == "even"
                                else "even")
            else:
                expected.append(expected[-1])
        assert run.trace == expected

    def test_sequence_detector_overlapping(self):
        fsm = sequence_detector("101")
        run = fsm.run("10101", seed=0)
        # hits at positions 3 and 5 (overlap allowed)
        assert run.output_counts["hit"][-1] == 2
        assert run.emissions("hit") == [0, 0, 1, 0, 1]

    def test_detector_no_false_hits(self):
        fsm = sequence_detector("111")
        run = fsm.run("110110", seed=0)
        assert run.output_counts["hit"][-1] == 0

    def test_missing_transition_rejected(self):
        with pytest.raises(NetworkError):
            MolecularFSM(["a"], ["0"], {})

    def test_unknown_symbol_rejected(self):
        fsm = parity_machine()
        with pytest.raises(NetworkError):
            fsm.run("2")

    def test_random_words_match_python_model(self):
        import random

        rng = random.Random(4)
        fsm = sequence_detector("110")
        for trial in range(3):
            word = "".join(rng.choice("01") for _ in range(12))
            run = fsm.run(word, seed=trial)
            hits = sum(1 for i in range(len(word) - 2)
                       if word[i:i + 3] == "110")
            assert run.output_counts["hit"][-1] == hits, word

    def test_unsettled_state_detection(self):
        fsm = parity_machine()
        import numpy as np

        with pytest.raises(SimulationError):
            fsm.read_state(np.zeros(fsm.network.n_species))
