"""Small-gain composition: algebraic rules vs direct derivation."""

from fractions import Fraction

import pytest

from repro.apps.filters import iir_first_order, moving_average
from repro.certify import (CertifyConfig, cascade_certificates,
                           certificate_for, certify_composition,
                           compose_certificates, parallel_certificates)
from repro.certify.targets import build_cascade, resolve_design
from repro.core.compose import cascade, parallel_sum, rename
from repro.errors import CertifyError

CFG = CertifyConfig()


def _seamed(first, second):
    """Rename single ports so ``first``'s output feeds ``second``."""
    left = rename(first, outputs={first.outputs[0]: "mid"})
    right = rename(second, inputs={second.inputs[0]: "mid"})
    return left, right


class TestCascadeRule:
    def test_gain_multiplies_disturbance_composes(self):
        a = certificate_for(resolve_design("amp:4"))
        b = certificate_for(resolve_design("ma"))
        composed = cascade_certificates(a, b)
        assert composed.gain == a.gain * b.gain
        assert composed.disturbance_gain == \
            a.disturbance_gain * b.gain + b.disturbance_gain
        assert composed.kind == "cascade"

    def test_both_bounds_sound_for_unit_gain_cascade(self):
        """Direct and algebraic bounds both cover the true gain (1)."""
        first, second = _seamed(moving_average(2).to_matrix(),
                                iir_first_order().to_matrix())
        direct = certificate_for(cascade(first, second))
        algebraic = cascade_certificates(certificate_for(first),
                                         certificate_for(second))
        # True DC gain of ma(2) -> iir is exactly 1; both are upper
        # bounds, the direct one with tail slack from the seam state.
        assert algebraic.gain == 1
        assert 1 <= direct.gain < Fraction(3, 2)
        assert direct.certified_at(1000.0, CFG)
        assert algebraic.certified_at(1000.0, CFG)
        # Neither bound uniformly dominates; both stay the same order.
        assert direct.min_separation(CFG) <= \
            2 * algebraic.min_separation(CFG)

    def test_unknown_kind_rejected(self):
        a = certificate_for(resolve_design("ma"))
        with pytest.raises(CertifyError, match="unknown composition"):
            compose_certificates("feedback", a, a)


class TestParallelRule:
    def test_gains_add(self):
        a = certificate_for(moving_average(2).to_matrix())
        composed = parallel_certificates(a, a)
        assert composed.gain == 2 * a.gain
        assert composed.disturbance_gain == 2 * a.disturbance_gain

    def test_parallel_sum_certified(self):
        design = moving_average(2).to_matrix()
        out = parallel_sum(design, design, certify=True)
        assert certificate_for(out).gain == 2


class TestSmallGainViolation:
    def test_certify_composition_raises_c802(self):
        first, second = _seamed(resolve_design("amp:4"),
                                resolve_design("amp:4"))
        mid = cascade(first, second)
        third = rename(resolve_design("amp:4"), inputs={"x": "mid"},
                       outputs={"y": "z"})
        left = rename(mid, outputs={mid.outputs[0]: "mid"})
        with pytest.raises(CertifyError, match="REPRO-C802"):
            certify_composition(left, third, cascade(left, third),
                                "cascade")

    def test_cascade_certify_kwarg_raises(self):
        first, second = _seamed(resolve_design("amp:4"),
                                resolve_design("amp:4"))
        mid = cascade(first, second)
        left = rename(mid, outputs={mid.outputs[0]: "v"})
        third = rename(resolve_design("amp:4"), inputs={"x": "v"},
                       outputs={"y": "z"})
        with pytest.raises(CertifyError, match="REPRO-C802"):
            cascade(left, third, certify=True)

    def test_good_cascade_passes(self):
        first, second = _seamed(moving_average(2).to_matrix(),
                                iir_first_order().to_matrix())
        composite = cascade(first, second, certify=True)
        cert = certificate_for(composite)
        assert cert.certified_at(1000.0, CFG)

    def test_uncertifiable_stage_raises_c801(self):
        from repro.core.dfg import SignalFlowGraph

        sfg = SignalFlowGraph("acc")
        x = sfg.input("x")
        state = sfg.delay("s")
        y = sfg.add(x, state)
        sfg.output("y", y)
        sfg.connect(y, state)
        acc = rename(sfg.to_matrix(), inputs={"x": "y"},
                     outputs={"y": "z"})
        with pytest.raises(CertifyError, match="REPRO-C801"):
            cascade(moving_average(2).to_matrix(), acc, certify=True)


class TestTargets:
    def test_build_cascade_specs(self):
        composite = build_cascade(["ma", "iir"])
        assert composite.inputs == ["x"]
        cert = certificate_for(composite)
        assert 1 <= cert.gain < 2
        assert cert.certified_at(1000.0, CFG)

    def test_amp_chain_min_separation(self):
        cert = certificate_for(build_cascade(["amp:4", "amp:4",
                                              "amp:4"]))
        assert cert.gain == 64
        assert cert.disturbance_gain == 21
        assert cert.min_separation(CFG) == pytest.approx(3360.0)

    def test_unknown_spec_rejected(self):
        with pytest.raises(CertifyError, match="unknown design spec"):
            resolve_design("warp")

    def test_iir_feedback_argument(self):
        design = resolve_design("iir:3/4")
        assert design.coefficient("s", "s") == Fraction(3, 4)
