"""Dynamic soundness of the static certificates.

A certificate claims zero bit errors at any separation at or above its
``min_separation``.  These campaigns attack that region with compressed
schemes plus rate-mismatch faults; a single failure disproves it.
Budgets are kept tiny (2-3 trials, 2-3 probe points) so the suite stays
tier-1 friendly; CI-scale sweeps live in the robustness campaigns.
"""

import math

import pytest

from repro.certify import (CertifyConfig, certified_margin_campaign,
                           circuit_certificate, margin_consistency)
from repro.errors import CertifyError

CFG = CertifyConfig()


@pytest.mark.parametrize("name", ["ma", "iir"])
def test_certified_region_is_failure_free(name):
    report = certified_margin_campaign(name, seed=0, trials=2, points=2)
    assert report.sound, report.to_dict()
    assert report.trials == 4
    assert report.min_separation == pytest.approx(
        float(circuit_certificate(name).min_separation(CFG)))
    # Every probe sits inside the certified region.
    for probe in report.probes:
        assert probe.separation >= report.min_separation - 1e-9


@pytest.mark.parametrize("name", ["ma", "iir"])
def test_static_bound_is_conservative(name):
    certificate, result = margin_consistency(name, seed=0, trials=2)
    floor = certificate.min_separation(CFG)
    # The certificate must never bless a separation observed to fail.
    if math.isfinite(result.failed_at):
        assert floor >= result.failed_at
    # And the measured passing margin must itself be certified-safe
    # territory or below (the bound is conservative, not vacuous).
    assert floor <= 10 * result.margin


def test_report_to_dict_round_trip():
    report = certified_margin_campaign("ma", seed=1, trials=1, points=2)
    payload = report.to_dict()
    assert payload["circuit"] == "ma"
    assert payload["sound"] is report.sound
    assert len(payload["probes"]) == 2


def test_unknown_circuit_rejected():
    with pytest.raises(CertifyError, match="no certifiable design"):
        circuit_certificate("clockwork")
