"""Tests for the ``python -m repro certify`` subcommand."""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_all_builtins_certify(self, capsys):
        assert main(["certify", "--circuit", "all"]) == 0
        out = capsys.readouterr().out
        assert "6 target(s): 6 certified, 0 rejected" in out
        assert "CERTIFIED" in out

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["certify"]) == 2
        assert "nothing to certify" in capsys.readouterr().err

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.crn"
        assert main(["certify", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_small_gain_violation_rejected(self, capsys):
        assert main(["certify", "--cascade",
                     "amp:4,amp:4,amp:4"]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "REPRO-C802" in out

    def test_certifiable_cascade_passes(self, capsys):
        assert main(["certify", "--cascade", "ma,iir"]) == 0
        assert "CERTIFIED" in capsys.readouterr().out


class TestJsonOutput:
    def test_deterministic_across_runs(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["certify", "--circuit", "all",
                     "--format", "json",
                     "--output", str(first)]) == 0
        assert main(["certify", "--circuit", "all",
                     "--format", "json",
                     "--output", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()

    def test_payload_shape(self, capsys):
        assert main(["certify", "--circuit", "iir",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"targets": 1, "certified": 1,
                                      "rejected": 0}
        (target,) = payload["targets"]
        assert target["certified"] is True
        assert target["certificate"]["gain"] == "1"
        assert target["certificate"]["disturbance_gain"] == "2"


class TestSarifOutput:
    def test_rejected_cascade_carries_c_rule(self, capsys):
        assert main(["certify", "--cascade", "amp:4,amp:4,amp:4",
                     "--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rules = {r["id"]: r for r in
                 run["tool"]["driver"]["rules"]}
        assert "REPRO-C802" in rules
        assert rules["REPRO-C802"]["helpUri"].endswith(
            "docs/certify.md#repro-c802")
        codes = {res["ruleId"] for res in run["results"]}
        assert "REPRO-C802" in codes


class TestConfigFlags:
    def test_headroom_tightening_fires_w803(self, capsys):
        # Nominal separation is 1000; biquad min_separation ~875, so a
        # large headroom pushes the required margin past nominal.
        assert main(["certify", "--circuit", "biquad",
                     "--headroom", "1.2"]) in (0, 1)
        out = capsys.readouterr().out
        assert "REPRO-W803" in out

    def test_fail_on_warning_gates_exit(self, capsys):
        args = ["certify", "--circuit", "biquad", "--headroom", "1.2"]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--fail-on", "warning"]) == 1

    def test_noise_margin_override_rejects(self, capsys):
        # A 100x tighter margin makes even the moving average fail.
        assert main(["certify", "--circuit", "moving-average",
                     "--noise-margin", "0.005"]) == 1
        out = capsys.readouterr().out
        assert "REPRO-C802" in out


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_file_targets_certify(tmp_path, capsys, fmt):
    path = tmp_path / "copy.crn"
    path.write_text("species X role=signal\nspecies Y role=signal\n"
                    "init X = 8\nX -> Y @ fast\n")
    assert main(["certify", str(path), "--format", fmt]) == 0
    assert capsys.readouterr().out
