"""Structural certificates for raw reaction networks."""

import pytest

from repro.certify import certificate_for, network_certificate
from repro.crn.network import Network
from repro.errors import CertifyError
from repro.lint.builtins import build_target


class TestBuiltins:
    @pytest.mark.parametrize("name", ["clock", "counter", "fsm"])
    def test_hand_built_machines_certify(self, name):
        network = build_target(name)
        cert = network_certificate(network)
        assert cert.kind == "network"
        assert cert.gain >= 1
        assert cert.settling_rate > 0
        assert cert.separation > 1

    @pytest.mark.parametrize("name", ["moving-average", "iir"])
    def test_synthesized_circuits_take_design_path(self, name):
        cert = certificate_for(build_target(name))
        assert cert.kind == "design"
        assert cert.gain == 1


class TestExpansiveLoops:
    def test_autocatalysis_is_uncertifiable(self):
        network = Network("autocatalytic")
        network.add_species("X", initial=1.0)
        network.add(["X"], ["X", "X"], rate="slow")
        with pytest.raises(CertifyError, match="REPRO-C801"):
            network_certificate(network)

    def test_expansive_two_species_cycle(self):
        network = Network("pingpong")
        network.add_species("X", initial=1.0)
        network.add_species("Y")
        network.add(["X"], ["Y", "Y"], rate="slow")
        network.add(["Y"], ["X"], rate="slow")
        with pytest.raises(CertifyError, match="REPRO-C801"):
            network_certificate(network)

    def test_feed_forward_fanout_is_fine(self):
        network = Network("fanout")
        network.add_species("X", initial=1.0)
        network.add_species("X1")
        network.add_species("X2")
        network.add(["X"], ["X1", "X2"], rate="fast")
        cert = network_certificate(network)
        assert cert.disturbance_gain == 2

    def test_zeroth_order_source_is_exogenous(self):
        network = Network("source")
        network.add_species("P", initial=0.0)
        network.add([], ["P"], rate="slow")
        cert = network_certificate(network)
        assert cert.disturbance_gain == 1

    def test_indicator_mass_does_not_count(self):
        network = Network("gated")
        network.add_species("X", initial=1.0)
        network.add_species("Y")
        network.add_species("g", role="indicator")
        # Signal mass is conserved (X -> Y); the regenerated indicator
        # must not be mistaken for amplification.
        network.add(["g", "X"], ["g", "g", "Y"], rate="slow")
        cert = network_certificate(network)
        assert cert.disturbance_gain == 1


class TestRateMargins:
    def test_unknown_rate_category_is_c801(self):
        network = Network("mystery")
        network.add_species("X", initial=1.0)
        network.add_species("Y")
        network.add(["X"], ["Y"], rate="medium")
        with pytest.raises(CertifyError, match="REPRO-C801"):
            network_certificate(network)

    def test_separation_reflects_reactions(self):
        network = Network("mixed")
        network.add_species("X", initial=1.0)
        network.add_species("Y")
        network.add_species("Z")
        network.add(["X"], ["Y"], rate="fast")
        network.add(["Y"], ["Z"], rate="slow")
        cert = network_certificate(network)
        assert cert.separation == pytest.approx(1000.0)
