"""Exact certificate derivation for the shipped designs."""

from fractions import Fraction

import pytest

from repro.apps.filters import biquad, iir_first_order, moving_average
from repro.certify import (Certificate, CertifyConfig, certificate_for,
                           design_certificate)
from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.errors import CertifyError

CFG = CertifyConfig()


class TestMovingAverage:
    def test_exact_fields(self):
        cert = certificate_for(moving_average(2).to_matrix())
        assert cert.gain == 1
        assert cert.state_gain == 1
        assert cert.contraction == 0
        assert cert.horizon == 1
        assert cert.disturbance_gain == Fraction(3, 2)

    def test_min_separation(self):
        cert = certificate_for(moving_average(2).to_matrix())
        # dist * kappa * scale / margin = 1.5 * 10 * 8 / 0.5
        assert cert.min_separation(CFG) == pytest.approx(240.0)
        assert cert.certified_at(240.0, CFG)
        assert not cert.certified_at(239.0, CFG)

    def test_four_taps(self):
        cert = certificate_for(moving_average(4).to_matrix())
        assert cert.gain == 1
        assert cert.horizon == 3  # nilpotent delay line of length 3
        assert cert.disturbance_gain == Fraction(13, 4)


class TestIir:
    def test_exact_fields(self):
        cert = certificate_for(iir_first_order().to_matrix())
        # D + C*B/(1-A) = 1/2 + (1/4)/(1/2) = 1, exactly.
        assert cert.gain == 1
        assert cert.contraction == Fraction(1, 2)
        assert cert.horizon == 1
        assert cert.disturbance_gain == 2

    def test_sfg_and_matrix_agree(self):
        sfg = iir_first_order()
        assert certificate_for(sfg) == certificate_for(sfg.to_matrix())


class TestBiquad:
    def test_contracts_over_three_cycles(self):
        design = biquad(Fraction(1, 4), Fraction(1, 2), Fraction(1, 4),
                        Fraction(-1, 4), Fraction(1, 8)).to_matrix()
        cert = certificate_for(design)
        # ||A||=9/8 >= 1: the one-cycle norm is useless, but the
        # three-cycle power contracts.
        assert cert.horizon == 3
        assert cert.contraction == Fraction(17, 32)
        assert cert.transient == Fraction(9, 8)
        assert cert.certified_at(1000.0, CFG)

    def test_tail_bound_tightens_with_windows(self):
        design = biquad(Fraction(1, 4), Fraction(1, 2), Fraction(1, 4),
                        Fraction(-1, 4), Fraction(1, 8)).to_matrix()
        loose = design_certificate(
            design, config=CertifyConfig(tail_windows=1))
        tight = design_certificate(
            design, config=CertifyConfig(tail_windows=8))
        assert tight.disturbance_gain < loose.disturbance_gain
        assert tight.gain <= loose.gain


class TestUncertifiable:
    def test_undamped_accumulator_is_c801(self):
        sfg = SignalFlowGraph("accumulator")
        x = sfg.input("x")
        state = sfg.delay("s")
        y = sfg.add(x, state)  # y[n] = x[n] + y[n-1]: pure integrator
        sfg.output("y", y)
        sfg.connect(y, state)
        with pytest.raises(CertifyError, match="REPRO-C801"):
            certificate_for(sfg.to_matrix())

    def test_certificate_rejects_expansive_contraction(self):
        with pytest.raises(CertifyError, match="REPRO-C801"):
            Certificate(module="bad", kind="design", gain=Fraction(1),
                        state_gain=Fraction(1), contraction=Fraction(1),
                        horizon=1, transient=Fraction(1),
                        disturbance_gain=Fraction(1),
                        settling_rate=1000.0, separation=1000.0)


class TestStateless:
    def test_pure_gain_certificate(self):
        design = MatrixDesign(
            name="amp", inputs=["x"], outputs=["y"], delays=[],
            coefficients={("y", "x"): Fraction(4)}, initial_state={})
        cert = certificate_for(design)
        assert cert.gain == 4
        assert cert.horizon == 0
        assert cert.disturbance_gain == 1
        assert cert.state_gain == 0


class TestConfig:
    def test_validation(self):
        with pytest.raises(CertifyError):
            CertifyConfig(noise_margin=0.0)
        with pytest.raises(CertifyError):
            CertifyConfig(headroom=0.5)
        with pytest.raises(CertifyError):
            CertifyConfig(tail_windows=0)

    def test_to_dict_exact_and_deterministic(self):
        cert = certificate_for(moving_average(2).to_matrix())
        payload = cert.to_dict(CFG)
        assert payload["disturbance_gain"] == "3/2"
        assert payload["gain"] == "1"
        assert payload["certified"] is True
        assert payload == cert.to_dict(CFG)

    def test_settle_time_uses_rates(self):
        cert = certificate_for(moving_average(2).to_matrix())
        assert cert.settling_rate == pytest.approx(1000.0)
        assert cert.required_settle_time(CFG) > 0
