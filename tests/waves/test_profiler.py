"""Tests for the cycle profiler (settling / dead time attribution)."""

import pytest

from repro.obs.records import CycleSpan
from repro.waves import profile_cycles, render_profile


def _record(cycle=0, t0=0.0, t1=3.0):
    """One synthetic cycle: red hosts a transfer that settles at 40%,
    green hosts the critical transfer, blue hosts nothing (all dead)."""
    phases = [("red", t0, t0 + 1.0), ("green", t0 + 1.0, t0 + 2.0),
              ("blue", t0 + 2.0, t1)]
    transfers = [
        ("transfer:red->green", t0 + 0.1, t0 + 0.4, {}),
        ("transfer:green->blue", t0 + 1.0, t0 + 1.9, {}),
    ]
    return (CycleSpan(cycle, t0, t1), phases, transfers)


class TestProfile:
    def test_settling_and_dead_time(self):
        report = profile_cycles([_record()])
        [row] = report.cycles
        phases = {color: (duration, settling, dead)
                  for color, duration, settling, dead in row.phases}
        # Red's transfer ends at 0.4 => 0.4 settling, 0.6 dead.
        assert phases["red"] == pytest.approx((1.0, 0.4, 0.6))
        # Green's ends at 1.9 => 0.9 settling, 0.1 dead.
        assert phases["green"] == pytest.approx((1.0, 0.9, 0.1))
        # Blue hosts nothing: entirely dead.
        assert phases["blue"] == pytest.approx((1.0, 0.0, 1.0))
        assert row.dead_time == pytest.approx(1.7)

    def test_critical_transfer_is_latest_ending(self):
        report = profile_cycles([_record()])
        [row] = report.cycles
        assert row.critical_transfer == "transfer:green->blue"
        assert row.critical_t == pytest.approx(1.9)

    def test_dead_time_fraction(self):
        report = profile_cycles([_record(0, 0.0, 3.0),
                                 _record(1, 3.0, 6.0)])
        assert report.n_cycles == 2
        assert report.total_time == pytest.approx(6.0)
        assert report.dead_time_fraction == pytest.approx(3.4 / 6.0)

    def test_critical_counts_sorted(self):
        records = [_record(0, 0.0, 3.0), _record(1, 3.0, 6.0)]
        counts = profile_cycles(records).critical_transfer_counts()
        assert counts == {"transfer:green->blue": 2}

    def test_empty_records(self):
        report = profile_cycles([])
        assert report.n_cycles == 0
        assert report.dead_time_fraction == 0.0
        assert report.to_dict()["cycles"] == []


class TestRender:
    def test_render_matches_dict_renderer(self):
        report = profile_cycles([_record()])
        assert report.render() == render_profile(report.to_dict())

    def test_render_contents(self):
        text = profile_cycles([_record()]).render()
        assert "dead-time fraction" in text
        assert "phase red" in text
        assert "transfer:green->blue: 1/1 cycles" in text

    def test_to_dict_shape(self):
        payload = profile_cycles([_record()]).to_dict()
        assert payload["n_cycles"] == 1
        assert set(payload["phases"]) == {"red", "green", "blue"}
        assert payload["critical_transfers"] == \
            {"transfer:green->blue": 1}
        assert payload["cycles"][0]["phases"][0]["color"] == "red"


class TestBoundaryWait:
    def test_legacy_three_tuple_records_accepted(self):
        report = profile_cycles([_record()])
        assert report.recoverable_dead_time == 0.0
        assert report.recoverable_fraction == 0.0

    def test_boundary_wait_summed_and_fractioned(self):
        records = [_record(0, 0.0, 3.0) + (0.5,),
                   _record(1, 3.0, 6.0) + (0.25,)]
        report = profile_cycles(records)
        assert report.cycles[0].boundary_wait == pytest.approx(0.5)
        assert report.recoverable_dead_time == pytest.approx(0.75)
        assert report.recoverable_fraction == pytest.approx(0.75 / 6.0)
        payload = report.to_dict()
        assert payload["recoverable_dead_time"] == pytest.approx(0.75)
        assert payload["cycles"][0]["boundary_wait"] == pytest.approx(0.5)

    def test_render_names_adaptive_clocking(self):
        records = [_record(0, 0.0, 3.0) + (0.5,)]
        text = render_profile(profile_cycles(records).to_dict())
        assert "recoverable (adaptive clocking)" in text

    def test_fixed_run_attributes_recoverable_time(self):
        # End-to-end: a fixed-clock probed run reports how much tail the
        # adaptive settling event would have reclaimed.
        from repro.apps.filters import moving_average
        from repro.core.machine import SynchronousMachine
        from repro.waves.probe import WaveformProbe

        probe = WaveformProbe()
        machine = SynchronousMachine(moving_average(2), probe=probe)
        machine.run({"x": [8.0, 4.0, 6.0, 2.0]})
        report = profile_cycles(probe.cycle_records)
        assert report.recoverable_dead_time > 0.0
        assert 0.0 < report.recoverable_fraction < 1.0
