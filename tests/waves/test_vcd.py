"""Tests for the deterministic VCD exporter."""

import pytest

from repro.waves import Waveform, render_vcd, write_vcd
from repro.waves.vcd import TICKS_PER_UNIT, identifier
from repro.waves.waveform import WaveError


def _demo_waveform() -> Waveform:
    wave = Waveform()
    wave.record("b0", 0.0, 0, kind="bit")
    wave.record("value", 0.0, 0, kind="int", width=3)
    wave.record("level", 0.0, 2.5, kind="real")
    wave.record("phase", 0.0, "red", kind="state")
    wave.record("b0", 0.1, 1)
    wave.record("value", 0.1, 5)
    wave.record("phase", 0.1, "green", kind="state")
    wave.record("level", 0.2, 1.25)
    return wave


class TestIdentifier:
    def test_base94_sequence(self):
        assert identifier(0) == "!"
        assert identifier(1) == '"'
        assert identifier(93) == "~"
        assert identifier(94) == "!!"

    def test_negative_rejected(self):
        with pytest.raises(WaveError):
            identifier(-1)


class TestRender:
    def test_header_and_declarations(self):
        text = render_vcd(_demo_waveform())
        assert text.startswith(
            "$comment repro logic-analyzer waveform (deterministic) "
            "$end\n$timescale 1 us $end\n")
        assert "$scope module repro $end" in text
        assert "$var wire 1 ! b0 $end" in text
        assert '$var wire 3 " value $end' in text
        assert "$var real 64 # level $end" in text
        assert "$var string 1 $ phase $end" in text
        # No dates or hostnames anywhere (determinism).
        assert "$date" not in text

    def test_tick0_changes_fold_into_dumpvars(self):
        text = render_vcd(_demo_waveform())
        dumpvars = text.split("$dumpvars\n")[1].split("$end")[0]
        assert dumpvars.splitlines() == ["0!", 'b0 "', "r2.5 #",
                                         "sred $"]

    def test_change_blocks(self):
        text = render_vcd(_demo_waveform())
        tick = round(0.1 * TICKS_PER_UNIT)
        block = text.split(f"#{tick}\n")[1]
        assert block.splitlines()[:3] == ["1!", 'b101 "', "sgreen $"]
        assert f"#{round(0.2 * TICKS_PER_UNIT)}\nr1.25 #" in text

    def test_undumped_signals_start_unknown(self):
        wave = Waveform()
        wave.declare("b", "bit")
        wave.declare("n", "int", width=4)
        wave.declare("r", "real")
        wave.declare("s", "state")
        wave.record("b", 1.0, 1)
        text = render_vcd(wave)
        dumpvars = text.split("$dumpvars\n")[1].split("$end")[0]
        assert dumpvars.splitlines() == ["x!", 'bx "', "r0.0 #",
                                         "s? $"]

    def test_state_whitespace_sanitised(self):
        wave = Waveform()
        wave.record("s", 0.0, "two words", kind="state")
        assert "stwo_words !" in render_vcd(wave)

    def test_negative_int_rejected(self):
        wave = Waveform()
        wave.record("n", 0.0, -1, kind="int")
        with pytest.raises(WaveError, match="unsigned"):
            render_vcd(wave)

    def test_byte_identical_across_renders(self):
        assert render_vcd(_demo_waveform()) == \
            render_vcd(_demo_waveform())

    def test_empty_waveform_still_valid(self):
        text = render_vcd(Waveform())
        assert "$enddefinitions $end" in text
        assert text.rstrip().endswith("#1")


class TestWrite:
    def test_writes_ascii_file(self, tmp_path):
        path = write_vcd(_demo_waveform(), tmp_path / "w.vcd")
        assert path.read_text(encoding="ascii") == \
            render_vcd(_demo_waveform())

    def test_unwritable_path(self, tmp_path):
        with pytest.raises(WaveError, match="cannot write"):
            write_vcd(Waveform(), tmp_path / "no-dir" / "w.vcd")
