"""Tests for the waveform probe and its wiring through the drivers."""

import tracemalloc

import pytest

from repro.apps.filters import moving_average
from repro.core.machine import SynchronousMachine
from repro.core.stochastic_machine import StochasticMachine
from repro.digital.counter import BinaryCounter
from repro.digital.fsm import parity_machine
from repro.faults.models import ClockGlitch, FaultPlan
from repro.obs import MemorySink, Tracer
from repro.obs.records import CycleSpan
from repro.waves import (NULL_PROBE, WaveformProbe, build_engine,
                         ensure_probe, profile_cycles, signal_key)


class TestSignalKey:
    def test_identifiers_pass_through(self):
        assert signal_key("ctr_b0") == "ctr_b0"

    def test_punctuation_mapped(self):
        assert signal_key("transfer:red->green") == \
            "transfer_red__green"

    def test_leading_digit_prefixed(self):
        assert signal_key("0bit") == "_0bit"
        assert signal_key("") == "_"


class TestProbe:
    def test_record_feeds_engine_on_changes_only(self):
        engine = build_engine([{"type": "stable_during",
                                "signal": "reg", "phase": "green"}])
        probe = WaveformProbe(assertions=engine)
        probe.record("phase", 0.0, "green", kind="state")
        probe.record("reg", 0.1, 1.0, kind="real")
        probe.record("reg", 0.2, 1.0)  # repeat: not a change
        probe.record("reg", 0.3, 2.0)  # second change: violation
        [violation] = probe.finish()
        assert violation.code == "REPRO-A902"

    def test_observe_cycle_charts_phase_channel(self):
        probe = WaveformProbe()
        span = CycleSpan(0, 0.0, 3.0)
        phases = [("red", 0.0, 1.0), ("green", 1.0, 2.0),
                  ("blue", 2.0, 3.0)]
        probe.observe_cycle(span, phases, [], boundary_wait=0.25)
        assert probe.waveform["phase"].values == ["red", "green",
                                                 "blue"]
        assert probe.cycle_records == [(span, phases, [], 0.25)]

    def test_finish_without_engine(self):
        probe = WaveformProbe()
        assert probe.finish() == []
        assert probe.diagnostics() == []

    def test_ensure_probe(self):
        probe = WaveformProbe()
        assert ensure_probe(probe) is probe
        assert ensure_probe(None) is NULL_PROBE


class TestNullProbe:
    def test_disabled_and_inert(self):
        assert NULL_PROBE.enabled is False
        NULL_PROBE.declare("b", "bit")
        NULL_PROBE.record("b", 0.0, 1)
        NULL_PROBE.boundary(0, 0.0, {})
        NULL_PROBE.observe_cycle(None, [], [])
        assert NULL_PROBE.finish() == []
        assert NULL_PROBE.diagnostics() == []
        assert NULL_PROBE.cycle_records == ()

    def test_no_allocation_when_disabled(self):
        """The disabled probe path must not allocate (PR 2 standard)."""
        probe = NULL_PROBE
        span = CycleSpan(0, 0.0, 1.0)

        def hot_loop():
            for i in range(200):
                if probe.enabled:
                    probe.record("b", float(i), 1)
                    probe.boundary(i, float(i), {})
                    probe.observe_cycle(span, (), ())

        hot_loop()  # warm up any lazy interpreter state
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            hot_loop()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0


class TestMachineWiring:
    @pytest.fixture(scope="class")
    def probed_run(self):
        probe = WaveformProbe()
        tracer = Tracer(MemorySink())
        machine = SynchronousMachine(moving_average(2), probe=probe,
                                     tracer=tracer)
        run = machine.run({"x": [8.0, 4.0, 6.0]})
        return probe, tracer, run

    def test_register_and_clock_lanes_recorded(self, probed_run):
        probe, _tracer, run = probed_run
        wave = probe.waveform
        assert "clock_total" in wave
        assert any(name.startswith("reg_") for name in wave.signals)
        assert "phase" in wave
        assert wave["phase"].values[:3] == ["red", "green", "blue"]
        assert len(probe.cycle_records) == run.n_cycles

    def test_profiler_attribution_matches_trace_spans(self, probed_run):
        """The critical transfer per cycle must be the transfer span
        with the latest end time in the trace -- the probe and the
        tracer consume the same decomposition, so they can never
        disagree."""
        probe, tracer, _run = probed_run
        report = profile_cycles(probe.cycle_records)
        spans = [d for d in tracer.sink.dicts()
                 if d["type"] == "span" and
                 d["name"].startswith("transfer:")]
        assert report.n_cycles > 0
        for row in report.cycles:
            cycle_spans = [s for s in spans
                           if s["args"].get("cycle") == row.cycle]
            assert cycle_spans, f"no transfer spans for cycle {row.cycle}"
            latest = max(cycle_spans,
                         key=lambda s: (s["t1"], s["name"]))
            assert row.critical_transfer == latest["name"]

    def test_dead_time_fraction_in_unit_interval(self, probed_run):
        probe, _tracer, _run = probed_run
        report = profile_cycles(probe.cycle_records)
        assert 0.0 < report.dead_time_fraction < 1.0

    def test_assertion_violations_join_diagnostics(self):
        engine = build_engine([{"type": "invariant",
                                "expr": "clock_total < 0",
                                "name": "impossible"}])
        machine = SynchronousMachine(moving_average(2),
                                     probe=WaveformProbe(
                                         assertions=engine))
        run = machine.run({"x": [8.0, 4.0]})
        codes = {d.code for d in run.diagnostics}
        assert "REPRO-A901" in codes


class TestGlitchDetection:
    def test_assertion_fires_the_cycle_after_the_glitch(self):
        """A clock glitch surfaces as a REPRO-A9xx violation *during*
        the run -- at the first boundary sampled after the fault --
        long before any end-of-run scorer compares outputs."""
        # Clean boundaries read clock_total >= 19.86 (mass 20 minus
        # in-flight transfer mass); a recoverable 5% glitch dips the
        # post-fault boundary to ~18.9, so 19.5 separates cleanly.
        engine = build_engine([{"type": "invariant",
                                "expr": "clock_total >= 19.5",
                                "name": "clock-mass-held"}])
        plan = FaultPlan([ClockGlitch(cycle=1, fraction=0.05)], seed=3)
        machine = SynchronousMachine(moving_average(2), faults=plan,
                                     probe=WaveformProbe(
                                         assertions=engine))
        run = machine.run({"x": [8.0, 4.0, 6.0, 2.0]})
        violations = [d for d in run.diagnostics
                      if d.code == "REPRO-A901"]
        assert violations, "glitch did not trip the clock invariant"
        # The probe samples the pre-replenishment state, so the glitch
        # injected at boundary 1 is seen at boundary 2's sample --
        # strictly before the last cycle (where output scoring lives).
        assert violations[0].cycle == 2
        assert violations[0].cycle < run.n_cycles - 1

    def test_clean_run_passes_the_same_invariant(self):
        engine = build_engine([{"type": "invariant",
                                "expr": "clock_total >= 19.5"}])
        machine = SynchronousMachine(moving_average(2),
                                     probe=WaveformProbe(
                                         assertions=engine))
        run = machine.run({"x": [8.0, 4.0, 6.0, 2.0]})
        assert not [d for d in run.diagnostics
                    if d.code.startswith("REPRO-A")]


class TestCounterWiring:
    def test_bit_value_and_residual_lanes(self):
        probe = WaveformProbe()
        counter = BinaryCounter(2)
        run = counter.count(5, seed=0, probe=probe)
        wave = probe.waveform
        assert "ctr_value" in wave and "ctr_residual" in wave
        bit_lanes = [n for n in wave.signals
                     if wave[n].kind == "bit"]
        assert len(bit_lanes) == 2
        assert wave["ctr_value"].width == 2
        # The value lane replays the counted sequence.
        values = [wave["ctr_value"].value_at(i * (100.0 / 1000.0))
                  for i in range(len(run.values))]
        assert values == run.values

    def test_counter_assertions_see_value_and_overflow(self):
        engine = build_engine([{"type": "eventually_within",
                                "when": "cycle >= 1",
                                "holds": "overflow >= 1",
                                "cycles": 8}])
        counter = BinaryCounter(2)
        counter.count(6, seed=0,
                      probe=WaveformProbe(assertions=engine))
        assert engine.finish() == []


class TestFsmWiring:
    def test_state_lane_mirrors_trace(self):
        probe = WaveformProbe()
        fsm = parity_machine()
        run = fsm.run(list("1101"), seed=0, probe=probe)
        track = probe.waveform["parity_state"]
        assert track.kind == "state"
        # The change-list compresses repeats; the dense trace replayed
        # through value_at matches the recorded run.
        settle = 100.0 / 1000.0
        replay = [track.value_at(i * settle)
                  for i in range(len(run.trace))]
        assert replay == list(run.trace)


class TestStochasticWiring:
    def test_boundary_lanes_recorded(self):
        probe = WaveformProbe()
        machine = StochasticMachine(moving_average(2), seed=7,
                                    probe=probe)
        run = machine.run({"x": [8.0, 4.0]})
        assert "clock_total" in probe.waveform
        assert len(probe.cycle_records) == run.n_cycles
        assert any(name.startswith("reg_")
                   for name in probe.waveform.signals)
