"""CLI tests for the waves layer: determinism, golden VCD, assertions.

The golden file ``tests/waves/golden/counter.vcd`` is also diffed by
the CI waves-smoke job; regenerate it with::

    python -m repro counter --bits 2 --pulses 6 --seed 0 \
        --vcd tests/waves/golden/counter.vcd
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "counter.vcd"
ASSERTS = (Path(__file__).parents[2] / "examples" / "waves"
           / "counter_asserts.json")


@pytest.fixture
def failing_asserts(tmp_path):
    path = tmp_path / "failing.json"
    path.write_text(json.dumps({"assertions": [
        {"type": "invariant", "name": "impossible",
         "expr": "value < 2"}]}))
    return str(path)


class TestCounterVcd:
    def test_matches_committed_golden(self, tmp_path):
        vcd = tmp_path / "counter.vcd"
        assert main(["counter", "--bits", "2", "--pulses", "6",
                     "--seed", "0", "--vcd", str(vcd)]) == 0
        assert vcd.read_bytes() == GOLDEN.read_bytes()

    def test_byte_identical_across_runs(self, tmp_path):
        first, second = tmp_path / "a.vcd", tmp_path / "b.vcd"
        for path in (first, second):
            assert main(["counter", "--bits", "2", "--pulses", "6",
                         "--seed", "0", "--vcd", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_example_assertions_pass(self, tmp_path, capsys):
        assert main(["counter", "--bits", "2", "--pulses", "6",
                     "--seed", "0", "--assert-file",
                     str(ASSERTS)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_violation_exits_nonzero(self, failing_asserts, capsys):
        code = main(["counter", "--bits", "2", "--pulses", "6",
                     "--seed", "0", "--assert-file", failing_asserts])
        assert code == 1
        err = capsys.readouterr().err
        assert "REPRO-A901" in err and "impossible" in err


class TestFsmCommand:
    def test_runs_and_dumps(self, tmp_path, capsys):
        vcd = tmp_path / "fsm.vcd"
        assert main(["fsm", "--machine", "detector", "--pattern",
                     "101", "--word", "1101011",
                     "--vcd", str(vcd)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "p2" in out
        assert "output 'hit': 2 emission(s)" in out
        text = vcd.read_text()
        assert "$var string 1 ! detector_state $end" in text


class TestWavesCommand:
    def test_report_identical_across_worker_counts(self, tmp_path):
        """The multi-trial report (and kept VCD) is a pure function of
        the root seed -- the property the CI smoke job pins."""
        reports = []
        for workers, name in ((1, "w1"), (2, "w2")):
            path = tmp_path / f"{name}.json"
            assert main(["waves", "--scenario", "counter",
                         "--trials", "3", "--seed", "7",
                         "--workers", str(workers),
                         "--json", str(path)]) == 0
            reports.append(path.read_bytes())
        assert reports[0] == reports[1]

    def test_ma_scenario_emits_profile(self, tmp_path, capsys):
        vcd = tmp_path / "ma.vcd"
        assert main(["waves", "--scenario", "ma",
                     "--input", "8,4,6,2", "--vcd", str(vcd)]) == 0
        out = capsys.readouterr().out
        assert "cycle profile:" in out
        assert "dead-time fraction" in out
        assert "critical transfers:" in out
        assert vcd.exists()

    def test_assertion_failure_exits_nonzero(self, failing_asserts,
                                             capsys):
        code = main(["waves", "--scenario", "counter", "--bits", "2",
                     "--assert-file", failing_asserts])
        assert code == 1
        assert "REPRO-A901" in capsys.readouterr().err

    def test_monitor_config_threads_through(self, tmp_path, capsys):
        config = tmp_path / "monitor.json"
        config.write_text('{"boundary_residual_warn": 1e-9}')
        assert main(["waves", "--scenario", "ma", "--input", "8,4",
                     "--monitor-config", str(config)]) == 0
        # The tightened threshold must reach the machine's monitor.
        assert "REPRO-R104" in capsys.readouterr().out

    def test_unknown_monitor_key_is_an_error(self, tmp_path, capsys):
        config = tmp_path / "monitor.json"
        config.write_text('{"no_such_threshold": 1.0}')
        assert main(["waves", "--scenario", "ma",
                     "--monitor-config", str(config)]) == 1
        assert "no_such_threshold" in capsys.readouterr().err


class TestSimulateVcd:
    def test_posthoc_waveform_and_assertions(self, tmp_path, capsys):
        crn = tmp_path / "demo.crn"
        crn.write_text("X -> Y @ fast\ninit X = 10\n")
        asserts = tmp_path / "asserts.json"
        asserts.write_text(json.dumps({"assertions": [
            {"type": "invariant", "expr": "X + Y >= 9.9"}]}))
        vcd = tmp_path / "sim.vcd"
        assert main(["simulate", str(crn), "--t", "2",
                     "--vcd", str(vcd), "--assert-file",
                     str(asserts)]) == 0
        assert "$var real 64" in vcd.read_text()
        assert "clean" in capsys.readouterr().err
