"""Tests for the change-list waveform data model."""

import json

import pytest

from repro.crn.parser import parse_network
from repro.crn.simulation import simulate
from repro.waves import (WaveError, Waveform, waveform_from_trajectory,
                         write_waveform_jsonl)


class TestSignalTrack:
    def test_repeats_are_not_stored(self):
        wave = Waveform()
        wave.declare("b", "bit")
        assert wave.record("b", 0.0, 0) is True
        assert wave.record("b", 1.0, 0) is False
        assert wave.record("b", 2.0, 1) is True
        assert wave["b"].times == [0.0, 2.0]
        assert wave["b"].values == [0, 1]

    def test_same_time_last_write_wins(self):
        wave = Waveform()
        wave.record("n", 0.0, 3, kind="int")
        wave.record("n", 0.0, 5)
        assert wave["n"].values == [5]
        assert wave["n"].n_changes == 1

    def test_time_must_not_go_backwards(self):
        wave = Waveform()
        wave.record("b", 1.0, 1, kind="bit")
        with pytest.raises(WaveError, match="backwards"):
            wave.record("b", 0.5, 0)

    def test_bit_values_checked(self):
        wave = Waveform()
        wave.declare("b", "bit")
        wave.record("b", 0.0, True)  # bool coerces to int
        assert wave["b"].values == [1]
        with pytest.raises(WaveError, match="bit value"):
            wave.record("b", 1.0, 7)

    def test_x_is_a_valid_bit(self):
        wave = Waveform()
        wave.record("b", 0.0, "x", kind="bit")
        assert wave["b"].values == ["x"]

    def test_value_at(self):
        wave = Waveform()
        wave.record("n", 0.0, 1, kind="int")
        wave.record("n", 2.0, 2)
        track = wave["n"]
        assert track.value_at(-1.0) is None
        assert track.value_at(0.5) == 1
        assert track.value_at(2.0) == 2

    def test_unknown_kind(self):
        with pytest.raises(WaveError, match="unknown signal kind"):
            Waveform().declare("b", "analogue")


class TestWaveform:
    def test_redeclare_same_shape_is_noop(self):
        wave = Waveform()
        first = wave.declare("n", "int", width=4)
        assert wave.declare("n", "int", width=4) is first

    def test_redeclare_different_shape_fails(self):
        wave = Waveform()
        wave.declare("n", "int", width=4)
        with pytest.raises(WaveError, match="re-declared"):
            wave.declare("n", "int", width=8)

    def test_record_without_declaration_needs_kind(self):
        with pytest.raises(WaveError, match="never declared"):
            Waveform().record("b", 0.0, 1)

    def test_changes_are_time_ordered_with_declaration_tiebreak(self):
        wave = Waveform()
        wave.record("late", 0.0, 1, kind="bit")
        wave.record("early", 0.0, 0, kind="bit")
        wave.record("late", 1.0, 0)
        order = [(c.signal, c.t) for c in wave.changes()]
        # Same-tick changes keep declaration order ("late" first).
        assert order == [("late", 0.0), ("early", 0.0), ("late", 1.0)]

    def test_counts_and_final_time(self):
        wave = Waveform()
        wave.record("a", 0.0, 1, kind="bit")
        wave.record("b", 3.5, "red", kind="state")
        assert wave.n_signals == 2
        assert wave.n_changes == 2
        assert wave.t_final == 3.5

    def test_missing_signal_lookup(self):
        with pytest.raises(WaveError, match="no signal"):
            Waveform()["ghost"]


class TestFromTrajectory:
    @pytest.fixture(scope="class")
    def trajectory(self):
        network = parse_network("X -> Y @ fast\ninit X = 10\n")
        return simulate(network, 2.0, n_samples=100)

    def test_species_become_real_lanes(self, trajectory):
        wave = waveform_from_trajectory(trajectory)
        assert set(wave.signals) == set(trajectory.names)
        assert all(track.kind == "real"
                   for track in wave.signals.values())

    def test_subsampling_keeps_last_row(self, trajectory):
        wave = waveform_from_trajectory(trajectory, max_samples=8)
        track = wave["X"]
        # The last row is always sampled; the change-list then drops it
        # when the signal has plateaued, but the held value must match.
        t_final = float(trajectory.times[-1])
        assert track.value_at(t_final) == pytest.approx(
            float(trajectory.column("X")[-1]))
        # 8 sample rows plus the final one, compressed further.
        assert track.n_changes <= 9

    def test_unknown_species_rejected(self, trajectory):
        with pytest.raises(WaveError, match="not in trajectory"):
            waveform_from_trajectory(trajectory, names=["GHOST"])


class TestJsonlExport:
    def test_wave_records_round_trip(self, tmp_path):
        from repro.obs.report import load_records

        wave = Waveform()
        wave.record("b", 0.0, 1, kind="bit")
        wave.record("s", 0.5, "red", kind="state")
        path = tmp_path / "wave.jsonl"
        write_waveform_jsonl(wave, path)
        records = load_records(path)
        assert [r["type"] for r in records] == ["wave", "wave"]
        assert records[0] == {"type": "wave", "signal": "b",
                              "kind": "bit", "t": 0.0, "value": 1}
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)
