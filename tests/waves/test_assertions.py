"""Tests for the SVA-lite temporal assertion engine."""

import json

import pytest

from repro.waves import (AssertionSpecError, build_assertion, build_engine,
                         load_assertion_specs, load_assertions)
from repro.waves.assertions import MAX_VIOLATIONS_PER_ASSERTION


def _boundaries(engine, samples):
    for cycle, values in enumerate(samples):
        engine.on_boundary(cycle, float(cycle), values)
    return engine.finish()


class TestInvariant:
    def test_clean_run(self):
        engine = build_engine([{"type": "invariant", "expr": "x >= 0"}])
        assert _boundaries(engine, [{"x": 0}, {"x": 3}]) == []

    def test_violation_carries_code_and_cycle(self):
        engine = build_engine([{"type": "invariant", "expr": "x < 2",
                                "name": "small"}])
        [violation] = _boundaries(engine, [{"x": 1}, {"x": 5}])
        assert violation.code == "REPRO-A901"
        assert violation.severity == "error"
        assert violation.cycle == 1
        assert "small" in violation.message

    def test_mutes_after_cap(self):
        engine = build_engine([{"type": "invariant", "expr": "False"}])
        violations = _boundaries(
            engine, [{}] * (MAX_VIOLATIONS_PER_ASSERTION + 5))
        assert len(violations) == MAX_VIOLATIONS_PER_ASSERTION

    def test_unknown_signal_names_the_namespace(self):
        engine = build_engine([{"type": "invariant", "expr": "ghost > 0"}])
        with pytest.raises(AssertionSpecError, match="sampled signals"):
            engine.on_boundary(0, 0.0, {"x": 1})

    def test_builtin_helpers_available(self):
        engine = build_engine(
            [{"type": "invariant", "expr": "abs(x - 2) <= max(1, 0)"}])
        assert _boundaries(engine, [{"x": 1.5}]) == []


class TestStableDuring:
    def test_change_inside_phase_fires(self):
        engine = build_engine([{"type": "stable_during", "signal": "reg",
                                "phase": "green"}])
        engine.on_change(0.0, "phase", "red")
        engine.on_change(0.1, "reg", 1.0)
        engine.on_change(0.3, "phase", "green")
        engine.on_change(0.4, "reg", 2.0)  # establishes the value
        engine.on_change(0.5, "reg", 3.0)  # violation
        [violation] = engine.finish()
        assert violation.code == "REPRO-A902"
        assert "'reg'" in violation.message

    def test_changes_outside_phase_are_fine(self):
        engine = build_engine([{"type": "stable_during", "signal": "reg",
                                "phase": "green"}])
        engine.on_change(0.0, "phase", "red")
        engine.on_change(0.1, "reg", 1.0)
        engine.on_change(0.2, "reg", 2.0)
        assert engine.finish() == []


class TestImpliesNextCycle:
    def test_consequent_checked_one_cycle_later(self):
        engine = build_engine([{"type": "implies_next_cycle",
                                "if": "x == 1", "then": "x == 2"}])
        [violation] = _boundaries(
            engine, [{"x": 1}, {"x": 7}, {"x": 1}])
        assert violation.code == "REPRO-A903"
        assert violation.cycle == 1

    def test_satisfied_implication(self):
        engine = build_engine([{"type": "implies_next_cycle",
                                "if": "x == 1", "then": "x == 2"}])
        assert _boundaries(engine, [{"x": 1}, {"x": 2}, {"x": 9}]) == []


class TestEventuallyWithin:
    def test_fires_when_deadline_passes(self):
        engine = build_engine([{"type": "eventually_within",
                                "when": "go == 1", "holds": "done == 1",
                                "cycles": 2}])
        [violation] = _boundaries(engine, [
            {"go": 1, "done": 0}, {"go": 0, "done": 0},
            {"go": 0, "done": 0}, {"go": 0, "done": 0}])
        assert violation.code == "REPRO-A904"
        assert "armed at cycle 0" in violation.message

    def test_discharged_in_time(self):
        engine = build_engine([{"type": "eventually_within",
                                "when": "go == 1", "holds": "done == 1",
                                "cycles": 2}])
        assert _boundaries(engine, [
            {"go": 1, "done": 0}, {"go": 0, "done": 1}]) == []

    def test_already_true_does_not_arm(self):
        engine = build_engine([{"type": "eventually_within",
                                "when": "go == 1", "holds": "done == 1",
                                "cycles": 1}])
        assert _boundaries(engine, [{"go": 1, "done": 1}]) == []

    def test_run_end_with_pending_obligation(self):
        engine = build_engine([{"type": "eventually_within",
                                "when": "go == 1", "holds": "done == 1",
                                "cycles": 10}])
        [violation] = _boundaries(engine, [{"go": 1, "done": 0}])
        assert "still pending" in violation.message

    def test_needs_positive_bound(self):
        with pytest.raises(AssertionSpecError, match="cycles >= 1"):
            build_assertion({"type": "eventually_within", "when": "x",
                             "holds": "x", "cycles": 0})


class TestSequence:
    def test_broken_sequence_fires(self):
        engine = build_engine([{"type": "sequence",
                                "steps": ["x == 1", "x == 2",
                                          "x == 3"]}])
        [violation] = _boundaries(
            engine, [{"x": 1}, {"x": 2}, {"x": 9}])
        assert violation.code == "REPRO-A905"
        assert "step 2" in violation.message

    def test_complete_sequence_is_clean(self):
        engine = build_engine([{"type": "sequence",
                                "steps": ["x == 1", "x == 2"]}])
        assert _boundaries(engine, [{"x": 1}, {"x": 2}]) == []

    def test_run_end_mid_sequence(self):
        engine = build_engine([{"type": "sequence",
                                "steps": ["x == 1", "x == 2"]}])
        [violation] = _boundaries(engine, [{"x": 1}])
        assert "mid-sequence" in violation.message

    def test_needs_two_steps(self):
        with pytest.raises(AssertionSpecError, match="two steps"):
            build_assertion({"type": "sequence", "steps": ["x"]})


class TestSpecs:
    def test_unknown_type(self):
        with pytest.raises(AssertionSpecError, match="unknown assertion"):
            build_assertion({"type": "never_fails"})

    def test_missing_field_named(self):
        with pytest.raises(AssertionSpecError, match="'expr'"):
            build_assertion({"type": "invariant"})

    def test_syntax_error_reported(self):
        with pytest.raises(AssertionSpecError, match="not a valid"):
            build_assertion({"type": "invariant", "expr": "x ==="})

    def test_non_dict_spec(self):
        with pytest.raises(AssertionSpecError, match="must be an object"):
            build_assertion("invariant")


class TestLoaders:
    def test_load_specs_and_engine(self, tmp_path):
        path = tmp_path / "asserts.json"
        path.write_text(json.dumps({"assertions": [
            {"type": "invariant", "expr": "x >= 0"}]}))
        specs = load_assertion_specs(path)
        assert specs == [{"type": "invariant", "expr": "x >= 0"}]
        engine = load_assertions(path)
        assert len(engine) == 1

    def test_bare_list_accepted(self, tmp_path):
        path = tmp_path / "asserts.json"
        path.write_text(json.dumps(
            [{"type": "invariant", "expr": "x >= 0"}]))
        assert len(load_assertions(path)) == 1

    def test_empty_list_rejected(self, tmp_path):
        path = tmp_path / "asserts.json"
        path.write_text('{"assertions": []}')
        with pytest.raises(AssertionSpecError, match="at least"):
            load_assertions(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "asserts.json"
        path.write_text("{nope")
        with pytest.raises(AssertionSpecError, match="not valid JSON"):
            load_assertions(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(AssertionSpecError, match="cannot read"):
            load_assertions(tmp_path / "absent.json")

    def test_malformed_spec_fails_at_load(self, tmp_path):
        path = tmp_path / "asserts.json"
        path.write_text(json.dumps({"assertions": [
            {"type": "invariant"}]}))
        with pytest.raises(AssertionSpecError, match="'expr'"):
            load_assertion_specs(path)


class TestEngine:
    def test_finish_is_idempotent(self):
        engine = build_engine([{"type": "sequence",
                                "steps": ["x == 1", "x == 2"]}])
        engine.on_boundary(0, 0.0, {"x": 1})
        first = engine.finish()
        assert engine.finish() == first
        assert len(first) == 1
