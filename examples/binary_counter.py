"""Digital sequential logic in chemistry: a binary counter and an FSM.

A 3-bit molecular ripple counter counts stimulus pulses (e.g. how many
times an inducer crossed a threshold), and a molecular finite-state
machine watches a binary event stream for the pattern '101'.  Both run
under the exact stochastic semantics -- single-molecule digital logic.

Run:  python examples/binary_counter.py
"""

import random

from repro.digital import BinaryCounter, sequence_detector
from repro.reporting import markdown_table, plot_samples


def demo_counter() -> None:
    print("=" * 70)
    print("3-bit molecular binary counter (counts modulo 8)")
    print("=" * 70)
    counter = BinaryCounter(3)
    print(counter.network.summary())
    run = counter.count(19, seed=1)
    print(plot_samples({"count": run.values},
                       title="counter value after each pulse"))
    print(f"sequence: {run.values}")
    print(f"overflow (wraps): {run.overflow}")
    run.check(8)
    print("sequence verified: counts 0..7 and wraps exactly\n")


def demo_detector() -> None:
    print("=" * 70)
    print("molecular '101' sequence detector (overlapping matches)")
    print("=" * 70)
    detector = sequence_detector("101")
    print(detector.network.summary())
    rng = random.Random(7)
    word = "".join(rng.choice("01") for _ in range(16))
    run = detector.run(word, seed=2)
    rows = [[i + 1, symbol, state, hit]
            for i, (symbol, state, hit) in enumerate(
                zip(word, run.trace[1:], run.emissions("hit")))]
    print(markdown_table(["step", "symbol", "state after", "hit"], rows))
    expected = sum(1 for i in range(len(word) - 2)
                   if word[i:i + 3] == "101")
    total = run.output_counts["hit"][-1]
    print(f"\nword = {word}")
    print(f"hits detected = {total}, expected = {expected}")
    assert total == expected


if __name__ == "__main__":
    demo_counter()
    demo_detector()
