"""Quickstart: molecular reactions as a computing substrate.

Runs in three short acts:

1. a raw chemical reaction network, simulated with mass-action kinetics;
2. the molecular clock -- sustained three-phase oscillation;
3. a clocked moving-average filter: a synthesized reaction network whose
   input/output behaviour matches the discrete-time filter exactly.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import parse_network, simulate
from repro.core import SignalFlowGraph, SynchronousMachine, build_clock
from repro.reporting import plot_samples, plot_trajectory


def act_one_raw_crn() -> None:
    print("=" * 70)
    print("Act 1: a chemical reaction network, straight from text")
    print("=" * 70)
    network = parse_network("""
        network: demo
        X + E -> Y + E @ fast     # catalysed conversion
        Y -> Z @ slow
        init X = 10
        init E = 1
    """)
    print(network.summary())
    trajectory = simulate(network, 8.0)
    print(plot_trajectory(trajectory, ["X", "Y", "Z"],
                          title="X -> Y -> Z"))
    print(f"final Z = {trajectory.final('Z'):.3f} (all 10 units arrive)\n")


def act_two_clock() -> None:
    print("=" * 70)
    print("Act 2: the molecular clock (three-phase oscillator)")
    print("=" * 70)
    network, clock, _ = build_clock(mass=20.0)
    trajectory = simulate(network, 12.0, n_samples=1200)
    print(plot_trajectory(trajectory, clock.species_names(),
                          title="C_red / C_green / C_blue"))
    long = simulate(network, 40.0, n_samples=2000)
    print(f"period = {clock.period(long):.3f} slow time units, "
          f"jitter = {clock.period_jitter(long):.4f}\n")


def act_three_filter() -> None:
    print("=" * 70)
    print("Act 3: a clocked molecular filter  y[n] = (x[n] + x[n-1]) / 2")
    print("=" * 70)
    sfg = SignalFlowGraph("ma2")
    x = sfg.input("x")
    delayed = sfg.delay("d1", source=x)
    sfg.output("y", sfg.add(sfg.gain(Fraction(1, 2), x),
                            sfg.gain(Fraction(1, 2), delayed)))

    machine = SynchronousMachine(sfg)
    print(machine.network.summary())
    samples = [10.0, 20.0, 40.0, 0.0, 30.0, 30.0]
    run = machine.run({"x": samples})
    print(plot_samples({"x[n]": samples,
                        "y[n] measured": list(run.outputs["y"][:6]),
                        "y[n] reference": list(run.reference["y"])},
                       title="moving average, molecular vs reference"))
    print(f"max |error| vs exact reference: {run.max_error():.4f}")
    print(f"mean clock cycle: {run.mean_cycle_time:.2f} slow time units")


if __name__ == "__main__":
    act_one_raw_crn()
    act_two_clock()
    act_three_filter()
