"""Self-timed molecular pipelines (the asynchronous companion scheme).

Samples move through a delay pipeline with no clock: the absence
indicators alone order the phases, and the environment injects the next
sample when the previous one has arrived -- a molecular
request/acknowledge handshake.  The demo contrasts the companion-faithful
consuming-indicator protocol with the sharpened catalytic variant.

Run:  python examples/async_handshake.py
"""

from repro.asynchronous import SelfTimedPipeline
from repro.reporting import markdown_table, plot_trajectory

SAMPLES = [20.0, 10.0, 30.0]


def main() -> None:
    rows = []
    for gating in ("consuming", "catalytic"):
        pipeline = SelfTimedPipeline(n=2, gating=gating)
        run = pipeline.run(SAMPLES, record=(gating == "catalytic"))
        rows.append([gating,
                     [round(v, 1) for v in run.arrived],
                     round(run.mean_latency, 2),
                     round(run.max_error(), 3)])
        if run.trajectory is not None:
            print(plot_trajectory(
                run.trajectory, ["X", "R_d1", "R_d2", "Y"],
                title=f"self-timed waves ({gating} gating)"))

    print(markdown_table(
        ["gating", "arrived per wave", "mean latency", "max |error|"],
        rows))
    print("\nThe consuming protocol (the companion's literal reactions) "
          "moves one unit per generated indicator, so its latency is "
          "throughput-limited; the catalytic gate reads the indicator "
          "instead of consuming it and is several times faster.")


if __name__ == "__main__":
    main()
