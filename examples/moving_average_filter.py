"""A molecular moving-average filter smoothing a noisy sensor stream.

The motivating scenario: a molecular sensor produces a noisy sampled
concentration signal; a four-tap moving average implemented *in
chemistry* smooths it before it drives a downstream actuator.  The demo
streams the noisy signal through the synthesized reaction network and
compares with the exact discrete-time filter.

Run:  python examples/moving_average_filter.py
"""

import numpy as np

from repro.apps import moving_average
from repro.core.machine import SynchronousMachine
from repro.reporting import markdown_table, plot_samples


def noisy_sensor_stream(n: int, seed: int = 3) -> list[float]:
    """A drifting baseline plus spiky noise, all non-negative."""
    rng = np.random.default_rng(seed)
    base = 12.0 + 6.0 * np.sin(2 * np.pi * np.arange(n) / 10.0)
    noise = rng.normal(0.0, 2.5, n)
    spikes = (rng.random(n) < 0.2) * rng.uniform(4, 9, n)
    return list(np.round(np.clip(base + noise + spikes, 0.0, None), 1))


def main() -> None:
    samples = noisy_sensor_stream(14)
    design = moving_average(4)
    machine = SynchronousMachine(design)
    print(machine.network.summary())
    print(f"(clock + {len(design.to_matrix().delays)} delay registers, "
          f"all gains exactly 1/4)\n")

    run = machine.run({"x": samples})
    measured = run.outputs["y"][:len(samples)]
    reference = run.reference["y"]

    print(plot_samples({"sensor x[n]": samples,
                        "smoothed y[n]": list(measured)},
                       title="4-tap molecular moving average"))

    rows = [[n, x, float(m), float(r), float(abs(m - r))]
            for n, (x, m, r) in enumerate(zip(samples, measured,
                                              reference))]
    print(markdown_table(["n", "x[n]", "measured", "reference",
                          "|err|"], rows))
    print(f"\nmax |error| = {run.max_error():.4f} quantity units")
    print(f"mean cycle time = {run.mean_cycle_time:.2f} slow time units")

    in_sw = max(samples) - min(samples)
    out_sw = measured[4:].max() - measured[4:].min()
    print(f"input swing {in_sw:.1f} -> output swing {out_sw:.1f} "
          f"(smoothing factor {in_sw / out_sw:.2f}x)")


if __name__ == "__main__":
    main()
