"""Compiling a design to DNA strand displacement (the wet-lab chassis).

Takes the delay-element network, compiles every formal reaction to a
buffered strand-displacement cascade (Soloveichik et al. 2010 style),
prints the structural inventory a lab would have to synthesize, and
verifies that the compiled implementation reproduces the ideal kinetics.

Run:  python examples/dsd_compilation.py  (takes ~1 minute; stiff ODEs)
"""

from repro import SimulationOptions, simulate
from repro.core.analysis import effective_value
from repro.core.memory import build_delay_chain
from repro.dsd import compile_network
from repro.reporting import markdown_table


def main() -> None:
    network, _, _ = build_delay_chain(n=1, initial=20.0)
    print("formal network:", network.summary())
    ideal = effective_value(
        simulate(network, 25.0, n_samples=40), "Y")

    compilation = compile_network(network, c_max=10_000.0)
    print("compiled:", compilation.network.summary())
    print("expansion factor:",
          f"{compilation.expansion_factor:.1f} reactions per formal "
          f"reaction")

    inventory = compilation.inventory
    print("\nstructural inventory:", inventory.summary())
    print("\nexample signal strand:")
    print(" ", inventory.signal_strand_for("X"))
    print("example fuel complex strands:")
    gate = inventory.fuel_complexes[0]
    for strand in gate.strands:
        print(" ", strand)

    trajectory = simulate(
        compilation.network, 25.0,
        options=SimulationOptions(solver="BDF", rtol=1e-5, atol=1e-8,
                                  n_samples=40))
    measured = effective_value(trajectory, "Y")
    rows = [["ideal CRN", ideal],
            ["DSD implementation", measured],
            ["relative deviation", abs(measured - ideal) / ideal],
            ["worst fuel depletion",
             compilation.fuel_depletion(trajectory)]]
    print("\n" + markdown_table(["quantity", "value"], rows))


if __name__ == "__main__":
    main()
