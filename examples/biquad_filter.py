"""A second-order recursive (biquad) filter with signed arithmetic.

Negative filter coefficients force dual-rail (p/n) signal encoding with
fast annihilation -- the full generality of the synthesis flow.  The
demo measures the impulse response and the empirical amplitude gain at
two tone frequencies, comparing against the filter's analytic frequency
response.

Run:  python examples/biquad_filter.py  (takes ~1 minute)
"""

from fractions import Fraction

import numpy as np

from repro.apps import biquad, tone
from repro.baselines import frequency_response, measured_gain_at_period
from repro.core.machine import SynchronousMachine
from repro.reporting import markdown_table, plot_samples

B = (Fraction(1, 4), Fraction(1, 2), Fraction(1, 4))
A = (Fraction(-1, 4), Fraction(1, 8))


def main() -> None:
    design = biquad(*B, *A)
    machine = SynchronousMachine(design)
    print(machine.network.summary())
    print("coefficients: b =", [str(c) for c in B],
          " a =", [str(c) for c in A], "\n")

    impulse = [16.0] + [0.0] * 7
    run = machine.run({"x": impulse})
    n = len(impulse)
    print(plot_samples({"measured h[n]": list(run.outputs["y"][:n]),
                        "reference h[n]": list(run.reference["y"])},
                       title="biquad impulse response (signed rails)"))
    print(f"impulse response max |error| = {run.max_error():.4f}\n")

    rows = []
    for period in (4, 8):
        wave = [round(v, 1) for v in tone(12, period=period,
                                          amplitude=6.0)]
        tone_run = machine.run({"x": wave})
        measured = measured_gain_at_period(
            tone_run.outputs["y"][:len(wave)], np.array(wave), period,
            skip=4)
        omega_index = int(round((2.0 / period) * 63))
        analytic = frequency_response(
            [float(c) for c in B], [float(c) for c in A],
            n_points=64)[omega_index]
        rows.append([f"1/{period}", analytic, measured,
                     abs(measured - analytic)])
    print(markdown_table(["tone frequency", "analytic |H|",
                          "measured gain", "|diff|"], rows))


if __name__ == "__main__":
    main()
