"""A molecular PI controller in closed loop with an external plant.

The chemistry computes the control law; Python simulates the plant (a
leaky tank).  Each sampling period the environment measures the level,
presents the *error* to the reaction network, and applies the network's
output as the actuation -- feedback through the outside world, driven by
the incremental :class:`MachineStepper` API.

    controller (chemistry):  u[n] = Kp e[n] + Ki s[n],  s[n+1] = s[n] + e[n]
    plant (environment):     L[n+1] = L[n] + u[n] - leak * L[n]

The error changes sign when the tank overshoots, so the controller is a
signed (dual-rail) design.

Run:  python examples/closed_loop_control.py  (takes ~1 minute)
"""

from fractions import Fraction

from repro.core import SignalFlowGraph, SynchronousMachine
from repro.reporting import markdown_table, plot_samples

KP = Fraction(1, 2)
KI = Fraction(1, 4)
SETPOINT = 12.0
LEAK = 0.25
N_STEPS = 14


def pi_controller() -> SignalFlowGraph:
    sfg = SignalFlowGraph("pi")
    error = sfg.input("e")
    integral = sfg.delay("s")
    sfg.connect(sfg.add(integral, error), integral)   # s += e
    u = sfg.add(sfg.gain(KP, error), sfg.gain(KI, integral))
    sfg.output("u", u)
    return sfg


def main() -> None:
    # The error changes sign in closed loop even though every
    # coefficient is positive, so force the dual-rail encoding.
    machine = SynchronousMachine(pi_controller(), signed=True)
    print(machine.network.summary())
    print(f"control law: u = {KP} e + {KI} sum(e);  "
          f"plant: L += u - {LEAK} L;  setpoint {SETPOINT}\n")

    stepper = machine.stepper()
    level = 0.0
    levels, errors, actuations = [], [], []
    for _ in range(N_STEPS):
        error = SETPOINT - level
        actuation = stepper.step({"e": error})["u"]
        level = level + actuation - LEAK * level
        levels.append(level)
        errors.append(error)
        actuations.append(actuation)

    print(plot_samples({"tank level": levels,
                        "setpoint": [SETPOINT] * N_STEPS},
                       title="closed-loop step response"))
    rows = [[n, round(e, 3), round(u, 3), round(level_, 3)]
            for n, (e, u, level_) in enumerate(zip(errors, actuations,
                                                   levels))]
    print(markdown_table(["n", "error e[n]", "actuation u[n]",
                          "level L[n+1]"], rows))

    steady = levels[-3:]
    target = SETPOINT
    print(f"\nfinal levels {['%.2f' % v for v in steady]} "
          f"(setpoint {target}): integral action removes the "
          f"steady-state error a pure P controller would leave "
          f"({LEAK * target / (float(KP) + LEAK):.2f} units).")
    assert abs(levels[-1] - target) < 0.5


if __name__ == "__main__":
    main()
