"""Chemical reactions with integer stoichiometry and symbolic rates."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.crn.species import Species, as_species
from repro.errors import NetworkError

SpeciesLike = Species | str


def _normalize_side(side) -> dict[Species, int]:
    """Coerce a reaction side to ``{Species: coefficient}``.

    Accepts ``None`` (empty side), a single species/name, an iterable of
    species/names (duplicates accumulate), or a mapping from species/name
    to coefficient.
    """
    result: Counter[Species] = Counter()
    if side is None:
        return dict(result)
    if isinstance(side, (Species, str)):
        result[as_species(side)] += 1
        return dict(result)
    if isinstance(side, Mapping):
        for key, coeff in side.items():
            coeff = int(coeff)
            if coeff < 0:
                raise NetworkError(f"negative stoichiometry for {key}")
            if coeff:
                result[as_species(key)] += coeff
        return dict(result)
    if isinstance(side, Iterable):
        for item in side:
            result[as_species(item)] += 1
        return dict(result)
    raise NetworkError(f"cannot interpret reaction side: {side!r}")


def _format_side(side: dict[Species, int]) -> str:
    if not side:
        return "0"
    terms = []
    for species in sorted(side, key=lambda s: s.name):
        coeff = side[species]
        terms.append(species.name if coeff == 1 else f"{coeff} {species.name}")
    return " + ".join(terms)


@dataclass(frozen=True)
class Reaction:
    """A single irreversible reaction with mass-action kinetics.

    Parameters
    ----------
    reactants, products:
        either ``{species: coeff}`` mappings, iterables of species (with
        repetition for coefficients), a single species, or ``None`` for the
        empty side (zeroth-order source / degradation sink).
    rate:
        a numeric rate constant or a symbolic category name (``"fast"`` /
        ``"slow"``) resolved at simulation time by a
        :class:`~repro.crn.rates.RateScheme`.
    label:
        optional human-readable tag used in debug output and reports.
    """

    reactants: dict[Species, int]
    products: dict[Species, int]
    rate: float | str = "slow"
    label: str = field(default="", compare=False)

    def __init__(self, reactants, products, rate: float | str = "slow",
                 label: str = ""):
        object.__setattr__(self, "reactants", _normalize_side(reactants))
        object.__setattr__(self, "products", _normalize_side(products))
        if not isinstance(rate, str):
            rate = float(rate)
            if rate < 0:
                raise NetworkError("rate constant must be non-negative")
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "label", label)
        if not self.reactants and not self.products:
            raise NetworkError("reaction with both sides empty")

    # -- structural queries -------------------------------------------------

    @property
    def order(self) -> int:
        """Total molecularity of the reactant side (0, 1, 2, ...)."""
        return sum(self.reactants.values())

    @property
    def species(self) -> set[Species]:
        """All species appearing on either side."""
        return set(self.reactants) | set(self.products)

    def net_change(self) -> dict[Species, int]:
        """Net stoichiometric change per firing (products - reactants)."""
        delta: Counter[Species] = Counter()
        for species, coeff in self.products.items():
            delta[species] += coeff
        for species, coeff in self.reactants.items():
            delta[species] -= coeff
        return {s: c for s, c in delta.items() if c}

    def is_catalytic_in(self, species: SpeciesLike) -> bool:
        """True if ``species`` appears equally on both sides."""
        species = as_species(species)
        return (self.reactants.get(species, 0) ==
                self.products.get(species, 0) != 0)

    def conserves_mass_of(self, group: Iterable[SpeciesLike]) -> bool:
        """True if total quantity over ``group`` is unchanged by a firing."""
        members = {as_species(s) for s in group}
        delta = self.net_change()
        return sum(c for s, c in delta.items() if s in members) == 0

    # -- rendering ----------------------------------------------------------

    def __str__(self) -> str:
        rate = self.rate if isinstance(self.rate, str) else f"{self.rate:g}"
        text = (f"{_format_side(self.reactants)} -> "
                f"{_format_side(self.products)} @ {rate}")
        if self.label:
            text = f"{text}  # {self.label}"
        return text

    def __hash__(self) -> int:
        return hash((frozenset(self.reactants.items()),
                     frozenset(self.products.items()), self.rate))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Reaction):
            return NotImplemented
        return (self.reactants == other.reactants
                and self.products == other.products
                and self.rate == other.rate)

    def relabeled(self, label: str) -> "Reaction":
        return Reaction(self.reactants, self.products, self.rate, label)

    def with_rate(self, rate: float | str) -> "Reaction":
        return Reaction(self.reactants, self.products, rate, self.label)


def reversible(reactants, products, forward: float | str,
               backward: float | str, label: str = "") -> list[Reaction]:
    """Build the pair of reactions for a reversible transformation.

    The paper's positive-feedback constructs use reversible dimerisation
    ``2 G_i <-> I_G_i`` with a slow forward and fast backward rate; this
    helper keeps both directions textually adjacent.
    """
    fwd = Reaction(reactants, products, forward,
                   label=f"{label} (fwd)" if label else "")
    bwd = Reaction(products, reactants, backward,
                   label=f"{label} (bwd)" if label else "")
    return [fwd, bwd]
