"""Chemical reaction network container.

A :class:`Network` is an ordered registry of species, a list of reactions,
and a set of initial quantities.  Builders throughout the library (clock,
delay elements, synthesized circuits, DSD compilation) all produce plain
``Network`` objects, so every design can be simulated, analysed, merged,
printed and parsed with the same machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.crn.reaction import Reaction, SpeciesLike
from repro.crn.species import Species, as_species
from repro.errors import NetworkError


class Network:
    """A chemical reaction network with initial conditions."""

    def __init__(self, name: str = "crn"):
        self.name = name
        self._species: dict[str, Species] = {}
        self._order: list[str] = []
        self.reactions: list[Reaction] = []
        self._initial: dict[str, float] = {}
        #: Optional source spans for diagnostics, populated by the parser:
        #: ``("reaction", index) -> line`` and ``("species", name) -> line``.
        self.provenance: dict[tuple[str, object], int] = {}

    # -- species registry ---------------------------------------------------

    @property
    def species(self) -> list[Species]:
        """Species in registration order."""
        return [self._species[name] for name in self._order]

    @property
    def species_names(self) -> list[str]:
        return list(self._order)

    @property
    def n_species(self) -> int:
        return len(self._order)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    def __contains__(self, species: SpeciesLike) -> bool:
        return as_species(species).name in self._species

    def add_species(self, species: SpeciesLike, initial: float = 0.0,
                    **metadata) -> Species:
        """Register a species (idempotent for identical declarations).

        Re-declaring an existing name is allowed only when colour and role
        agree (or when one declaration is the bare default); conflicting
        metadata raises :class:`NetworkError`.
        """
        if isinstance(species, str) and metadata:
            species = Species(species, **metadata)
        else:
            species = as_species(species)
        existing = self._species.get(species.name)
        if existing is None:
            self._species[species.name] = species
            self._order.append(species.name)
        elif not existing.same_metadata(species):
            if existing.color is None and existing.role == "signal":
                # Bare auto-registration upgraded by an explicit declaration.
                self._species[species.name] = species
            elif not (species.color is None and species.role == "signal"):
                raise NetworkError(
                    f"conflicting declarations for species {species.name!r}: "
                    f"{existing.color}/{existing.role} vs "
                    f"{species.color}/{species.role}")
        if initial:
            self.set_initial(species, initial)
        return self._species[species.name]

    def get_species(self, name: str) -> Species:
        try:
            return self._species[name]
        except KeyError:
            raise NetworkError(f"unknown species {name!r} in network "
                               f"{self.name!r}") from None

    def species_index(self, species: SpeciesLike) -> int:
        name = as_species(species).name
        try:
            return self._order.index(name)
        except ValueError:
            raise NetworkError(f"unknown species {name!r} in network "
                               f"{self.name!r}") from None

    def index_map(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self._order)}

    def species_with_color(self, color: str) -> list[Species]:
        return [s for s in self.species if s.color == color]

    def species_with_role(self, role: str) -> list[Species]:
        return [s for s in self.species if s.role == role]

    # -- reactions ----------------------------------------------------------

    def add_reaction(self, reaction: Reaction) -> Reaction:
        """Add a reaction, auto-registering any unknown species.

        Registration order is deterministic (reactants before products,
        each in declaration order) so that state-vector layouts are
        reproducible across processes.
        """
        for species in reaction.reactants:
            self.add_species(species)
        for species in reaction.products:
            self.add_species(species)
        self.reactions.append(reaction)
        return reaction

    def add(self, reactants, products, rate: float | str = "slow",
            label: str = "") -> Reaction:
        """Shorthand for ``add_reaction(Reaction(...))``."""
        return self.add_reaction(Reaction(reactants, products, rate, label))

    def extend(self, reactions: Iterable[Reaction]) -> None:
        for reaction in reactions:
            self.add_reaction(reaction)

    # -- initial conditions --------------------------------------------------

    def set_initial(self, species: SpeciesLike, value: float) -> None:
        value = float(value)
        if value < 0:
            raise NetworkError("initial quantity must be non-negative")
        name = self.add_species(species).name
        self._initial[name] = value

    def get_initial(self, species: SpeciesLike) -> float:
        return self._initial.get(as_species(species).name, 0.0)

    @property
    def initial(self) -> dict[str, float]:
        return dict(self._initial)

    def initial_vector(self,
                       overrides: Mapping[str, float] | None = None
                       ) -> np.ndarray:
        """Initial state aligned with :attr:`species_names`."""
        x0 = np.zeros(self.n_species)
        for name, value in self._initial.items():
            x0[self.species_index(name)] = value
        if overrides:
            for name, value in overrides.items():
                x0[self.species_index(name)] = float(value)
        return x0

    # -- composition ---------------------------------------------------------

    def merge(self, other: "Network") -> "Network":
        """Merge another network into this one (in place).

        Species registries are unioned (metadata must agree), reactions are
        concatenated with duplicates removed, and initial quantities are
        summed -- quantities are signals, and merging two sub-designs that
        both inject into a shared species should accumulate.
        """
        for species in other.species:
            self.add_species(species)
        seen = set(self.reactions)
        for reaction in other.reactions:
            if reaction not in seen:
                self.add_reaction(reaction)
                seen.add(reaction)
        for name, value in other._initial.items():
            self._initial[name] = self._initial.get(name, 0.0) + value
        return self

    def copy(self, name: str | None = None) -> "Network":
        clone = Network(name or self.name)
        clone.merge(self)
        return clone

    # -- matrices ------------------------------------------------------------

    def reactant_matrix(self) -> np.ndarray:
        """Exponent matrix E: E[j, s] = reactant coefficient of species s
        in reaction j (mass-action exponents)."""
        index = self.index_map()
        matrix = np.zeros((self.n_reactions, self.n_species))
        for j, reaction in enumerate(self.reactions):
            for species, coeff in reaction.reactants.items():
                matrix[j, index[species.name]] = coeff
        return matrix

    def product_matrix(self) -> np.ndarray:
        index = self.index_map()
        matrix = np.zeros((self.n_reactions, self.n_species))
        for j, reaction in enumerate(self.reactions):
            for species, coeff in reaction.products.items():
                matrix[j, index[species.name]] = coeff
        return matrix

    def stoichiometry_matrix(self) -> np.ndarray:
        """Net stoichiometry S: S[s, j] = net change of species s per firing
        of reaction j.  The ODE right-hand side is ``S @ rates``."""
        return (self.product_matrix() - self.reactant_matrix()).T

    def rate_vector(self, scheme) -> np.ndarray:
        """Resolved numeric rate constants aligned with :attr:`reactions`."""
        return np.array([scheme.resolve(rxn.rate) for rxn in self.reactions])

    # -- validation / inspection ----------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetworkError` on problems."""
        if not self.reactions:
            raise NetworkError(f"network {self.name!r} has no reactions")
        for reaction in self.reactions:
            for species in reaction.species:
                if species.name not in self._species:
                    raise NetworkError(
                        f"reaction {reaction} references unregistered "
                        f"species {species.name!r}")

    def conservation_laws(self, tol: float = 1e-9) -> np.ndarray:
        """Left null space of the stoichiometry matrix.

        Each row is a vector ``w`` such that ``w . x(t)`` is constant along
        every trajectory.  Rows are returned as an orthonormal basis.
        """
        from scipy.linalg import null_space

        stoich = self.stoichiometry_matrix()
        basis = null_space(stoich.T, rcond=tol)
        return basis.T

    def conserved_total(self, weights: np.ndarray, state: np.ndarray) -> float:
        return float(np.dot(weights, state))

    def summary(self) -> str:
        """One-line size summary used in reports."""
        return (f"{self.name}: {self.n_species} species, "
                f"{self.n_reactions} reactions")

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        """Serialise to the text format accepted by :mod:`repro.crn.parser`."""
        lines = [f"network: {self.name}"]
        # Every species is listed (even metadata-free ones) so that the
        # registration order -- and with it the state-vector layout --
        # survives a round trip through the text format.
        for species in self.species:
            attrs = []
            if species.color:
                attrs.append(f"color={species.color}")
            if species.role != "signal":
                attrs.append(f"role={species.role}")
            line = f"species {species.name}"
            if attrs:
                line = f"{line} {' '.join(attrs)}"
            lines.append(line)
        for name, value in sorted(self._initial.items()):
            lines.append(f"init {name} = {value:g}")
        for reaction in self.reactions:
            lines.append(str(reaction))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.summary()

    def __repr__(self) -> str:
        return f"<Network {self.summary()}>"
