"""Chemical reaction network container.

A :class:`Network` is an ordered registry of species, a list of reactions,
and a set of initial quantities.  Builders throughout the library (clock,
delay elements, synthesized circuits, DSD compilation) all produce plain
``Network`` objects, so every design can be simulated, analysed, merged,
printed and parsed with the same machinery.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Mapping

import numpy as np

from repro.crn.reaction import Reaction, SpeciesLike
from repro.crn.species import Species, as_species
from repro.errors import NetworkError

#: Version tag of the canonical network serialisation (see
#: :meth:`Network.to_canonical_dict`).  Bump only with a migration path:
#: content-addressed caches key on the canonical form.
CANONICAL_SCHEMA = "repro.network/1"


class Network:
    """A chemical reaction network with initial conditions."""

    def __init__(self, name: str = "crn"):
        self.name = name
        self._species: dict[str, Species] = {}
        self._order: list[str] = []
        self.reactions: list[Reaction] = []
        self._initial: dict[str, float] = {}
        #: Optional source spans for diagnostics, populated by the parser:
        #: ``("reaction", index) -> line`` and ``("species", name) -> line``.
        self.provenance: dict[tuple[str, object], int] = {}

    # -- species registry ---------------------------------------------------

    @property
    def species(self) -> list[Species]:
        """Species in registration order."""
        return [self._species[name] for name in self._order]

    @property
    def species_names(self) -> list[str]:
        return list(self._order)

    @property
    def n_species(self) -> int:
        return len(self._order)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    def __contains__(self, species: SpeciesLike) -> bool:
        return as_species(species).name in self._species

    def add_species(self, species: SpeciesLike, initial: float = 0.0,
                    **metadata) -> Species:
        """Register a species (idempotent for identical declarations).

        Re-declaring an existing name is allowed only when colour and role
        agree (or when one declaration is the bare default); conflicting
        metadata raises :class:`NetworkError`.
        """
        if isinstance(species, str) and metadata:
            species = Species(species, **metadata)
        else:
            species = as_species(species)
        existing = self._species.get(species.name)
        if existing is None:
            self._species[species.name] = species
            self._order.append(species.name)
        elif not existing.same_metadata(species):
            if existing.color is None and existing.role == "signal":
                # Bare auto-registration upgraded by an explicit declaration.
                self._species[species.name] = species
            elif not (species.color is None and species.role == "signal"):
                raise NetworkError(
                    f"conflicting declarations for species {species.name!r}: "
                    f"{existing.color}/{existing.role} vs "
                    f"{species.color}/{species.role}")
        if initial:
            self.set_initial(species, initial)
        return self._species[species.name]

    def get_species(self, name: str) -> Species:
        try:
            return self._species[name]
        except KeyError:
            raise NetworkError(f"unknown species {name!r} in network "
                               f"{self.name!r}") from None

    def species_index(self, species: SpeciesLike) -> int:
        name = as_species(species).name
        try:
            return self._order.index(name)
        except ValueError:
            raise NetworkError(f"unknown species {name!r} in network "
                               f"{self.name!r}") from None

    def index_map(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self._order)}

    def species_with_color(self, color: str) -> list[Species]:
        return [s for s in self.species if s.color == color]

    def species_with_role(self, role: str) -> list[Species]:
        return [s for s in self.species if s.role == role]

    # -- reactions ----------------------------------------------------------

    def add_reaction(self, reaction: Reaction) -> Reaction:
        """Add a reaction, auto-registering any unknown species.

        Registration order is deterministic (reactants before products,
        each in declaration order) so that state-vector layouts are
        reproducible across processes.
        """
        for species in reaction.reactants:
            self.add_species(species)
        for species in reaction.products:
            self.add_species(species)
        self.reactions.append(reaction)
        return reaction

    def add(self, reactants, products, rate: float | str = "slow",
            label: str = "") -> Reaction:
        """Shorthand for ``add_reaction(Reaction(...))``."""
        return self.add_reaction(Reaction(reactants, products, rate, label))

    def extend(self, reactions: Iterable[Reaction]) -> None:
        for reaction in reactions:
            self.add_reaction(reaction)

    # -- initial conditions --------------------------------------------------

    def set_initial(self, species: SpeciesLike, value: float) -> None:
        value = float(value)
        if value < 0:
            raise NetworkError("initial quantity must be non-negative")
        name = self.add_species(species).name
        self._initial[name] = value

    def get_initial(self, species: SpeciesLike) -> float:
        return self._initial.get(as_species(species).name, 0.0)

    @property
    def initial(self) -> dict[str, float]:
        return dict(self._initial)

    def initial_vector(self,
                       overrides: Mapping[str, float] | None = None
                       ) -> np.ndarray:
        """Initial state aligned with :attr:`species_names`."""
        x0 = np.zeros(self.n_species)
        for name, value in self._initial.items():
            x0[self.species_index(name)] = value
        if overrides:
            for name, value in overrides.items():
                x0[self.species_index(name)] = float(value)
        return x0

    # -- composition ---------------------------------------------------------

    def merge(self, other: "Network") -> "Network":
        """Merge another network into this one (in place).

        Species registries are unioned (metadata must agree), reactions are
        concatenated with duplicates removed, and initial quantities are
        summed -- quantities are signals, and merging two sub-designs that
        both inject into a shared species should accumulate.
        """
        for species in other.species:
            self.add_species(species)
        seen = set(self.reactions)
        for reaction in other.reactions:
            if reaction not in seen:
                self.add_reaction(reaction)
                seen.add(reaction)
        for name, value in other._initial.items():
            self._initial[name] = self._initial.get(name, 0.0) + value
        return self

    def copy(self, name: str | None = None) -> "Network":
        clone = Network(name or self.name)
        clone.merge(self)
        return clone

    # -- matrices ------------------------------------------------------------

    def reactant_matrix(self) -> np.ndarray:
        """Exponent matrix E: E[j, s] = reactant coefficient of species s
        in reaction j (mass-action exponents)."""
        index = self.index_map()
        matrix = np.zeros((self.n_reactions, self.n_species))
        for j, reaction in enumerate(self.reactions):
            for species, coeff in reaction.reactants.items():
                matrix[j, index[species.name]] = coeff
        return matrix

    def product_matrix(self) -> np.ndarray:
        index = self.index_map()
        matrix = np.zeros((self.n_reactions, self.n_species))
        for j, reaction in enumerate(self.reactions):
            for species, coeff in reaction.products.items():
                matrix[j, index[species.name]] = coeff
        return matrix

    def stoichiometry_matrix(self) -> np.ndarray:
        """Net stoichiometry S: S[s, j] = net change of species s per firing
        of reaction j.  The ODE right-hand side is ``S @ rates``."""
        return (self.product_matrix() - self.reactant_matrix()).T

    def rate_vector(self, scheme) -> np.ndarray:
        """Resolved numeric rate constants aligned with :attr:`reactions`."""
        return np.array([scheme.resolve(rxn.rate) for rxn in self.reactions])

    # -- validation / inspection ----------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetworkError` on problems."""
        if not self.reactions:
            raise NetworkError(f"network {self.name!r} has no reactions")
        for reaction in self.reactions:
            for species in reaction.species:
                if species.name not in self._species:
                    raise NetworkError(
                        f"reaction {reaction} references unregistered "
                        f"species {species.name!r}")

    def conservation_laws(self, tol: float = 1e-9) -> np.ndarray:
        """Left null space of the stoichiometry matrix.

        Each row is a vector ``w`` such that ``w . x(t)`` is constant along
        every trajectory.  Rows are returned as an orthonormal basis.
        """
        from scipy.linalg import null_space

        stoich = self.stoichiometry_matrix()
        basis = null_space(stoich.T, rcond=tol)
        return basis.T

    def conserved_total(self, weights: np.ndarray, state: np.ndarray) -> float:
        return float(np.dot(weights, state))

    def summary(self) -> str:
        """One-line size summary used in reports."""
        return (f"{self.name}: {self.n_species} species, "
                f"{self.n_reactions} reactions")

    # -- canonical serialisation ----------------------------------------------

    def to_canonical_dict(self) -> dict:
        """The blessed, permutation-stable serialisation of this network.

        The canonical form is independent of species registration order
        and reaction declaration order: species are sorted by name,
        reactions are sorted by content, and *exact* duplicate reactions
        (identical reactants, products and rate) merge into one entry
        with an integer ``count``.  Exact-duplicate merging is the only
        kinetic identification applied -- summing equal propensities is
        an exact power-of-two scaling in floating point, so it is
        invisible to every engine, bitwise.

        Labels, provenance and species docstrings are presentation
        metadata and do not appear.  The result round-trips through
        :meth:`from_canonical_dict` and is plain-JSON serialisable;
        :meth:`canonical_hash` content-addresses it.
        """
        species = []
        for sp in sorted(self.species, key=lambda s: s.name):
            entry: dict = {"name": sp.name}
            if sp.color is not None:
                entry["color"] = sp.color
            if sp.role != "signal":
                entry["role"] = sp.role
            species.append(entry)
        merged: dict[str, dict] = {}
        order: list[str] = []
        for reaction in self.reactions:
            entry = {
                "reactants": sorted(
                    [s.name, int(c)]
                    for s, c in reaction.reactants.items()),
                "products": sorted(
                    [s.name, int(c)]
                    for s, c in reaction.products.items()),
                "rate": reaction.rate,
            }
            key = json.dumps(entry, sort_keys=True)
            if key in merged:
                merged[key]["count"] += 1
            else:
                entry["count"] = 1
                merged[key] = entry
                order.append(key)
        return {
            "schema": CANONICAL_SCHEMA,
            "name": self.name,
            "species": species,
            "initial": {name: float(value)
                        for name, value in sorted(self._initial.items())
                        if value},
            "reactions": [merged[key] for key in sorted(order)],
        }

    def canonical_hash(self) -> str:
        """SHA-256 of the canonical form, excluding the display name.

        Stable under species and reaction permutation (verified by the
        conformance ``meta.canonical-form`` check); two networks with
        equal hashes are the same chemistry, so content-addressed caches
        may serve one's results for the other -- provided both were
        simulated *in canonical form* (see :meth:`canonical_form`).
        """
        payload = dict(self.to_canonical_dict())
        del payload["name"]
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("ascii")).hexdigest()

    @classmethod
    def from_canonical_dict(cls, payload: Mapping) -> "Network":
        """Rebuild a network from :meth:`to_canonical_dict` output.

        The rebuilt network registers species in canonical (sorted)
        order and reactions in canonical order, so
        ``from_canonical_dict(n.to_canonical_dict())`` is *the*
        canonical representative of ``n``'s permutation class: every
        permutation-equivalent input reconstructs the identical network,
        state-vector layout and all.
        """
        if not isinstance(payload, Mapping):
            raise NetworkError(
                f"canonical network payload must be a mapping, got "
                f"{type(payload).__name__}")
        extra = set(payload) - {"schema", "name", "species", "initial",
                                "reactions"}
        if extra:
            raise NetworkError(
                f"unknown canonical network field(s) {sorted(extra)}")
        schema = payload.get("schema")
        if schema != CANONICAL_SCHEMA:
            raise NetworkError(
                f"unsupported canonical network schema {schema!r}; "
                f"expected {CANONICAL_SCHEMA!r}")
        network = cls(str(payload.get("name", "crn")))
        for entry in payload.get("species", []):
            network.add_species(Species(
                entry["name"], color=entry.get("color"),
                role=entry.get("role", "signal")))
        for entry in payload.get("reactions", []):
            rate = entry["rate"]
            if not isinstance(rate, str):
                rate = float(rate)
            reaction = Reaction(
                {name: coeff for name, coeff in entry["reactants"]},
                {name: coeff for name, coeff in entry["products"]},
                rate)
            for _ in range(int(entry.get("count", 1))):
                network.add_reaction(reaction)
        for name, value in payload.get("initial", {}).items():
            network.set_initial(name, float(value))
        return network

    def canonical_form(self) -> "Network":
        """This network rebuilt in canonical order.

        Simulating the canonical form (rather than the raw network)
        makes results a pure function of the chemistry: stochastic
        engines' draw sequences depend on reaction order, so two
        permutation-equivalent networks only produce byte-identical
        realisations when both are first canonicalised.  The serving
        layer relies on this.
        """
        return type(self).from_canonical_dict(self.to_canonical_dict())

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        """Serialise to the text format accepted by :mod:`repro.crn.parser`."""
        lines = [f"network: {self.name}"]
        # Every species is listed (even metadata-free ones) so that the
        # registration order -- and with it the state-vector layout --
        # survives a round trip through the text format.
        for species in self.species:
            attrs = []
            if species.color:
                attrs.append(f"color={species.color}")
            if species.role != "signal":
                attrs.append(f"role={species.role}")
            line = f"species {species.name}"
            if attrs:
                line = f"{line} {' '.join(attrs)}"
            lines.append(line)
        for name, value in sorted(self._initial.items()):
            lines.append(f"init {name} = {value:g}")
        for reaction in self.reactions:
            lines.append(str(reaction))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.summary()

    def __repr__(self) -> str:
        return f"<Network {self.summary()}>"
