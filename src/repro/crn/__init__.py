"""Chemical reaction network substrate.

The :mod:`repro.crn` package is the foundation everything else builds on:
species and reactions with symbolic fast/slow rate categories, network
assembly and composition, a text format, compiled mass-action kinetics, and
deterministic plus stochastic simulators.
"""

from repro.crn.analysis import (catalytic_summary, complex_graph,
                                deficiency, is_weakly_reversible,
                                linkage_classes, reachable_species,
                                reaction_order_histogram,
                                species_reaction_graph, stranded_species)
from repro.crn.kinetics import MassActionKinetics, build_kinetics
from repro.crn.network import Network
from repro.crn.parser import load_network, parse_network
from repro.crn.rates import (DEFAULT_FAST, DEFAULT_SLOW, FAST, SLOW,
                             RateScheme, jittered_rates, lognormal_rates)
from repro.crn.reaction import Reaction, reversible
from repro.crn.species import COLORS, Species, as_species, next_color, \
    previous_color
from repro.crn.simulation import (OdeSimulator, SimulationOptions,
                                  SimulationResult, StochasticSimulator,
                                  TauLeapingSimulator, Trajectory, simulate)
from repro.crn.simulation.sensitivity import (observable_final,
                                              rate_sensitivities,
                                              sensitivity_report)

__all__ = [
    "COLORS",
    "DEFAULT_FAST",
    "DEFAULT_SLOW",
    "FAST",
    "MassActionKinetics",
    "Network",
    "OdeSimulator",
    "RateScheme",
    "Reaction",
    "SLOW",
    "SimulationOptions",
    "SimulationResult",
    "Species",
    "StochasticSimulator",
    "TauLeapingSimulator",
    "Trajectory",
    "as_species",
    "catalytic_summary",
    "complex_graph",
    "deficiency",
    "is_weakly_reversible",
    "linkage_classes",
    "observable_final",
    "rate_sensitivities",
    "reachable_species",
    "reaction_order_histogram",
    "sensitivity_report",
    "species_reaction_graph",
    "stranded_species",
    "build_kinetics",
    "jittered_rates",
    "load_network",
    "lognormal_rates",
    "next_color",
    "parse_network",
    "previous_color",
    "reversible",
    "simulate",
]
