"""Mass-action kinetics: right-hand sides, propensities, Jacobians.

Deterministic semantics (used by the ODE simulators)
    rate_j = k_j * prod_s x_s ** E[j, s]
    dx/dt  = S @ rate

Stochastic semantics (used by SSA / tau-leaping)
    a_j = c_j * prod_s C(x_s, E[j, s])
    c_j = k_j * prod_s E[j, s]! / V ** (order_j - 1)

With volume ``V`` equal to the count scale, the SSA mean converges to the
ODE trajectory for large counts, which one of the integration tests checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.crn.network import Network


class MassActionKinetics:
    """Compiled mass-action kinetics for one network + rate vector."""

    def __init__(self, network: Network, rates: np.ndarray):
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (network.n_reactions,):
            raise ValueError(
                f"rate vector has shape {rates.shape}, expected "
                f"({network.n_reactions},)")
        self.network = network
        self.rates = rates
        self.exponents = network.reactant_matrix()          # (R, S)
        self.stoich = network.stoichiometry_matrix()        # (S, R)
        # Sparse representation of the exponent matrix for the Jacobian.
        self._nz_rows, self._nz_cols = np.nonzero(self.exponents)
        self._nz_exp = self.exponents[self._nz_rows, self._nz_cols]
        # Precompute per-reaction reactant index lists for SSA propensities.
        self._reactant_lists = [
            [(s, int(e)) for s, e in zip(*_row_nonzero(self.exponents, j))]
            for j in range(network.n_reactions)
        ]

    # -- deterministic -------------------------------------------------------

    def reaction_rates(self, x: np.ndarray) -> np.ndarray:
        """Vector of mass-action reaction rates at state ``x``."""
        x = np.maximum(x, 0.0)
        # x ** 0 == 1, so the dense power handles absent reactants.
        monomials = np.prod(np.power(x[None, :], self.exponents), axis=1)
        return self.rates * monomials

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        """ODE right-hand side ``dx/dt``."""
        return self.stoich @ self.reaction_rates(x)

    def jacobian(self, t: float, x: np.ndarray) -> np.ndarray:
        """Analytic Jacobian ``d(dx/dt)/dx`` (dense)."""
        x = np.maximum(x, 0.0)
        n_r, n_s = self.exponents.shape
        # d rate_j / d x_s for each nonzero exponent entry.
        drate = np.zeros((n_r, n_s))
        monomials = np.power(x[None, :], self.exponents)  # (R, S)
        full = self.rates * np.prod(monomials, axis=1)
        for j, s, e in zip(self._nz_rows, self._nz_cols, self._nz_exp):
            xs = x[s]
            if xs > 0:
                drate[j, s] = full[j] * e / xs
            else:
                # Recompute the partial product without species s.
                others = self.rates[j]
                for s2 in np.nonzero(self.exponents[j])[0]:
                    if s2 == s:
                        continue
                    others *= x[s2] ** self.exponents[j, s2]
                drate[j, s] = others * (e if e == 1 else 0.0)
                # For e >= 2 the derivative at x_s = 0 is 0.
        return self.stoich @ drate

    # -- stochastic ----------------------------------------------------------

    def stochastic_constants(self, volume: float = 1.0) -> np.ndarray:
        """Per-reaction stochastic rate constants ``c_j``."""
        constants = np.empty(len(self.rates))
        for j, reactants in enumerate(self._reactant_lists):
            order = sum(e for _, e in reactants)
            factor = 1.0
            for _, e in reactants:
                factor *= math.factorial(e)
            constants[j] = self.rates[j] * factor / volume ** max(order - 1, 0)
            if order == 0:
                constants[j] = self.rates[j] * volume
        return constants

    def propensities(self, counts: np.ndarray,
                     constants: np.ndarray) -> np.ndarray:
        """SSA propensities at integer state ``counts``."""
        a = constants.copy()
        for j, reactants in enumerate(self._reactant_lists):
            for s, e in reactants:
                n = counts[s]
                if n < e:
                    a[j] = 0.0
                    break
                combos = 1.0
                for i in range(e):
                    combos *= (n - i)
                combos /= math.factorial(e)
                a[j] *= combos
        return a


def _row_nonzero(matrix: np.ndarray, row: int):
    cols = np.nonzero(matrix[row])[0]
    return cols, matrix[row, cols]


def build_kinetics(network: Network, scheme=None,
                   rates: np.ndarray | None = None) -> MassActionKinetics:
    """Resolve rates (via scheme or explicit vector) and compile kinetics."""
    from repro.crn.rates import RateScheme

    if rates is None:
        scheme = scheme or RateScheme()
        rates = network.rate_vector(scheme)
    return MassActionKinetics(network, np.asarray(rates, dtype=float))
