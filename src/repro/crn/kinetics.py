"""Mass-action kinetics: compiled right-hand sides, propensities, Jacobians.

Deterministic semantics (used by the ODE simulators)
    rate_j = k_j * prod_s x_s ** E[j, s]
    dx/dt  = S @ rate

Stochastic semantics (used by SSA / tau-leaping)
    a_j = c_j * prod_s C(x_s, E[j, s])
    c_j = k_j * prod_s E[j, s]! / V ** (order_j - 1)

With volume ``V`` equal to the count scale, the SSA mean converges to the
ODE trajectory for large counts, which one of the integration tests checks.

Compilation strategy
--------------------
Almost every reaction in the paper's constructions is zeroth, first or
second order, so :class:`MassActionKinetics` compiles the exponent matrix
into a *two-factor* form: each reaction of order <= 2 is described by two
gather indices into an extended state buffer whose last slot is the
constant 1.0.  Monomials, propensities and the Jacobian nonzeros then
evaluate as a handful of vectorized gather-multiplies with no Python loop
over reactions.  Reactions of order >= 3 (or with a single exponent >= 3)
fall back to a per-reaction loop over a CSR-style nonzero list; they are
rare and the fallback touches only those rows.

:class:`DenseKineticsReference` keeps the straightforward dense
implementation; the golden-equivalence test suite asserts both engines
agree on every example network.
"""

from __future__ import annotations

import math

import numpy as np

from repro.crn.network import Network


class MassActionKinetics:
    """Compiled sparse mass-action kinetics for one network + rate vector.

    Attributes of interest to the simulators:

    ``exponents`` / ``stoich``
        dense (R, S) exponent and (S, R) net-stoichiometry matrices.
    ``jacobian_sparsity()``
        (S, S) 0/1 pattern of the state Jacobian, suitable for scipy's
        ``jac_sparsity`` argument to BDF/Radau.
    ``reaction_dependencies()``
        reaction -> affected-reactions adjacency used by the
        incremental-propensity SSA core.
    """

    def __init__(self, network: Network, rates: np.ndarray):
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (network.n_reactions,):
            raise ValueError(
                f"rate vector has shape {rates.shape}, expected "
                f"({network.n_reactions},)")
        self.network = network
        self.rates = rates
        self.exponents = network.reactant_matrix()          # (R, S)
        self.stoich = network.stoichiometry_matrix()        # (S, R)
        # Sparse representation of the exponent matrix (CSR-style lists).
        self._nz_rows, self._nz_cols = np.nonzero(self.exponents)
        self._nz_exp = self.exponents[self._nz_rows, self._nz_cols]
        self._reactant_lists = [
            [(int(s), int(e)) for s, e in zip(*_row_nonzero(self.exponents, j))]
            for j in range(network.n_reactions)
        ]
        self._compile()

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        n_r, n_s = self.exponents.shape
        self.n_reactions = n_r
        self.n_species = n_s
        sentinel = n_s  # extended-buffer slot holding the constant 1.0
        factor_a = np.full(n_r, sentinel, dtype=np.intp)
        factor_b = np.full(n_r, sentinel, dtype=np.intp)
        pair_same = np.zeros(n_r, dtype=bool)
        generic: list[int] = []
        # Jacobian nonzeros: entry value = coeff * k_j * xe[gather].
        jac_r: list[int] = []
        jac_c: list[int] = []
        jac_coeff: list[float] = []
        jac_g: list[int] = []
        for j, reactants in enumerate(self._reactant_lists):
            order = sum(e for _, e in reactants)
            if order == 0:
                continue
            if order == 1:
                s = reactants[0][0]
                factor_a[j] = s
                jac_r.append(j); jac_c.append(s)
                jac_coeff.append(1.0); jac_g.append(sentinel)
            elif order == 2 and len(reactants) == 1:
                s = reactants[0][0]                        # 2X -> ...
                factor_a[j] = factor_b[j] = s
                pair_same[j] = True
                jac_r.append(j); jac_c.append(s)
                jac_coeff.append(2.0); jac_g.append(s)
            elif order == 2:
                (sa, _), (sb, _) = reactants               # X + Y -> ...
                factor_a[j] = sa
                factor_b[j] = sb
                jac_r.append(j); jac_c.append(sa)
                jac_coeff.append(1.0); jac_g.append(sb)
                jac_r.append(j); jac_c.append(sb)
                jac_coeff.append(1.0); jac_g.append(sa)
            else:
                generic.append(j)
        self._factor_a = factor_a
        self._factor_b = factor_b
        self._pair_same = pair_same
        self._generic_rows = np.array(generic, dtype=np.intp)
        self._generic_lists = [(j, self._reactant_lists[j]) for j in generic]
        self._jac_rows = np.array(jac_r, dtype=np.intp)
        self._jac_cols = np.array(jac_c, dtype=np.intp)
        self._jac_gather = np.array(jac_g, dtype=np.intp)
        # rates never change after construction, so fold them in.
        self._jac_scale = np.array(jac_coeff) * self.rates[self._jac_rows]
        # Nonzero pattern of d(rate)/dx, including the generic rows.
        pattern = np.zeros((n_r, n_s), dtype=bool)
        pattern[self._jac_rows, self._jac_cols] = True
        for j, reactants in self._generic_lists:
            for s, _ in reactants:
                pattern[j, s] = True
        self._drate_pattern = pattern
        # Stochastic second-factor gather: slot fB for distinct factors,
        # slot (n_s + 1 + s) for the (x_s - 1)/2 half-pair factor of 2X.
        stoch_b = factor_b.copy()
        stoch_b[pair_same] = n_s + 1 + factor_a[pair_same]
        self._stoch_factor_b = stoch_b
        # Reusable buffers (simulators are single-threaded per instance).
        self._xbuf = np.ones(n_s + 1)
        self._cbuf = np.ones(2 * (n_s + 1))
        self._drate = np.zeros((n_r, n_s))
        self._stoich_c = np.ascontiguousarray(self.stoich)
        self._stoich_csr = None  # built lazily by jacobian_sparse

    # -- deterministic -------------------------------------------------------

    def monomials(self, x: np.ndarray) -> np.ndarray:
        """Vector of mass-action monomials ``prod_s x_s ** E[j, s]``."""
        xe = self._xbuf
        np.maximum(x, 0.0, out=xe[:self.n_species])
        m = xe[self._factor_a]
        m *= xe[self._factor_b]
        for j, reactants in self._generic_lists:
            value = 1.0
            for s, e in reactants:
                value *= xe[s] ** e
            m[j] = value
        return m

    def reaction_rates(self, x: np.ndarray) -> np.ndarray:
        """Vector of mass-action reaction rates at state ``x``."""
        m = self.monomials(x)
        m *= self.rates
        return m

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        """ODE right-hand side ``dx/dt``."""
        return self._stoich_c @ self.reaction_rates(x)

    def _drate_values(self, x: np.ndarray) -> np.ndarray:
        """Populate and return the cached d(rate)/dx scatter buffer."""
        xe = self._xbuf
        np.maximum(x, 0.0, out=xe[:self.n_species])
        drate = self._drate
        drate[self._jac_rows, self._jac_cols] = \
            self._jac_scale * xe[self._jac_gather]
        for j, reactants in self._generic_lists:
            full = self.rates[j]
            for s, e in reactants:
                full *= xe[s] ** e
            for s, e in reactants:
                xs = xe[s]
                if xs > 0.0:
                    drate[j, s] = full * e / xs
                else:
                    others = self.rates[j]
                    for s2, e2 in reactants:
                        if s2 != s:
                            others *= xe[s2] ** e2
                    # For e >= 2 the derivative at x_s = 0 is 0.
                    drate[j, s] = others if e == 1 else 0.0
        return drate

    def jacobian(self, t: float, x: np.ndarray) -> np.ndarray:
        """Analytic Jacobian ``d(dx/dt)/dx`` (dense array)."""
        return self._stoich_c @ self._drate_values(x)

    def jacobian_sparse(self, t: float, x: np.ndarray):
        """Analytic Jacobian as a ``scipy.sparse`` CSC matrix.

        BDF/Radau accept a sparse-returning ``jac`` and switch their
        Newton linear algebra to sparse LU, which is what makes large
        composed networks tractable.
        """
        from scipy import sparse

        if self._stoich_csr is None:
            self._stoich_csr = sparse.csr_matrix(self._stoich_c)
        drate = sparse.csr_matrix(self._drate_values(x))
        return sparse.csc_matrix(self._stoich_csr @ drate)

    def jacobian_sparsity(self) -> np.ndarray:
        """(S, S) 0/1 nonzero pattern of :meth:`jacobian`.

        Row s may depend on column s' iff some reaction both changes s
        and has s' as a reactant.  Suitable for scipy's ``jac_sparsity``.
        """
        touches = (self.stoich != 0).astype(np.int8)       # (S, R)
        pattern = touches @ self._drate_pattern.astype(np.int8)
        return (pattern > 0).astype(np.int8)

    # -- stochastic ----------------------------------------------------------

    def stochastic_constants(self, volume: float = 1.0) -> np.ndarray:
        """Per-reaction stochastic rate constants ``c_j``."""
        constants = np.empty(len(self.rates))
        for j, reactants in enumerate(self._reactant_lists):
            order = sum(e for _, e in reactants)
            factor = 1.0
            for _, e in reactants:
                factor *= math.factorial(e)
            constants[j] = self.rates[j] * factor / volume ** max(order - 1, 0)
            if order == 0:
                constants[j] = self.rates[j] * volume
        return constants

    def _fill_count_buffer(self, counts: np.ndarray) -> np.ndarray:
        """Extended stochastic gather buffer for integer state ``counts``.

        Layout: ``[counts..., 1.0, (counts - 1) / 2..., 1.0]`` -- the
        second half provides the C(n, 2) = n * (n-1)/2 factor for 2X
        reactions without a branch in the hot path.
        """
        n_s = self.n_species
        cb = self._cbuf
        cb[:n_s] = counts
        cb[n_s + 1:2 * n_s + 1] = (cb[:n_s] - 1.0) * 0.5
        return cb

    def propensities(self, counts: np.ndarray,
                     constants: np.ndarray) -> np.ndarray:
        """SSA propensities at integer state ``counts``."""
        cb = self._fill_count_buffer(counts)
        a = constants * cb[self._factor_a]
        a *= cb[self._stoch_factor_b]
        for j, reactants in self._generic_lists:
            a[j] = self.propensity_of(j, counts, constants)
        return a

    def propensity_of(self, j: int, counts: np.ndarray,
                      constants: np.ndarray) -> float:
        """Propensity of one reaction (generic-order scalar path)."""
        value = float(constants[j])
        for s, e in self._reactant_lists[j]:
            n = counts[s]
            if n < e:
                return 0.0
            combos = 1.0
            for i in range(e):
                combos *= (n - i)
            combos /= math.factorial(e)
            value *= combos
        return value

    # -- structure -----------------------------------------------------------

    def reaction_dependencies(self) -> list[np.ndarray]:
        """Reaction dependency graph for incremental propensity updates.

        ``deps[j]`` holds the indices of every reaction whose propensity
        may change when reaction ``j`` fires: reactions with at least one
        reactant among the species whose *net* count ``j`` changes.  A
        catalytic reaction (e.g. ``A -> A + B``) does not depend on
        itself unless some reactant's net count changes.
        """
        reactant_mask = self.exponents != 0                 # (R, S)
        deps = []
        for j in range(self.n_reactions):
            changed = np.nonzero(self.stoich[:, j])[0]
            if changed.size == 0:
                deps.append(np.empty(0, dtype=np.intp))
            else:
                affected = reactant_mask[:, changed].any(axis=1)
                deps.append(np.nonzero(affected)[0].astype(np.intp))
        return deps


class DenseKineticsReference:
    """Straightforward dense mass-action kinetics (golden reference).

    Implements the textbook formulas with dense ``(R, S)`` matrix
    arithmetic and explicit Python loops.  It is deliberately naive: the
    equivalence test suite runs it against :class:`MassActionKinetics`
    on every example network to pin down the compiled engine.
    """

    def __init__(self, network: Network, rates: np.ndarray):
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (network.n_reactions,):
            raise ValueError(
                f"rate vector has shape {rates.shape}, expected "
                f"({network.n_reactions},)")
        self.network = network
        self.rates = rates
        self.exponents = network.reactant_matrix()
        self.stoich = network.stoichiometry_matrix()
        self._nz_rows, self._nz_cols = np.nonzero(self.exponents)
        self._nz_exp = self.exponents[self._nz_rows, self._nz_cols]
        self._reactant_lists = [
            [(s, int(e)) for s, e in zip(*_row_nonzero(self.exponents, j))]
            for j in range(network.n_reactions)
        ]

    def reaction_rates(self, x: np.ndarray) -> np.ndarray:
        x = np.maximum(x, 0.0)
        # x ** 0 == 1, so the dense power handles absent reactants.
        monomials = np.prod(np.power(x[None, :], self.exponents), axis=1)
        return self.rates * monomials

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        return self.stoich @ self.reaction_rates(x)

    def jacobian(self, t: float, x: np.ndarray) -> np.ndarray:
        x = np.maximum(x, 0.0)
        n_r, n_s = self.exponents.shape
        drate = np.zeros((n_r, n_s))
        full = self.rates * np.prod(np.power(x[None, :], self.exponents),
                                    axis=1)
        for j, s, e in zip(self._nz_rows, self._nz_cols, self._nz_exp):
            xs = x[s]
            if xs > 0:
                drate[j, s] = full[j] * e / xs
            else:
                others = self.rates[j]
                for s2 in np.nonzero(self.exponents[j])[0]:
                    if s2 == s:
                        continue
                    others *= x[s2] ** self.exponents[j, s2]
                drate[j, s] = others * (e if e == 1 else 0.0)
                # For e >= 2 the derivative at x_s = 0 is 0.
        return self.stoich @ drate

    def stochastic_constants(self, volume: float = 1.0) -> np.ndarray:
        constants = np.empty(len(self.rates))
        for j, reactants in enumerate(self._reactant_lists):
            order = sum(e for _, e in reactants)
            factor = 1.0
            for _, e in reactants:
                factor *= math.factorial(e)
            constants[j] = self.rates[j] * factor / volume ** max(order - 1, 0)
            if order == 0:
                constants[j] = self.rates[j] * volume
        return constants

    def propensities(self, counts: np.ndarray,
                     constants: np.ndarray) -> np.ndarray:
        a = constants.copy()
        for j, reactants in enumerate(self._reactant_lists):
            for s, e in reactants:
                n = counts[s]
                if n < e:
                    a[j] = 0.0
                    break
                combos = 1.0
                for i in range(e):
                    combos *= (n - i)
                combos /= math.factorial(e)
                a[j] *= combos
        return a


def _row_nonzero(matrix: np.ndarray, row: int):
    cols = np.nonzero(matrix[row])[0]
    return cols, matrix[row, cols]


def build_kinetics(network: Network, scheme=None,
                   rates: np.ndarray | None = None) -> MassActionKinetics:
    """Resolve rates (via scheme or explicit vector) and compile kinetics."""
    from repro.crn.rates import RateScheme

    if rates is None:
        scheme = scheme or RateScheme()
        rates = network.rate_vector(scheme)
    return MassActionKinetics(network, np.asarray(rates, dtype=float))
