"""Rate-constant sensitivity analysis.

Quantifies the paper's robustness claim numerically: the logarithmic
sensitivity of an observable to each reaction's rate constant,

    S_j = d ln(observable) / d ln(k_j),

estimated by central finite differences on the resolved rate vector.
Rate-independent constructs should show |S_j| << 1 for every reaction
(the observable is a *value*); rate-dependent baselines show |S_j| ~ 1
(the observable is set by kinetics).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.errors import SimulationError

Observable = Callable[["object"], float]


def observable_final(species: str, t_final: float,
                     include_dimer: bool = True) -> Callable:
    """Observable factory: effective final quantity of one species."""

    def measure(simulator: OdeSimulator) -> float:
        trajectory = simulator.simulate(t_final, n_samples=8)
        value = trajectory.final(species)
        dimer = f"I_{species}"
        if include_dimer and dimer in trajectory:
            value += 2.0 * trajectory.final(dimer)
        return value

    return measure


def rate_sensitivities(network: Network, measure: Callable,
                       scheme: RateScheme | None = None,
                       relative_step: float = 0.2,
                       method: str = "LSODA") -> np.ndarray:
    """Logarithmic sensitivities of ``measure`` to every rate constant.

    ``measure(simulator) -> float`` runs whatever experiment defines the
    observable.  Returns an array aligned with ``network.reactions``.
    """
    scheme = scheme or RateScheme()
    nominal = network.rate_vector(scheme)
    base = measure(OdeSimulator(network, rates=nominal, method=method))
    if not np.isfinite(base) or base == 0:
        raise SimulationError(
            f"baseline observable is {base!r}; sensitivities undefined")
    sensitivities = np.empty(len(nominal))
    for j in range(len(nominal)):
        up = nominal.copy()
        up[j] *= 1.0 + relative_step
        down = nominal.copy()
        down[j] /= 1.0 + relative_step
        value_up = measure(OdeSimulator(network, rates=up, method=method))
        value_down = measure(OdeSimulator(network, rates=down,
                                          method=method))
        dlog_value = np.log(max(value_up, 1e-300)) \
            - np.log(max(value_down, 1e-300))
        dlog_rate = 2.0 * np.log(1.0 + relative_step)
        sensitivities[j] = dlog_value / dlog_rate
    return sensitivities


def sensitivity_report(network: Network, measure: Callable,
                       scheme: RateScheme | None = None,
                       top: int = 5) -> list[tuple[str, float]]:
    """The ``top`` most sensitive reactions, as (description, S) pairs."""
    sensitivities = rate_sensitivities(network, measure, scheme)
    order = np.argsort(-np.abs(sensitivities))
    report = []
    for j in order[:top]:
        reaction = network.reactions[int(j)]
        report.append((str(reaction), float(sensitivities[int(j)])))
    return report
