"""Process-parallel execution of embarrassingly parallel simulation work.

:class:`ParallelSweepRunner` maps a picklable worker function over a list
of payloads, either serially or through a ``ProcessPoolExecutor``.  The
seeding contract is the caller's: every payload must carry its own
:class:`numpy.random.SeedSequence` (spawned from one root), so results
are a pure function of the payload list and do not depend on how the
payloads were distributed over workers.  Combined with fixed-size
chunking on the caller side, serial and parallel execution produce
bitwise-identical reductions.

``simulate_mean_chunk`` is the worker for stochastic ensembles: it
rebuilds a simulator from a constructor spec (see
``StochasticSimulator._clone_spec``) per run and sums the sampled
states over the chunk's seeds.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import SimulationError

#: Ensemble execution backends understood by ``simulate_mean_chunk``.
#: ``reference`` runs one scalar simulator per seed; ``batch`` runs the
#: whole chunk through the structure-of-arrays engine
#: (:mod:`repro.crn.simulation.batch`) when the spec's simulator class
#: supports it -- bitwise-identical states either way.
ENSEMBLE_BACKENDS = ("reference", "batch")


class ParallelSweepRunner:
    """Map a worker over payloads, serially or on a process pool.

    Parameters
    ----------
    n_workers:
        ``None`` uses the machine's CPU count; ``<= 1`` forces serial
        execution in-process.  A pool that cannot be created or breaks
        mid-flight (sandboxed environments, fork limits) degrades to the
        serial path, which computes the identical result.
    """

    def __init__(self, n_workers: int | None = None):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = max(int(n_workers), 1)

    def map(self, fn: Callable, payloads: Iterable) -> list:
        """Apply ``fn`` to every payload, preserving payload order."""
        payloads = list(payloads)
        if self.n_workers <= 1 or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        workers = min(self.n_workers, len(payloads))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, payloads))
        except (OSError, BrokenProcessPool):
            return [fn(p) for p in payloads]


def simulate_mean_chunk(payload: tuple) -> tuple[np.ndarray, np.ndarray,
                                                 int]:
    """Ensemble worker: sum sampled states over one chunk of seeded runs.

    ``payload`` is ``(spec, seeds, t_final, n_samples, kwargs)`` where
    ``spec`` is a simulator constructor spec and ``seeds`` a sequence of
    per-run :class:`~numpy.random.SeedSequence`.  Returns the shared
    sample times, the per-chunk state sum, and the total event count.

    ``spec["backend"]`` (default ``"reference"``) selects how the chunk
    executes: ``"batch"`` runs every seed through one
    structure-of-arrays ensemble call when the simulator class supports
    it, producing the bitwise-identical chunk sum.  Runs within a chunk
    must agree on the sample grid; a run that comes back misaligned
    raises :class:`~repro.errors.SimulationError` naming the offending
    chunk run instead of silently summing mismatched states.
    """
    spec, seeds, t_final, n_samples, kwargs = payload
    backend = spec.get("backend", "reference")
    if backend not in ENSEMBLE_BACKENDS:
        raise SimulationError(
            f"unknown ensemble backend {backend!r}; expected one of "
            f"{ENSEMBLE_BACKENDS}")
    seeds = list(seeds)
    if not seeds:
        raise ValueError("empty seed chunk")
    if backend == "batch" and getattr(spec["cls"],
                                      "_supports_batch_ensembles", False):
        from repro.crn.simulation.batch import BatchStochasticSimulator

        simulator = BatchStochasticSimulator(
            spec["network"], rates=spec["rates"], volume=spec["volume"])
        result = simulator.simulate_ensemble(
            t_final, seeds=seeds, n_samples=n_samples, **kwargs)
        return result.times, result.summed_states(), \
            int(result.events.sum())
    times: np.ndarray | None = None
    acc: np.ndarray | None = None
    events = 0
    for index, seed in enumerate(seeds):
        simulator = spec["cls"](
            spec["network"], rates=spec["rates"], volume=spec["volume"],
            seed=np.random.default_rng(seed), **spec["extra"])
        run = simulator.simulate(t_final, n_samples=n_samples, **kwargs)
        if acc is None:
            times = run.times
            acc = run.states.copy()
        elif not np.array_equal(run.times, times):
            raise SimulationError(
                f"ensemble chunk run {index} returned a misaligned "
                f"sample grid (size {run.times.size} vs {times.size}); "
                f"refusing to sum mismatched states")
        else:
            acc += run.states
        events += int(run.meta.get("events", run.meta.get("steps", 0)))
    return times, acc, events


def run_seeded(fn: Callable, payloads: Sequence,
               n_workers: int | None = None) -> list:
    """One-shot convenience wrapper around :class:`ParallelSweepRunner`."""
    return ParallelSweepRunner(n_workers).map(fn, payloads)
