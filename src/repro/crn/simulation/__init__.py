"""Simulation engines for chemical reaction networks."""

from repro.crn.simulation.events import (species_above, species_below,
                                         total_above, total_below)
from repro.crn.simulation.ode import METHODS, OdeSimulator, simulate
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.rk import integrate_rk45
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.simulation.tau_leaping import TauLeapingSimulator

__all__ = [
    "METHODS",
    "OdeSimulator",
    "StochasticSimulator",
    "TauLeapingSimulator",
    "Trajectory",
    "integrate_rk45",
    "simulate",
    "species_above",
    "species_below",
    "total_above",
    "total_below",
]
