"""Simulation engines for chemical reaction networks.

Three engines share one :class:`Trajectory` result type: the
deterministic mass-action ODE solver (:class:`OdeSimulator`), exact
Gillespie SSA (:class:`StochasticSimulator`) and approximate tau-leaping
(:class:`TauLeapingSimulator`).  The supported entry point is the
:func:`simulate` facade below, which dispatches on an engine name
(``"ode"``, ``"ssa"``, ``"tau"``) and a single
:class:`SimulationOptions` bag, so callers never plumb engine-specific
keyword arguments.  The engine classes remain public for callers that
need to reuse a compiled simulator across many calls (the machine
drivers do).

Execution backends
------------------
Orthogonal to the engine name, :attr:`SimulationOptions.backend` picks
the *implementation*: ``"reference"`` is the per-trial scalar engines
above, ``"batch"`` routes exact SSA through the structure-of-arrays
ensemble engine (:class:`BatchStochasticSimulator`), which produces
bitwise-identical trajectories on matched seeds.  Backends register in
:data:`_BACKEND_DISPATCH` via :func:`register_backend`; a backend that
does not vectorise an engine (ODE and tau-leaping under ``"batch"``)
delegates to the reference dispatch, so every ``(engine, backend)``
combination is valid.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.crn.simulation.batch import (BatchStochasticSimulator,
                                        EnsembleResult)
from repro.crn.simulation.events import (species_above, species_below,
                                         total_above, total_below)
from repro.crn.simulation.ode import JACOBIAN_MODES, METHODS, OdeSimulator
from repro.crn.simulation.options import (BACKENDS, ENGINES,
                                          SimulationOptions)
from repro.crn.simulation.result import SimulationResult, Trajectory
from repro.crn.simulation.rk import integrate_rk45
from repro.crn.simulation.sampling import (cumulative_propensities,
                                           select_reaction)
from repro.crn.simulation.ssa import (IncrementalPropensities,
                                      StochasticSimulator)
from repro.crn.simulation.sweep import ParallelSweepRunner, run_seeded
from repro.crn.simulation.tau_leaping import TauLeapingSimulator
from repro.errors import SimulationError


def _resolve_engine(method: str) -> tuple[str, str | None]:
    """``(engine, ode_solver_override)`` for a facade ``method`` value.

    ``method`` names an *engine* (one of :data:`ENGINES`); the ODE
    solver belongs in :attr:`SimulationOptions.solver`.  Passing a
    solver name here (the pre-facade spelling, removed after two
    releases of deprecation warnings) gets a targeted migration hint.
    """
    if method in ENGINES:
        return method, None
    if method in METHODS:
        raise SimulationError(
            f"simulate(method={method!r}) was removed; use "
            f"method='ode' with SimulationOptions(solver={method!r})")
    raise SimulationError(
        f"unknown simulation method {method!r}; expected one of "
        f"{ENGINES}")


def _reference_dispatch(engine: str, network, t_final: float, scheme,
                        opts: SimulationOptions) -> Trajectory:
    """The per-trial scalar engines (the default backend)."""
    if engine == "ode":
        simulator = OdeSimulator(
            network, scheme, rates=opts.rates, method=opts.solver,
            rtol=opts.rtol, atol=opts.atol, jacobian=opts.jacobian,
            tracer=opts.tracer, metrics=opts.metrics)
        return simulator.simulate(
            t_final, t_start=opts.t_start, initial=opts.initial,
            n_samples=opts.n_samples if opts.n_samples is not None else 400,
            events=opts.events, event_hint=opts.event_hint)
    n_samples = opts.n_samples if opts.n_samples is not None else 200
    kwargs = {}
    if opts.max_events is not None:
        kwargs["max_events"] = opts.max_events
    if engine == "ssa":
        simulator = StochasticSimulator(
            network, scheme, rates=opts.rates, volume=opts.volume,
            seed=opts.seed, tracer=opts.tracer, metrics=opts.metrics)
    else:
        simulator = TauLeapingSimulator(
            network, scheme, rates=opts.rates, volume=opts.volume,
            seed=opts.seed, epsilon=opts.epsilon,
            n_critical=opts.n_critical, tracer=opts.tracer,
            metrics=opts.metrics)
    return simulator.simulate(
        t_final, t_start=opts.t_start, initial=opts.initial,
        n_samples=n_samples, **kwargs)


def _batch_dispatch(engine: str, network, t_final: float, scheme,
                    opts: SimulationOptions) -> Trajectory:
    """The structure-of-arrays SSA backend (bitwise vs reference).

    Only exact SSA is vectorised; the ODE and tau-leaping engines
    delegate to the reference dispatch (vectorising tau-leaping's
    adaptive control flow cannot preserve the seeded draw order).
    """
    if engine != "ssa":
        return _reference_dispatch(engine, network, t_final, scheme, opts)
    simulator = BatchStochasticSimulator(
        network, scheme, rates=opts.rates, volume=opts.volume,
        seed=opts.seed, tracer=opts.tracer, metrics=opts.metrics)
    kwargs = {}
    if opts.max_events is not None:
        kwargs["max_events"] = opts.max_events
    n_samples = opts.n_samples if opts.n_samples is not None else 200
    return simulator.simulate(
        t_final, t_start=opts.t_start, initial=opts.initial,
        n_samples=n_samples, **kwargs)


#: Engine-backend registry: backend name -> dispatch callable with the
#: signature ``(engine, network, t_final, scheme, opts) -> Trajectory``.
_BACKEND_DISPATCH: dict[str, Callable] = {}


def register_backend(name: str, dispatch: Callable) -> None:
    """Register (or replace) a simulation backend by name."""
    _BACKEND_DISPATCH[str(name)] = dispatch


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKEND_DISPATCH))


register_backend("reference", _reference_dispatch)
register_backend("batch", _batch_dispatch)


def simulate(network, t_final: float, method: str = "ode", *,
             scheme=None, options: SimulationOptions | None = None,
             **overrides) -> Trajectory:
    """Unified simulation facade (the supported entry point).

    Parameters
    ----------
    network:
        the :class:`~repro.crn.network.Network` to simulate.
    t_final:
        end of the integration span.
    method:
        ``"ode"`` (deterministic mass-action), ``"ssa"`` (exact
        Gillespie) or ``"tau"`` (tau-leaping).
    scheme:
        :class:`~repro.crn.rates.RateScheme` resolving symbolic rate
        categories; defaults to the paper's ``fast=1000, slow=1``.
    options:
        a :class:`SimulationOptions` bag; defaults to
        ``SimulationOptions()``.  ``options.backend`` selects the
        execution backend (see :data:`BACKENDS`).
    **overrides:
        individual option fields overriding ``options`` (convenience
        for one-off calls); unknown names raise :class:`TypeError`.

    Returns a :class:`Trajectory` whatever the engine, so downstream
    scoring code is engine-agnostic (see :class:`SimulationResult`).
    """
    engine, solver = _resolve_engine(method)
    opts = options if options is not None else SimulationOptions()
    if overrides:
        opts = opts.replace(**overrides)
    if solver is not None:
        opts = opts.replace(solver=solver)
    if opts.events and engine != "ode":
        raise SimulationError(
            "event detection is only supported by the ODE engine; "
            "got events with method=" + repr(engine))
    try:
        dispatch = _BACKEND_DISPATCH[opts.backend]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {opts.backend!r}; registered "
            f"backends: {backend_names()}") from None
    return dispatch(engine, network, t_final, scheme, opts)


__all__ = [
    "BACKENDS",
    "BatchStochasticSimulator",
    "ENGINES",
    "EnsembleResult",
    "IncrementalPropensities",
    "JACOBIAN_MODES",
    "METHODS",
    "OdeSimulator",
    "ParallelSweepRunner",
    "SimulationOptions",
    "SimulationResult",
    "StochasticSimulator",
    "TauLeapingSimulator",
    "Trajectory",
    "backend_names",
    "cumulative_propensities",
    "integrate_rk45",
    "register_backend",
    "run_seeded",
    "select_reaction",
    "simulate",
    "species_above",
    "species_below",
    "total_above",
    "total_below",
]
