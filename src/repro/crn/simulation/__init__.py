"""Simulation engines for chemical reaction networks."""

from repro.crn.simulation.events import (species_above, species_below,
                                         total_above, total_below)
from repro.crn.simulation.ode import (JACOBIAN_MODES, METHODS, OdeSimulator,
                                      simulate)
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.rk import integrate_rk45
from repro.crn.simulation.sampling import (cumulative_propensities,
                                           select_reaction)
from repro.crn.simulation.ssa import (IncrementalPropensities,
                                      StochasticSimulator)
from repro.crn.simulation.sweep import ParallelSweepRunner, run_seeded
from repro.crn.simulation.tau_leaping import TauLeapingSimulator

__all__ = [
    "IncrementalPropensities",
    "JACOBIAN_MODES",
    "METHODS",
    "OdeSimulator",
    "ParallelSweepRunner",
    "StochasticSimulator",
    "TauLeapingSimulator",
    "Trajectory",
    "cumulative_propensities",
    "integrate_rk45",
    "run_seeded",
    "select_reaction",
    "simulate",
    "species_above",
    "species_below",
    "total_above",
    "total_below",
]
