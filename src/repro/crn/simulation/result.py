"""Trajectory container returned by all simulators."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import SimulationError


@runtime_checkable
class SimulationResult(Protocol):
    """What every engine's result guarantees to campaign scoring code.

    ODE, SSA and tau-leaping all return :class:`Trajectory`, but
    engine-agnostic consumers (the fault-injection campaigns, the
    reporting helpers) should depend only on this protocol: sample
    ``times``, a ``(len(times), n_species)`` ``states`` array, species
    ``names``, name-to-column resolution via :meth:`species_index`, and
    the :meth:`final_state` readout.
    """

    @property
    def times(self) -> np.ndarray: ...  # noqa: E704 (protocol stub)

    @property
    def states(self) -> np.ndarray: ...  # noqa: E704

    @property
    def names(self) -> list[str]: ...  # noqa: E704

    def species_index(self, name: str) -> int: ...  # noqa: E704

    def final_state(self) -> dict[str, float]: ...  # noqa: E704


class Trajectory:
    """Time series of species quantities.

    Attributes
    ----------
    times:
        1-D array of sample times, strictly non-decreasing.
    states:
        2-D array ``(len(times), n_species)``.
    names:
        species names aligned with the state columns.
    """

    def __init__(self, times: np.ndarray, states: np.ndarray,
                 names: Sequence[str], meta: dict | None = None):
        self.times = np.asarray(times, dtype=float)
        self.states = np.asarray(states, dtype=float)
        self.names = list(names)
        self.meta = dict(meta or {})
        if self.states.ndim != 2:
            raise SimulationError("states must be 2-D")
        if self.states.shape != (self.times.size, len(self.names)):
            raise SimulationError(
                f"shape mismatch: times {self.times.shape}, states "
                f"{self.states.shape}, {len(self.names)} names")
        self._index = {name: i for i, name in enumerate(self.names)}

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return self.times.size

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def species_index(self, name: str) -> int:
        """Column index of one species (shared result protocol)."""
        try:
            return self._index[name]
        except KeyError:
            raise SimulationError(f"trajectory has no species {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """Full time series for one species."""
        try:
            return self.states[:, self._index[name]]
        except KeyError:
            raise SimulationError(f"trajectory has no species {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def final(self, name: str | None = None):
        """Final quantity of one species, or the full final state vector."""
        if self.times.size == 0:
            raise SimulationError("empty trajectory has no final state")
        if name is None:
            return self.states[-1].copy()
        return float(self.column(name)[-1])

    def final_state(self) -> dict[str, float]:
        if self.times.size == 0:
            raise SimulationError("empty trajectory has no final state")
        return {name: float(v) for name, v in zip(self.names, self.states[-1])}

    def _check_horizon(self, t_min: float, t_max: float, what: str,
                       clamp: bool) -> None:
        """Reject reads outside the simulated span ``[times[0], t_final]``.

        ``np.interp`` silently clamps to the endpoint values, which used
        to turn a readout schedule outrunning the horizon into plausible
        -- and wrong -- numbers.  A small relative tolerance absorbs
        float fuzz from stitched cycle boundaries; ``clamp=True`` is the
        explicit opt-in for endpoint extension.
        """
        if self.times.size == 0:
            raise SimulationError(f"cannot read {what} of an empty "
                                  f"trajectory")
        if clamp:
            return
        lo, hi = float(self.times[0]), float(self.times[-1])
        slack = 1e-9 * max(1.0, abs(lo), abs(hi))
        if t_min < lo - slack or t_max > hi + slack:
            raise SimulationError(
                f"{what} at t in [{t_min:g}, {t_max:g}] is outside the "
                f"simulated horizon [{lo:g}, {hi:g}]; simulate further "
                f"or pass clamp=True to extend the endpoint values")

    def at(self, t: float, name: str, *, clamp: bool = False) -> float:
        """Linearly interpolated quantity of ``name`` at time ``t``.

        ``t`` must lie within the simulated horizon; reads outside it
        raise :class:`SimulationError` unless ``clamp=True`` explicitly
        requests endpoint extension.
        """
        series = self.column(name)
        self._check_horizon(t, t, f"at({t:g})", clamp)
        return float(np.interp(t, self.times, series))

    def total(self, names: Iterable[str]) -> np.ndarray:
        """Summed time series over a group of species."""
        result = np.zeros_like(self.times)
        for name in names:
            result = result + self.column(name)
        return result

    @property
    def t_final(self) -> float:
        if self.times.size == 0:
            raise SimulationError("empty trajectory has no t_final")
        return float(self.times[-1])

    # -- composition ----------------------------------------------------------

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Append a continuation trajectory (same species set).

        Used by the cycle driver, which integrates phase by phase and
        stitches the pieces together.  A duplicated boundary sample is
        dropped; the tolerance is relative to the boundary time, since
        float spacing at t >> 1 exceeds any fixed absolute cutoff.
        """
        if self.names != other.names:
            raise SimulationError("cannot concat trajectories with "
                                  "different species")
        times = other.times
        states = other.states
        if times.size and self.times.size:
            boundary = self.times[-1]
            if times[0] <= boundary + 1e-12 * max(1.0, abs(boundary)):
                times = times[1:]
                states = states[1:]
        return Trajectory(np.concatenate([self.times, times]),
                          np.vstack([self.states, states]),
                          self.names, {**self.meta, **other.meta})

    def _interp_row(self, t: float) -> np.ndarray:
        """Linearly interpolated full state row at time ``t``."""
        row = np.empty(len(self.names))
        for i in range(len(self.names)):
            row[i] = np.interp(t, self.times, self.states[:, i])
        return row

    def window(self, t0: float, t1: float) -> "Trajectory":
        """Sub-trajectory over ``[t0, t1]`` with interpolated boundaries.

        The boundary samples are linearly interpolated (exact when they
        coincide with existing samples), so the result is never empty: a
        window falling entirely between two samples yields its two
        interpolated endpoints instead of an empty trajectory whose
        ``t_final`` used to crash with a raw ``IndexError``.  The window
        must overlap the simulated span; a disjoint window raises
        :class:`SimulationError`.
        """
        if t1 < t0:
            raise SimulationError(f"window bounds are reversed: "
                                  f"[{t0:g}, {t1:g}]")
        if self.times.size == 0:
            raise SimulationError("cannot window an empty trajectory")
        lo = max(t0, float(self.times[0]))
        hi = min(t1, float(self.times[-1]))
        if lo > hi:
            raise SimulationError(
                f"window [{t0:g}, {t1:g}] does not overlap the "
                f"simulated horizon [{self.times[0]:g}, "
                f"{self.times[-1]:g}]")
        inner = (self.times > lo) & (self.times < hi)
        rows = [self._interp_row(lo)]
        times = [lo]
        if np.any(inner):
            times.extend(self.times[inner].tolist())
            rows.extend(self.states[inner])
        if hi > lo:
            times.append(hi)
            rows.append(self._interp_row(hi))
        return Trajectory(np.asarray(times), np.vstack(rows), self.names,
                          self.meta)

    def resampled(self, times: np.ndarray, *,
                  clamp: bool = False) -> "Trajectory":
        """Linear-interpolation resample onto new time points.

        Every requested time must lie within the simulated horizon
        (raise instead of silently clamping past it); ``clamp=True``
        explicitly opts into endpoint extension.
        """
        times = np.asarray(times, dtype=float)
        if times.size:
            self._check_horizon(float(times.min()), float(times.max()),
                                "resampled()", clamp)
        states = np.empty((times.size, len(self.names)))
        for i in range(len(self.names)):
            states[:, i] = np.interp(times, self.times, self.states[:, i])
        return Trajectory(times, states, self.names, self.meta)

    # -- export ---------------------------------------------------------------

    def to_csv(self, path, species: Sequence[str] | None = None) -> None:
        names = list(species) if species else self.names
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("time," + ",".join(names) + "\n")
            columns = [self.column(n) for n in names]
            for i, t in enumerate(self.times):
                row = ",".join(f"{col[i]:.8g}" for col in columns)
                handle.write(f"{t:.8g},{row}\n")

    def __repr__(self) -> str:
        return (f"<Trajectory {len(self)} samples, {len(self.names)} species, "
                f"t in [{self.times[0] if len(self) else 0:g}, "
                f"{self.t_final if len(self) else 0:g}]>")
