"""One options bag for every simulation engine.

:class:`SimulationOptions` collects the tuning knobs of all three engines
(deterministic ODE, exact SSA, tau-leaping) behind one dataclass so that
callers -- the :func:`repro.simulate` facade, the fault-injection
campaigns, benchmarks and the CLI -- stop re-plumbing engine-specific
keyword arguments.  Fields that an engine does not use are ignored by
that engine (they are *hints*, not commands): ``seed`` does nothing for
the deterministic solver, ``jacobian`` nothing for SSA.  Fields that an
engine cannot honour at all (``events`` under stochastic semantics)
raise :class:`~repro.errors.SimulationError` at dispatch time instead of
being silently dropped.
"""

from __future__ import annotations

import dataclasses
import difflib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError

#: Engine names accepted by the :func:`repro.simulate` facade.
ENGINES = ("ode", "ssa", "tau")

#: Version tag of the canonical options serialisation (see
#: :meth:`SimulationOptions.canonical_dict`).  Bump only with a
#: migration path: content-addressed caches key on the canonical form.
OPTIONS_SCHEMA = "repro.options/1"

#: Execution backends accepted by :attr:`SimulationOptions.backend`.
#: ``reference`` is the per-trial scalar engines; ``batch`` routes
#: exact SSA through the structure-of-arrays ensemble engine
#: (:mod:`repro.crn.simulation.batch`), which is seeded-bitwise
#: identical to the reference.  Engines the batch backend does not
#: vectorise (ODE, tau-leaping) fall back to the reference path.
BACKENDS = ("reference", "batch")


@dataclass(frozen=True)
class SimulationOptions:
    """Engine-agnostic simulation settings.

    Parameters
    ----------
    t_start:
        integration start time; the returned trajectory's grid spans
        ``[t_start, t_final]`` for every engine.
    initial:
        full state vector or a mapping of overrides on top of the
        network's declared initial quantities.
    n_samples:
        sample-grid size; ``None`` keeps each engine's default (400 for
        the ODE solver, 200 for the stochastic engines).
    rates:
        explicit per-reaction rate vector overriding the scheme (the
        rate-robustness and fault-injection experiments use this).
    seed:
        RNG seed (int, ``numpy.random.Generator`` or ``None``) for the
        stochastic engines; ignored by the deterministic solver.
    solver:
        ODE method (one of :data:`repro.crn.simulation.ode.METHODS`).
    rtol / atol:
        ODE solver tolerances.
    jacobian:
        ODE Jacobian mode (:data:`repro.crn.simulation.ode.JACOBIAN_MODES`).
    events / event_hint:
        terminal-event functions and a time-to-event estimate for the
        ODE solver's chunked event search (ODE only).
    max_events:
        stochastic step budget per call; ``None`` keeps the engine
        default (50M SSA events, 5M tau-leaping steps).  Exceeding it
        raises :class:`~repro.errors.SimulationError`.
    volume:
        reaction volume for converting deterministic rate constants to
        stochastic propensity constants.
    epsilon / n_critical:
        tau-leaping step-selection parameters.
    tracer / metrics:
        optional telemetry hooks (see :mod:`repro.obs`).
    backend:
        execution backend (one of :data:`BACKENDS`).  ``"batch"``
        routes exact SSA through the structure-of-arrays ensemble
        engine -- bitwise identical trajectories on matched seeds,
        much faster for ensembles; engines it does not vectorise fall
        back to the reference implementation.
    """

    # -- shared ----------------------------------------------------------
    t_start: float = 0.0
    initial: Mapping[str, float] | Any | None = None
    n_samples: int | None = None
    rates: Any | None = None
    seed: Any | None = None
    tracer: Any = None
    metrics: Any = None
    backend: str = "reference"
    # -- deterministic (ODE) --------------------------------------------
    solver: str = "LSODA"
    rtol: float = 1e-7
    atol: float = 1e-9
    jacobian: str = "auto"
    events: Sequence | None = None
    event_hint: float | None = None
    # -- stochastic ------------------------------------------------------
    max_events: int | None = None
    volume: float = 1.0
    # -- tau-leaping -----------------------------------------------------
    epsilon: float = 0.03
    n_critical: int = 10

    def replace(self, **changes) -> "SimulationOptions":
        """A copy with the given fields changed.

        Unknown field names raise :class:`TypeError` naming the nearest
        valid field -- misspelled options must never be silently
        ignored, and the error should hand back the fix.
        """
        valid = sorted(f.name for f in dataclasses.fields(self))
        unknown = sorted(set(changes) - set(valid))
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, valid, n=1)
                hints.append(f"{name!r} (did you mean {close[0]!r}?)"
                             if close else repr(name))
            raise TypeError(
                f"unknown simulation option(s): {', '.join(hints)}; "
                f"valid options are {valid}")
        return dataclasses.replace(self, **changes)

    def canonical_dict(self) -> dict:
        """The cache-keyable serialisation of these options.

        Only fields that differ from the defaults appear, so adding a
        new defaulted option later does not invalidate every existing
        content-addressed cache entry.  Fields that cannot soundly take
        part in a cache key raise
        :class:`~repro.errors.SimulationError`:

        * ``tracer`` / ``metrics`` / ``events`` hold live objects with
          no stable serialisation;
        * ``seed`` is keyed separately by the serving layer (one job
          may fan out over many seeds);
        * ``rates`` vectors and array-shaped ``initial`` are positional
          -- they index the *declaration* order of reactions/species,
          which the canonical network form deliberately forgets.
          Mapping-shaped ``initial`` overrides (name -> value) are
          order-free and serialise fine.
        """
        for name in ("tracer", "metrics", "events", "seed", "rates"):
            if getattr(self, name) is not None:
                raise SimulationError(
                    f"SimulationOptions.{name} cannot take part in a "
                    f"canonical options dict; clear it and pass the "
                    f"value through the serving job spec instead")
        payload: dict = {"schema": OPTIONS_SCHEMA}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "initial":
                if value is None:
                    continue
                if not isinstance(value, Mapping):
                    raise SimulationError(
                        "SimulationOptions.initial must be a name -> "
                        "value mapping to take part in a canonical "
                        "options dict; positional vectors depend on "
                        "species declaration order")
                payload["initial"] = {
                    str(name): float(amount)
                    for name, amount in sorted(value.items())}
                continue
            if value == field.default:
                continue
            if not isinstance(value, (bool, int, float, str)):
                raise SimulationError(
                    f"SimulationOptions.{field.name}={value!r} is not "
                    f"canonically serialisable (expected a plain "
                    f"bool/int/float/str)")
            payload[field.name] = value
        return payload
