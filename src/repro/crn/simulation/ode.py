"""Deterministic mass-action ODE simulation.

This is the paper's own validation method: "We validate our designs through
ODE simulations of the mass-action chemical kinetics."  The default solver
is scipy's LSODA (the networks are stiff by construction: every design mixes
fast and slow rates separated by three orders of magnitude); an internal
Dormand-Prince integrator is available as an independent cross-check.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from time import perf_counter

import numpy as np
from scipy.integrate import odeint, solve_ivp

from repro.crn.kinetics import MassActionKinetics, build_kinetics
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.rk import integrate_rk45
from repro.errors import SimulationError
from repro.obs.metrics import ensure_metrics
from repro.obs.tracer import ensure_tracer

#: Solver methods accepted by :class:`OdeSimulator`.
METHODS = ("LSODA", "BDF", "Radau", "RK45", "internal-rk45")

#: Jacobian handling modes accepted by :class:`OdeSimulator`.
JACOBIAN_MODES = ("auto", "dense", "sparse", "sparsity", "none")

#: ``auto`` switches BDF/Radau to sparse Jacobian handling at this
#: species count (below it dense LU is cheaper than sparse bookkeeping).
_SPARSE_AUTO_THRESHOLD = 64


class OdeSimulator:
    """Deterministic simulator for one network under one rate resolution.

    Parameters
    ----------
    network:
        the reaction network.
    scheme:
        rate scheme resolving symbolic categories; defaults to the paper's
        ``fast=1000, slow=1``.
    rates:
        explicit per-reaction rate vector overriding ``scheme`` (used by the
        jittered-rate robustness experiments).
    method:
        one of :data:`METHODS`.
    jacobian:
        one of :data:`JACOBIAN_MODES`.  ``dense`` passes the analytic
        dense Jacobian; ``sparse`` passes a sparse-matrix-returning
        Jacobian (BDF/Radau then use sparse LU); ``sparsity`` passes only
        the nonzero pattern via ``jac_sparsity`` (finite-difference
        entries, sparse solves); ``none`` lets the solver finite-
        difference a dense Jacobian.  ``auto`` (default) picks
        ``sparsity`` for BDF/Radau on networks with at least 64 species
        and ``dense`` otherwise.  RK45 methods ignore the setting.
        ``auto`` deliberately avoids the analytic sparse callable: with
        identical Jacobian values, BDF's step control is sensitive to
        the sparse-LU backend on stiff compiled networks at loose
        tolerances (see ``tests/crn/test_ode.py``), while the
        pattern-only path keeps both the sparse solves and the dense
        path's step sequence robustness.
    tracer / metrics:
        optional :class:`~repro.obs.tracer.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry`; each ``simulate``
        call then records a ``solver`` span and solver-effort counters
        (``ode.nfev``, ``ode.njev``, event firings, wall time).  Both
        default to process-wide null singletons: the disabled path is a
        single attribute check.
    """

    def __init__(self, network: Network, scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None, method: str = "LSODA",
                 rtol: float = 1e-7, atol: float = 1e-9,
                 jacobian: str = "auto", tracer=None, metrics=None):
        if method not in METHODS:
            raise SimulationError(f"unknown method {method!r}; "
                                  f"expected one of {METHODS}")
        if jacobian not in JACOBIAN_MODES:
            raise SimulationError(f"unknown jacobian mode {jacobian!r}; "
                                  f"expected one of {JACOBIAN_MODES}")
        network.validate()
        self.network = network
        self.scheme = scheme or RateScheme()
        self.kinetics: MassActionKinetics = build_kinetics(
            network, self.scheme, rates)
        self.method = method
        self.rtol = rtol
        self.atol = atol
        self.jacobian_mode = jacobian
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)

    def _jacobian_options(self) -> dict:
        """`solve_ivp` keyword arguments implementing ``jacobian_mode``.

        Note scipy silently ignores ``jac_sparsity`` whenever a callable
        ``jac`` is supplied, so the modes are mutually exclusive here.
        """
        mode = self.jacobian_mode
        if mode == "none":
            return {}
        sparse_capable = self.method in ("BDF", "Radau")
        if mode == "auto":
            mode = ("sparsity" if sparse_capable
                    and self.network.n_species >= _SPARSE_AUTO_THRESHOLD
                    else "dense")
        if mode == "sparsity":
            if sparse_capable:
                return {"jac_sparsity": self.kinetics.jacobian_sparsity()}
            mode = "dense"  # LSODA has no jac_sparsity support
        if mode == "sparse" and sparse_capable:
            return {"jac": self.kinetics.jacobian_sparse}
        return {"jac": self.kinetics.jacobian}

    # -- single integration ----------------------------------------------------

    def simulate(self, t_final: float, *, t_start: float = 0.0,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 400,
                 events: Sequence | None = None,
                 event_hint: float | None = None) -> Trajectory:
        """Integrate from ``t_start`` to ``t_final``.

        ``initial`` may be a full state vector or a mapping of overrides on
        top of the network's declared initial quantities.  If a terminal
        event fires, the trajectory ends at the event time and
        ``trajectory.meta["event"]`` records which event index fired.

        ``event_hint`` is an optional estimate of the time-to-event.  The
        LSODA fast path (see :meth:`_simulate_lsoda`) integrates in chunks
        sized from the hint, so a good estimate (e.g. the previous cycle's
        segment duration) avoids integrating far past the event.
        """
        if t_final <= t_start:
            raise SimulationError("t_final must exceed t_start")
        x0 = self._initial_state(initial)
        t_eval = np.linspace(t_start, t_final, max(int(n_samples), 2))
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0

        if self.method == "LSODA" and (
                not events
                or (len(events) == 1
                    and getattr(events[0], "terminal", False)
                    and getattr(events[0], "direction", 0.0) != 0.0)):
            return self._simulate_lsoda(
                t_start, t_final, x0, t_eval,
                events[0] if events else None, event_hint,
                telemetry, wall_start)

        if self.method == "internal-rk45":
            if events:
                raise SimulationError(
                    "internal-rk45 does not support events")
            stats: dict | None = {} if telemetry else None
            times, states = integrate_rk45(
                self.kinetics.rhs, (t_start, t_final), x0,
                rtol=self.rtol, atol=self.atol, dense_times=t_eval,
                stats=stats)
            trajectory = Trajectory(times, states,
                                    self.network.species_names)
            if telemetry:
                self._record_call(trajectory, perf_counter() - wall_start,
                                  t_start, stats or {})
            return trajectory

        kwargs = {}
        if self.method in ("BDF", "Radau", "LSODA"):
            kwargs.update(self._jacobian_options())
        solution = solve_ivp(
            self.kinetics.rhs, (t_start, t_final), x0,
            method=self.method, t_eval=t_eval, events=events,
            rtol=self.rtol, atol=self.atol, **kwargs)
        if not solution.success and solution.status != 1:
            raise SimulationError(f"ODE solver failed: {solution.message}")

        times = solution.t
        states = np.maximum(solution.y.T, 0.0)
        meta: dict = {}
        if solution.status == 1 and events:
            # A terminal event fired: record which, append the event state
            # unless the solver already sampled that time (the last t_eval
            # point can coincide with the event to within float spacing).
            for index, (t_events, x_events) in enumerate(
                    zip(solution.t_events, solution.y_events)):
                if len(t_events):
                    t_event = float(t_events[-1])
                    meta["event"] = index
                    meta["event_time"] = t_event
                    if (times.size == 0
                            or abs(times[-1] - t_event)
                            > 1e-12 * max(1.0, abs(t_event))):
                        times = np.append(times, t_event)
                        states = np.vstack(
                            [states, np.maximum(x_events[-1], 0.0)])
                    break
        trajectory = Trajectory(times, states, self.network.species_names,
                                meta)
        if telemetry:
            self._record_call(
                trajectory, perf_counter() - wall_start, t_start,
                {"nfev": int(solution.nfev),
                 "njev": int(solution.njev or 0),
                 "nlu": int(solution.nlu or 0)})
        return trajectory

    # -- LSODA fast path ---------------------------------------------------------

    def _simulate_lsoda(self, t_start: float, t_final: float,
                        x0: np.ndarray, t_eval: np.ndarray, event,
                        event_hint: float | None, telemetry: bool,
                        wall_start: float) -> Trajectory:
        """Integrate with ``scipy.integrate.odeint`` (LSODA in Fortran).

        ``solve_ivp``'s LSODA wrapper steps through Python once per solver
        step -- for the machine's stiff cycle segments that per-step
        overhead, plus the event machinery evaluated on every step,
        dominates the wall time.  ``odeint`` hands the whole sample grid to
        the Fortran core in one call, so this path costs one Python call
        per *span* instead of per step.

        A single terminal directional event (the only kind the machine
        drivers use) is located by bracketing: integrate chunks sized from
        ``event_hint`` (doubling while nothing fires), watch the event
        function's sign on each chunk's sample grid, then shrink the
        bracketing interval with short re-integrations and interpolate the
        crossing.  The located time agrees with solve_ivp's root-finding
        to well below the solver tolerances.
        """
        stats = {"nfev": 0, "njev": 0}
        if event is None:
            states = self._odeint_span(x0, t_eval, stats)
            times, states, meta = t_eval, states, {}
        else:
            times, states, meta = self._locate_event(
                t_start, t_final, x0, t_eval, event, event_hint, stats)
        trajectory = Trajectory(times, np.maximum(states, 0.0),
                                self.network.species_names, meta)
        if telemetry:
            self._record_call(trajectory, perf_counter() - wall_start,
                              t_start, stats)
        return trajectory

    def _odeint_span(self, x0: np.ndarray, t_points: np.ndarray,
                     stats: dict) -> np.ndarray:
        """States at ``t_points`` (strictly increasing, ``t_points[0]`` is
        the initial time) integrating from ``x0``; accumulates solver
        effort into ``stats``."""
        jac = (self.kinetics.jacobian
               if self.jacobian_mode != "none" else None)
        states, info = odeint(
            self.kinetics.rhs, x0, t_points, Dfun=jac, tfirst=True,
            rtol=self.rtol, atol=self.atol, full_output=True,
            mxstep=5_000_000)
        if info["message"] != "Integration successful.":
            raise SimulationError(
                f"ODE solver failed: {info['message']}")
        stats["nfev"] += int(info["nfe"][-1])
        stats["njev"] += int(info["nje"][-1])
        return states

    @staticmethod
    def _first_crossing(g: np.ndarray, direction: float) -> int | None:
        """Index ``k`` of the first sample pair bracketing a crossing.

        Matches solve_ivp's semantics for directional events except that
        the *from* side must be strictly on the wrong side of zero, so an
        initial state sitting exactly on the event surface does not
        re-fire (the machine's boundary condition holds exactly at each
        fresh boundary).
        """
        if direction > 0:
            hits = np.nonzero((g[:-1] < 0.0) & (g[1:] >= 0.0))[0]
        else:
            hits = np.nonzero((g[:-1] > 0.0) & (g[1:] <= 0.0))[0]
        return int(hits[0]) if hits.size else None

    @staticmethod
    def _rows_for(pts: np.ndarray, states: np.ndarray,
                  targets: np.ndarray) -> np.ndarray:
        """Rows of ``states`` at the sample points nearest ``targets``."""
        idx = np.clip(pts.searchsorted(targets), 1, pts.size - 1)
        idx = np.where(np.abs(pts[idx - 1] - targets)
                       <= np.abs(pts[idx] - targets), idx - 1, idx)
        return states[idx]

    def _locate_event(self, t_start: float, t_final: float,
                      x0: np.ndarray, t_eval: np.ndarray, event,
                      event_hint: float | None, stats: dict
                      ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Chunked integrate-and-bracket search for one terminal event."""
        direction = float(event.direction)
        span = t_final - t_start
        # The event function can hold the triggering sign only briefly
        # (the machine's boundary condition is satisfied for a fraction
        # of a phase), so the sign watch needs sampling much finer than
        # the window: 65 points per chunk, chunks starting well below the
        # span (the span is a stall timeout, not a dynamics scale) and
        # growing no further than 8x so the sample spacing stays bounded.
        chunk = min(span, 1.5 * event_hint) if event_hint else span / 256.0
        chunk_cap = min(span, 8.0 * chunk)
        tiny = 1e-12 * max(1.0, abs(t_final))
        kept_t: list[float] = [t_start]
        kept_x: list[np.ndarray] = [x0]
        a, xa = t_start, x0
        bracket = None
        while a < t_final - tiny:
            b = min(a + chunk, t_final)
            inside = t_eval[(t_eval > a + tiny) & (t_eval <= b + tiny)]
            pts = np.unique(np.concatenate(
                [inside, np.linspace(a, b, 65)]))
            pts = pts[np.concatenate([[True], np.diff(pts) > tiny])]
            states = self._odeint_span(xa, pts, stats)
            g = np.array([event(float(t), x)
                          for t, x in zip(pts, states)])
            k = self._first_crossing(g, direction)
            grid_rows = self._rows_for(pts, states, inside)
            if k is None:
                kept_t.extend(inside.tolist())
                kept_x.extend(grid_rows)
                a, xa = float(pts[-1]), states[-1]
                chunk = min(2.0 * chunk, chunk_cap)
                continue
            bracket = (float(pts[k]), float(pts[k + 1]),
                       states[k], float(g[k]), float(g[k + 1]))
            keep = inside <= bracket[0] + tiny
            kept_t.extend(inside[keep].tolist())
            kept_x.extend(grid_rows[keep])
            break
        if bracket is None:
            return (np.array(kept_t), np.vstack(kept_x), {})

        ta, tb, ya, ga, gb = bracket
        for _ in range(3):
            if tb - ta <= 64.0 * tiny:
                break
            sub = np.linspace(ta, tb, 13)
            states = self._odeint_span(ya, sub, stats)
            g = np.array([event(float(t), x)
                          for t, x in zip(sub, states)])
            g[0] = ga  # re-evaluation at ta can differ by rounding
            k = self._first_crossing(g, direction)
            if k is None:
                break
            ta, tb = float(sub[k]), float(sub[k + 1])
            ya, ga, gb = states[k], float(g[k]), float(g[k + 1])
        fraction = 1.0 if gb == ga else ga / (ga - gb)
        t_event = ta + (tb - ta) * min(max(fraction, 0.0), 1.0)
        if t_event - ta <= tiny:
            x_event = ya
        else:
            x_event = self._odeint_span(
                ya, np.array([ta, t_event]), stats)[-1]
        meta = {"event": 0, "event_time": t_event}
        if abs(kept_t[-1] - t_event) > 1e-12 * max(1.0, abs(t_event)):
            kept_t.append(t_event)
            kept_x.append(x_event)
        return np.array(kept_t), np.vstack(kept_x), meta

    def _record_call(self, trajectory: Trajectory, wall: float,
                     t_start: float, stats: dict) -> None:
        """Solver-effort bookkeeping for one completed ``simulate``."""
        nfev = int(stats.get("nfev", 0))
        njev = int(stats.get("njev", 0))
        event_fired = "event" in trajectory.meta
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("ode.calls")
            metrics.inc("ode.nfev", nfev)
            metrics.inc("ode.njev", njev)
            metrics.inc("ode.nlu", stats.get("nlu", 0))
            if "accepted" in stats:
                metrics.inc("ode.steps_accepted", stats["accepted"])
                metrics.inc("ode.steps_rejected",
                            stats.get("rejected", 0))
            if event_fired:
                metrics.inc("ode.events")
            # LSODA switches to its stiff (BDF) mode before it ever asks
            # for a Jacobian, so njev > 0 is the observable proxy for a
            # stiff-fallback activation.
            if self.method == "LSODA" and njev:
                metrics.inc("ode.stiff_activations")
            metrics.observe("ode.wall_seconds", wall)
        if self.tracer.enabled:
            args = {"nfev": nfev, "wall": round(wall, 6)}
            if njev:
                args["njev"] = njev
            if stats.get("nlu"):
                args["nlu"] = int(stats["nlu"])
            if "accepted" in stats:
                args["accepted"] = int(stats["accepted"])
                args["rejected"] = int(stats.get("rejected", 0))
            if event_fired:
                args["event"] = trajectory.meta["event"]
            self.tracer.emit_span(f"solve:{self.method}", "solver",
                                  t_start, trajectory.t_final, args)

    def steady_state(self, t_final: float = 1e4,
                     initial: Mapping[str, float] | None = None,
                     settle_tol: float = 1e-8) -> dict[str, float]:
        """Integrate long and return the (approximately) settled state.

        Raises :class:`SimulationError` if the state is still moving faster
        than ``settle_tol`` (relative) at ``t_final``.
        """
        trajectory = self.simulate(t_final, initial=initial, n_samples=50)
        x = trajectory.states[-1]
        rhs = self.kinetics.rhs(trajectory.t_final, x)
        scale = np.maximum(np.abs(x), 1.0)
        if np.max(np.abs(rhs) / scale) > settle_tol:
            raise SimulationError(
                f"state not settled at t={t_final:g}: max relative rate "
                f"{np.max(np.abs(rhs) / scale):.2e}")
        return trajectory.final_state()

    # -- helpers ----------------------------------------------------------------

    def _initial_state(self, initial) -> np.ndarray:
        if initial is None:
            return self.network.initial_vector()
        if isinstance(initial, Mapping):
            return self.network.initial_vector(initial)
        x0 = np.asarray(initial, dtype=float)
        if x0.shape != (self.network.n_species,):
            raise SimulationError(
                f"initial state has shape {x0.shape}, expected "
                f"({self.network.n_species},)")
        return x0.copy()


#: Keyword arguments accepted by the legacy :func:`simulate` helper:
#: constructor options plus per-call :meth:`OdeSimulator.simulate` ones.
_SIMULATE_KWARGS = frozenset({
    "method", "rtol", "atol", "rates", "jacobian", "tracer", "metrics",
    "t_start", "initial", "n_samples", "events", "event_hint",
})


def simulate(network: Network, t_final: float,
             scheme: RateScheme | None = None, **kwargs) -> Trajectory:
    """One-shot convenience wrapper around :class:`OdeSimulator`.

    Prefer the engine-agnostic :func:`repro.simulate` facade.  Unknown
    keyword arguments raise :class:`TypeError` -- this helper used to
    silently accept misspelled options via ``kwargs.pop`` defaults.
    """
    unknown = set(kwargs) - _SIMULATE_KWARGS
    if unknown:
        raise TypeError(
            f"simulate() got unknown option(s): {sorted(unknown)}; "
            f"valid options are {sorted(_SIMULATE_KWARGS)}")
    simulator = OdeSimulator(
        network, scheme, rates=kwargs.pop("rates", None),
        method=kwargs.pop("method", "LSODA"),
        rtol=kwargs.pop("rtol", 1e-7), atol=kwargs.pop("atol", 1e-9),
        jacobian=kwargs.pop("jacobian", "auto"),
        tracer=kwargs.pop("tracer", None),
        metrics=kwargs.pop("metrics", None))
    return simulator.simulate(t_final, **kwargs)
