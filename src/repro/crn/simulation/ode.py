"""Deterministic mass-action ODE simulation.

This is the paper's own validation method: "We validate our designs through
ODE simulations of the mass-action chemical kinetics."  The default solver
is scipy's LSODA (the networks are stiff by construction: every design mixes
fast and slow rates separated by three orders of magnitude); an internal
Dormand-Prince integrator is available as an independent cross-check.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from time import perf_counter

import numpy as np
from scipy.integrate import solve_ivp

from repro.crn.kinetics import MassActionKinetics, build_kinetics
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.rk import integrate_rk45
from repro.errors import SimulationError
from repro.obs.metrics import ensure_metrics
from repro.obs.tracer import ensure_tracer

#: Solver methods accepted by :class:`OdeSimulator`.
METHODS = ("LSODA", "BDF", "Radau", "RK45", "internal-rk45")


class OdeSimulator:
    """Deterministic simulator for one network under one rate resolution.

    Parameters
    ----------
    network:
        the reaction network.
    scheme:
        rate scheme resolving symbolic categories; defaults to the paper's
        ``fast=1000, slow=1``.
    rates:
        explicit per-reaction rate vector overriding ``scheme`` (used by the
        jittered-rate robustness experiments).
    method:
        one of :data:`METHODS`.
    tracer / metrics:
        optional :class:`~repro.obs.tracer.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry`; each ``simulate``
        call then records a ``solver`` span and solver-effort counters
        (``ode.nfev``, ``ode.njev``, event firings, wall time).  Both
        default to process-wide null singletons: the disabled path is a
        single attribute check.
    """

    def __init__(self, network: Network, scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None, method: str = "LSODA",
                 rtol: float = 1e-7, atol: float = 1e-9,
                 tracer=None, metrics=None):
        if method not in METHODS:
            raise SimulationError(f"unknown method {method!r}; "
                                  f"expected one of {METHODS}")
        network.validate()
        self.network = network
        self.scheme = scheme or RateScheme()
        self.kinetics: MassActionKinetics = build_kinetics(
            network, self.scheme, rates)
        self.method = method
        self.rtol = rtol
        self.atol = atol
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)

    # -- single integration ----------------------------------------------------

    def simulate(self, t_final: float, *, t_start: float = 0.0,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 400,
                 events: Sequence | None = None) -> Trajectory:
        """Integrate from ``t_start`` to ``t_final``.

        ``initial`` may be a full state vector or a mapping of overrides on
        top of the network's declared initial quantities.  If a terminal
        event fires, the trajectory ends at the event time and
        ``trajectory.meta["event"]`` records which event index fired.
        """
        if t_final <= t_start:
            raise SimulationError("t_final must exceed t_start")
        x0 = self._initial_state(initial)
        t_eval = np.linspace(t_start, t_final, max(int(n_samples), 2))
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0

        if self.method == "internal-rk45":
            if events:
                raise SimulationError(
                    "internal-rk45 does not support events")
            stats: dict | None = {} if telemetry else None
            times, states = integrate_rk45(
                self.kinetics.rhs, (t_start, t_final), x0,
                rtol=self.rtol, atol=self.atol, dense_times=t_eval,
                stats=stats)
            trajectory = Trajectory(times, states,
                                    self.network.species_names)
            if telemetry:
                self._record_call(trajectory, perf_counter() - wall_start,
                                  t_start, stats or {})
            return trajectory

        kwargs = {}
        if self.method in ("BDF", "Radau", "LSODA"):
            kwargs["jac"] = self.kinetics.jacobian
        solution = solve_ivp(
            self.kinetics.rhs, (t_start, t_final), x0,
            method=self.method, t_eval=t_eval, events=events,
            rtol=self.rtol, atol=self.atol, **kwargs)
        if not solution.success and solution.status != 1:
            raise SimulationError(f"ODE solver failed: {solution.message}")

        times = solution.t
        states = np.maximum(solution.y.T, 0.0)
        meta: dict = {}
        if solution.status == 1 and events:
            # A terminal event fired: append the event state, record which.
            for index, (t_events, x_events) in enumerate(
                    zip(solution.t_events, solution.y_events)):
                if len(t_events):
                    meta["event"] = index
                    meta["event_time"] = float(t_events[-1])
                    times = np.append(times, t_events[-1])
                    states = np.vstack(
                        [states, np.maximum(x_events[-1], 0.0)])
                    break
        trajectory = Trajectory(times, states, self.network.species_names,
                                meta)
        if telemetry:
            self._record_call(
                trajectory, perf_counter() - wall_start, t_start,
                {"nfev": int(solution.nfev),
                 "njev": int(solution.njev or 0),
                 "nlu": int(solution.nlu or 0)})
        return trajectory

    def _record_call(self, trajectory: Trajectory, wall: float,
                     t_start: float, stats: dict) -> None:
        """Solver-effort bookkeeping for one completed ``simulate``."""
        nfev = int(stats.get("nfev", 0))
        njev = int(stats.get("njev", 0))
        event_fired = "event" in trajectory.meta
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("ode.calls")
            metrics.inc("ode.nfev", nfev)
            metrics.inc("ode.njev", njev)
            metrics.inc("ode.nlu", stats.get("nlu", 0))
            if "accepted" in stats:
                metrics.inc("ode.steps_accepted", stats["accepted"])
                metrics.inc("ode.steps_rejected",
                            stats.get("rejected", 0))
            if event_fired:
                metrics.inc("ode.events")
            # LSODA switches to its stiff (BDF) mode before it ever asks
            # for a Jacobian, so njev > 0 is the observable proxy for a
            # stiff-fallback activation.
            if self.method == "LSODA" and njev:
                metrics.inc("ode.stiff_activations")
            metrics.observe("ode.wall_seconds", wall)
        if self.tracer.enabled:
            args = {"nfev": nfev, "wall": round(wall, 6)}
            if njev:
                args["njev"] = njev
            if stats.get("nlu"):
                args["nlu"] = int(stats["nlu"])
            if "accepted" in stats:
                args["accepted"] = int(stats["accepted"])
                args["rejected"] = int(stats.get("rejected", 0))
            if event_fired:
                args["event"] = trajectory.meta["event"]
            self.tracer.emit_span(f"solve:{self.method}", "solver",
                                  t_start, trajectory.t_final, args)

    def steady_state(self, t_final: float = 1e4,
                     initial: Mapping[str, float] | None = None,
                     settle_tol: float = 1e-8) -> dict[str, float]:
        """Integrate long and return the (approximately) settled state.

        Raises :class:`SimulationError` if the state is still moving faster
        than ``settle_tol`` (relative) at ``t_final``.
        """
        trajectory = self.simulate(t_final, initial=initial, n_samples=50)
        x = trajectory.states[-1]
        rhs = self.kinetics.rhs(trajectory.t_final, x)
        scale = np.maximum(np.abs(x), 1.0)
        if np.max(np.abs(rhs) / scale) > settle_tol:
            raise SimulationError(
                f"state not settled at t={t_final:g}: max relative rate "
                f"{np.max(np.abs(rhs) / scale):.2e}")
        return trajectory.final_state()

    # -- helpers ----------------------------------------------------------------

    def _initial_state(self, initial) -> np.ndarray:
        if initial is None:
            return self.network.initial_vector()
        if isinstance(initial, Mapping):
            return self.network.initial_vector(initial)
        x0 = np.asarray(initial, dtype=float)
        if x0.shape != (self.network.n_species,):
            raise SimulationError(
                f"initial state has shape {x0.shape}, expected "
                f"({self.network.n_species},)")
        return x0.copy()


def simulate(network: Network, t_final: float,
             scheme: RateScheme | None = None, **kwargs) -> Trajectory:
    """One-shot convenience wrapper around :class:`OdeSimulator`."""
    method = kwargs.pop("method", "LSODA")
    rtol = kwargs.pop("rtol", 1e-7)
    atol = kwargs.pop("atol", 1e-9)
    rates = kwargs.pop("rates", None)
    tracer = kwargs.pop("tracer", None)
    metrics = kwargs.pop("metrics", None)
    simulator = OdeSimulator(network, scheme, rates=rates, method=method,
                             rtol=rtol, atol=atol, tracer=tracer,
                             metrics=metrics)
    return simulator.simulate(t_final, **kwargs)
