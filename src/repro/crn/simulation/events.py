"""Event functions for piecewise integration.

Events are callables ``event(t, x) -> float`` whose sign change stops the
integrator (scipy ``solve_ivp`` semantics).  The cycle driver uses them to
detect phase completion -- e.g. "total red signal mass has drained below a
threshold" -- without assuming anything about absolute phase durations,
which are rate-dependent even though the computed values are not.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.crn.network import Network

Event = Callable[[float, np.ndarray], float]


def _mark_terminal(event: Event, terminal: bool, direction: float) -> Event:
    event.terminal = terminal          # type: ignore[attr-defined]
    event.direction = direction        # type: ignore[attr-defined]
    return event


def species_below(network: Network, name: str, threshold: float,
                  terminal: bool = True) -> Event:
    """Fires when a species quantity falls below ``threshold``."""
    index = network.species_index(name)

    def event(t: float, x: np.ndarray) -> float:
        return x[index] - threshold

    return _mark_terminal(event, terminal, direction=-1.0)


def species_above(network: Network, name: str, threshold: float,
                  terminal: bool = True) -> Event:
    """Fires when a species quantity rises above ``threshold``."""
    index = network.species_index(name)

    def event(t: float, x: np.ndarray) -> float:
        return x[index] - threshold

    return _mark_terminal(event, terminal, direction=1.0)


def total_below(network: Network, names: Iterable[str], threshold: float,
                terminal: bool = True) -> Event:
    """Fires when the summed quantity of a species group drains below
    ``threshold``.  Used for "category empty" phase detection."""
    indices = [network.species_index(name) for name in names]

    def event(t: float, x: np.ndarray) -> float:
        return float(x[indices].sum()) - threshold

    return _mark_terminal(event, terminal, direction=-1.0)


def total_above(network: Network, names: Iterable[str], threshold: float,
                terminal: bool = True) -> Event:
    """Fires when the summed quantity of a species group exceeds
    ``threshold``."""
    indices = [network.species_index(name) for name in names]

    def event(t: float, x: np.ndarray) -> float:
        return float(x[indices].sum()) - threshold

    return _mark_terminal(event, terminal, direction=1.0)
