"""Approximate stochastic simulation by tau-leaping.

Explicit tau-leaping with the Cao-Gillespie-Petzold step selection and
rejection of leaps that would drive any count negative (fall back to exact
SSA steps when propensities are tiny or a leap is rejected repeatedly).
Used by the scaling benchmark to simulate large-count designs much faster
than exact SSA while keeping discrete semantics.

The exact-SSA fallback shares the incremental propensity state and the
cumulative-sum selection draw with :class:`StochasticSimulator`, and it
fills the sample grid *inside* each burst, so recorded samples reflect
the state that actually held at each sample time (previously the caller
back-filled the whole burst with the end-of-burst counts).
"""

from __future__ import annotations

from collections.abc import Mapping
from time import perf_counter

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.sampling import select_reaction
from repro.crn.simulation.ssa import IncrementalPropensities, \
    StochasticSimulator
from repro.errors import SimulationError


class TauLeapingSimulator(StochasticSimulator):
    """Tau-leaping variant of :class:`StochasticSimulator`.

    The structure-of-arrays ensemble backend cannot vectorise the
    adaptive leap-size control flow while preserving the seeded draw
    order, so tau-leaping ensembles always execute on the reference
    per-run path whatever ``backend`` a caller selects.  The exact-SSA
    fallback bursts share :class:`IncrementalPropensities` with the SSA
    engine, so they inherit its clamped, periodically-rebuilt
    propensity updates.
    """

    _batch_kind = "tau"
    _supports_batch_ensembles = False

    def __init__(self, network: Network, scheme: RateScheme | None = None,
                 epsilon: float = 0.03, n_critical: int = 10, **kwargs):
        super().__init__(network, scheme, **kwargs)
        if not 0 < epsilon < 1:
            raise SimulationError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.n_critical = n_critical

    def _clone_spec(self) -> dict:
        spec = super()._clone_spec()
        spec["extra"] = {"epsilon": self.epsilon,
                         "n_critical": self.n_critical}
        return spec

    def simulate(self, t_final: float, *, t_start: float = 0.0,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 200,
                 max_events: int = 5_000_000) -> Trajectory:
        """Run one tau-leaping realisation on a uniform grid.

        ``max_events`` bounds the number of solver steps (leaps plus
        exact-SSA fallback bursts), mirroring the SSA engine's event
        budget.
        """
        if t_final <= t_start:
            raise SimulationError("t_final must exceed t_start")
        state: IncrementalPropensities = self.propensity_state
        state.reset(self._initial_counts(initial))
        sample_times = np.linspace(t_start, t_final,
                                   max(int(n_samples), 2))
        samples = np.empty((sample_times.size, state.counts.size),
                           dtype=float)
        samples[0] = state.counts
        next_sample = 1
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0

        t = t_start
        steps = 0
        leaps = 0
        rejected = 0
        fallbacks = 0
        while t < t_final:
            steps += 1
            if steps > max_events:
                raise SimulationError(
                    f"tau-leaping exceeded {max_events} steps at t={t:g}")
            total = float(state.a.sum())
            if total <= 0.0:
                break
            tau = self._select_tau(state.counts, state.a)
            if tau < 10.0 / total:
                # Leap would be smaller than a few exact steps: do SSA.
                fallbacks += 1
                t, next_sample = self._ssa_steps(
                    state, t, n_steps=100, t_final=t_final,
                    sample_times=sample_times, samples=samples,
                    next_sample=next_sample)
            else:
                tau = min(tau, t_final - t)
                firings = self.rng.poisson(state.a * tau)
                delta = self.stoich.T @ firings
                if np.any(state.counts + delta < 0):
                    # Halve tau until non-negative (bounded retries).
                    ok = False
                    for _ in range(8):
                        tau /= 2.0
                        rejected += 1
                        firings = self.rng.poisson(state.a * tau)
                        delta = self.stoich.T @ firings
                        if np.all(state.counts + delta >= 0):
                            ok = True
                            break
                    if not ok:
                        fallbacks += 1
                        t, next_sample = self._ssa_steps(
                            state, t, n_steps=100, t_final=t_final,
                            sample_times=sample_times, samples=samples,
                            next_sample=next_sample)
                        continue
                state.reset(state.counts + delta)
                t += tau
                leaps += 1
            while (next_sample < sample_times.size
                   and sample_times[next_sample] <= t):
                samples[next_sample] = state.counts
                next_sample += 1
        samples[next_sample:] = state.counts
        if telemetry:
            self._record_batch(
                "tau", t_final, steps, perf_counter() - wall_start,
                extra={"leaps": leaps, "rejected_leaps": rejected,
                       "ssa_fallbacks": fallbacks})
        return Trajectory(sample_times, samples, self.network.species_names,
                          {"steps": steps})

    # -- internals -------------------------------------------------------------

    def _select_tau(self, counts: np.ndarray,
                    propensities: np.ndarray) -> float:
        """Cao et al. (2006) tau selection bounding relative change."""
        mu = self.stoich.T @ propensities                    # drift per species
        sigma2 = (self.stoich ** 2).T @ propensities         # variance rate
        g = 2.0  # conservative highest-order factor
        bound = np.maximum(self.epsilon * counts / g, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            tau_mu = np.where(mu != 0, bound / np.abs(mu), np.inf)
            tau_sigma = np.where(sigma2 > 0, bound ** 2 / sigma2, np.inf)
        return float(min(tau_mu.min(initial=np.inf),
                         tau_sigma.min(initial=np.inf)))

    def _ssa_steps(self, state: IncrementalPropensities, t: float,
                   n_steps: int, t_final: float,
                   sample_times: np.ndarray, samples: np.ndarray,
                   next_sample: int) -> tuple[float, int]:
        """Advance by up to ``n_steps`` exact SSA events.

        Sample-grid points crossed during the burst are recorded with the
        pre-event counts that held at each sample time.
        """
        rng = self.rng
        a = state.a
        n_times = sample_times.size
        for _ in range(n_steps):
            if t >= t_final:
                break
            cumulative = a.cumsum()
            total = cumulative[-1]
            if total <= 0.0:
                break
            t += rng.exponential(1.0 / total)
            if t >= t_final:
                break
            while (next_sample < n_times
                   and sample_times[next_sample] <= t):
                samples[next_sample] = state.counts
                next_sample += 1
            j = select_reaction(a, rng.random(),
                                cumulative=cumulative, total=total)
            state.fire(j)
        return t, next_sample
