"""Shared stochastic-sampling primitives for SSA and tau-leaping.

Both the exact Gillespie loop and the tau-leaping SSA fallback select the
next reaction with the classic cumulative-sum draw.  It previously lived
as duplicated inline code in the two simulators; this module is the
single tested implementation.

The draw *order* per event -- one exponential for the waiting time, then
one uniform for the selection -- is part of the seeded-reproducibility
contract: given the same generator state, the simulators produce the
same realisation the reference implementation did, so seed-dependent
benchmark baselines stay comparable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def cumulative_propensities(propensities: np.ndarray) -> np.ndarray:
    """Cumulative sums of a propensity vector; ``result[-1]`` is a_0."""
    return propensities.cumsum()


def select_reaction(propensities: np.ndarray, u: float, *,
                    cumulative: np.ndarray | None = None,
                    total: float | None = None) -> int:
    """Pick the reaction index to fire given a uniform draw ``u`` in [0, 1).

    Selects ``j`` with probability ``propensities[j] / total``.  The
    ``side='right'`` search skips zero-width bins, so reactions with zero
    propensity can never be selected -- including when ``u == 0`` or when
    the draw lands exactly on a bin boundary.  If rounding pushes the draw
    past the final bin, the last reaction with *positive* propensity
    fires; with no positive propensity at all the state is absorbing and
    no reaction may fire, so the draw raises :class:`SimulationError`
    instead of silently firing the last reaction (both simulators guard
    ``total > 0`` before drawing, so reaching this is a caller bug).

    ``cumulative`` (and optionally ``total``) can be supplied by callers
    that already computed the cumulative sums for this event.  The
    supplied ``total`` is validated against ``cumulative[-1]`` and
    refreshed on disagreement: a stale incremental total (larger than
    the true sum) would let ``u * total`` overshoot the final bin and
    silently bias the draw toward the last positive reaction, while a
    smaller one would make the last bin unreachable.  The draw must
    always partition ``[0, cumulative[-1])`` proportionally to the
    *current* propensities, so the cumulative sums are authoritative.
    """
    if cumulative is None:
        cumulative = propensities.cumsum()
    actual = float(cumulative[-1])
    if total is None or total != actual:
        total = actual
    j = int(cumulative.searchsorted(u * total, side="right"))
    if j >= propensities.shape[0]:
        positive = np.nonzero(propensities > 0.0)[0]
        if not positive.size:
            raise SimulationError(
                "select_reaction() called with no positive propensity: "
                "the state is absorbing and no reaction can fire")
        j = int(positive[-1])
    return j
