"""Gillespie stochastic simulation (direct method).

Molecular computation ultimately runs on integer molecule counts; the
iterative (nonlinear) constructs in :mod:`repro.core.iterative` are *exact*
only in that discrete semantics, so the test suite exercises them here.

The inner loop is incremental: a precomputed reaction dependency graph
(reaction j -> reactions with a reactant among the species j's net change
touches) means each firing re-evaluates only the affected propensities,
instead of the full O(R * reactants) Python-loop recompute per event.
Affected entries are recomputed exactly from the current counts, so the
propensity vector never drifts; the cumulative-sum selection draw is
shared with tau-leaping via :mod:`repro.crn.simulation.sampling`.
"""

from __future__ import annotations

from collections.abc import Mapping
from time import perf_counter

import numpy as np

from repro.crn.kinetics import MassActionKinetics, build_kinetics
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.sampling import select_reaction
from repro.errors import SimulationError
from repro.obs.metrics import ensure_metrics
from repro.obs.tracer import ensure_tracer

#: Runs per ensemble chunk.  The chunk structure (not the worker count)
#: fixes the floating-point summation order, so serial and parallel
#: ensemble means are bitwise identical for the same seed.
ENSEMBLE_CHUNK_RUNS = 8

#: Events between exact full-propensity rebuilds in
#: :class:`IncrementalPropensities`.  The order<=2 incremental updates
#: are exact in floating point (the gather-buffer values are exact
#: half-integers), so the periodic rebuild is belt-and-braces hardening
#: against drift, not a behaviour change -- it recomputes the same bits.
PROPENSITY_REBUILD_INTERVAL = 4096


class IncrementalPropensities:
    """Dependency-graph propensity state for one kinetics + constants.

    Owns the integer counts and the propensity vector ``a``.
    :meth:`fire` applies one reaction's net stoichiometry and
    re-evaluates only the dependent propensities (exactly, from the
    updated counts -- untouched entries stay valid, so the vector never
    accumulates drift).  No running total is maintained: the simulators
    read it off the cumulative sum they compute for the selection draw
    anyway, so incremental total bookkeeping would be pure overhead.

    Two layers of hardening keep the vector sound even if a future
    kinetics change makes the incremental update inexact: updates are
    clamped at zero (a tiny negative propensity would poison the
    cumulative-sum selection draw), and every ``rebuild_interval``
    events :meth:`rebuild` recomputes the full vector exactly from the
    current counts, in place -- the simulators alias ``self.a``, so the
    rebuild must never rebind it.
    """

    def __init__(self, kinetics: MassActionKinetics, constants: np.ndarray,
                 rebuild_interval: int = PROPENSITY_REBUILD_INTERVAL):
        self.kinetics = kinetics
        self.constants = np.asarray(constants, dtype=float)
        n_s = kinetics.n_species
        self._n_s = n_s
        stoich = kinetics.stoich                    # (S, R)
        deps = kinetics.reaction_dependencies()
        self._deps = deps
        factor_a = kinetics._factor_a
        factor_b = kinetics._stoch_factor_b
        self._dep_a = [factor_a[d] for d in deps]
        self._dep_b = [factor_b[d] for d in deps]
        self._dep_c = [self.constants[d] for d in deps]
        generic = set(int(j) for j in kinetics._generic_rows)
        self._dep_generic = [
            [(pos, int(i)) for pos, i in enumerate(d) if int(i) in generic]
            for d in deps
        ]
        # Per-reaction sparse net-change columns: integer deltas for the
        # counts, float deltas for both halves of the gather buffer
        # (raw count slot and the (n-1)/2 half-pair slot).
        # One tuple per reaction so `fire` pays a single list lookup:
        # (species touched, integer deltas, gather-buffer slots and their
        #  float deltas, dependent reactions, their gather indices and
        #  constants, generic-order entries among them).
        plan = []
        for j in range(kinetics.n_reactions):
            species = np.nonzero(stoich[:, j])[0].astype(np.intp)
            delta = stoich[species, j].astype(np.int64)
            slots = np.concatenate([species, species + n_s + 1]) \
                .astype(np.intp)
            slot_delta = np.concatenate([delta, delta * 0.5])
            plan.append((species, delta, slots, slot_delta,
                         self._deps[j], self._dep_a[j], self._dep_b[j],
                         self._dep_c[j], self._dep_generic[j]))
        self._fire_plan = plan
        self.counts = np.zeros(n_s, dtype=np.int64)
        self._cb = np.ones(2 * (n_s + 1))
        self.a = np.zeros(kinetics.n_reactions)
        self.rebuild_interval = int(rebuild_interval)
        if self.rebuild_interval < 1:
            raise SimulationError("rebuild_interval must be >= 1")
        self._events_since_rebuild = 0

    def reset(self, counts: np.ndarray) -> float:
        """Adopt a full state vector and recompute every propensity."""
        self.counts = np.array(counts, dtype=np.int64)
        self.a = self.kinetics.propensities(self.counts, self.constants)
        self._cb[:] = self.kinetics._cbuf
        self._events_since_rebuild = 0
        return float(self.a.sum())

    def rebuild(self) -> None:
        """Recompute every propensity exactly from the current counts.

        In place: the simulators hold an alias of ``self.a`` across the
        whole event loop, so the array object must survive the rebuild.
        """
        self.a[:] = self.kinetics.propensities(self.counts, self.constants)
        self._cb[:] = self.kinetics._cbuf
        self._events_since_rebuild = 0

    def fire(self, j: int) -> None:
        """Apply reaction ``j`` and update the dependent propensities."""
        species, delta, slots, slot_delta, dep, dep_a, dep_b, dep_c, \
            generic = self._fire_plan[j]
        self.counts[species] += delta
        cb = self._cb
        cb[slots] += slot_delta
        self._events_since_rebuild += 1
        if self._events_since_rebuild >= self.rebuild_interval:
            self.rebuild()
            return
        if dep.size == 0:
            return
        fresh = dep_c * cb[dep_a]
        fresh *= cb[dep_b]
        # Clamp at zero: a rounding-induced tiny negative entry would
        # bias the cumulative-sum draw.  (Exact updates only ever
        # produce -0.0 here, which the clamp normalises to +0.0.)
        np.maximum(fresh, 0.0, out=fresh)
        if generic:
            for pos, i in generic:
                fresh[pos] = self.kinetics.propensity_of(
                    i, self.counts, self.constants)
        self.a[dep] = fresh


class StochasticSimulator:
    """Exact SSA (Gillespie direct method) for one network.

    An optional ``tracer``/``metrics`` pair records each ``simulate``
    call as an ``ssa.batch`` solver span and counts reaction firings,
    overall and per channel (``ssa.firings[<reaction label>]``).
    """

    _batch_kind = "ssa"

    #: Whether the structure-of-arrays ensemble engine can run this
    #: simulator's ensembles (exact SSA only; tau-leaping's adaptive
    #: control flow cannot be vectorised while preserving draw order).
    _supports_batch_ensembles = True

    def __init__(self, network: Network, scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None, volume: float = 1.0,
                 seed: int | np.random.Generator | None = None,
                 tracer=None, metrics=None):
        network.validate()
        self.network = network
        self.scheme = scheme or RateScheme()
        self.kinetics = build_kinetics(network, self.scheme, rates)
        self.volume = float(volume)
        self.constants = self.kinetics.stochastic_constants(self.volume)
        self.stoich = network.stoichiometry_matrix().T.astype(np.int64)
        if isinstance(seed, np.random.Generator):
            self.rng = seed
            self._seed_seq: np.random.SeedSequence | None = None
        else:
            self._seed_seq = np.random.SeedSequence(seed)
            self.rng = np.random.default_rng(self._seed_seq)
        self.propensity_state = IncrementalPropensities(self.kinetics,
                                                        self.constants)
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)

    def _channel_label(self, j: int) -> str:
        reaction = self.network.reactions[j]
        return getattr(reaction, "label", "") or str(reaction)

    def _record_batch(self, kind: str, t_final: float, events: int,
                      wall: float, firings: np.ndarray | None = None,
                      extra: dict | None = None) -> None:
        """Per-``simulate`` telemetry shared by SSA and tau-leaping."""
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc(f"{kind}.batches")
            metrics.inc(f"{kind}.events", events)
            metrics.observe(f"{kind}.wall_seconds", wall)
            for name, value in (extra or {}).items():
                metrics.inc(f"{kind}.{name}", value)
            if firings is not None:
                for j in np.nonzero(firings)[0]:
                    metrics.inc(
                        f"ssa.firings[{self._channel_label(int(j))}]",
                        float(firings[j]))
        if self.tracer.enabled:
            args = {"events": events, "wall": round(wall, 6)}
            args.update(extra or {})
            self.tracer.emit_span(f"{kind}.batch", "solver", 0.0,
                                  t_final, args)

    def _initial_counts(self, initial) -> np.ndarray:
        if initial is None:
            x0 = self.network.initial_vector()
        elif isinstance(initial, Mapping):
            x0 = self.network.initial_vector(initial)
        else:
            x0 = np.asarray(initial, dtype=float)
        counts = np.rint(x0).astype(np.int64)
        if np.any(counts < 0):
            raise SimulationError("negative initial counts")
        return counts

    def simulate(self, t_final: float, *, t_start: float = 0.0,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 200,
                 max_events: int = 50_000_000) -> Trajectory:
        """Run one SSA realisation, recorded on a uniform time grid.

        ``t_start`` matches the ODE engine's semantics: the sample grid
        spans ``[t_start, t_final]``.  The dynamics are time-homogeneous,
        so a shifted origin only relabels the grid.
        """
        if t_final <= t_start:
            raise SimulationError("t_final must exceed t_start")
        state = self.propensity_state
        state.reset(self._initial_counts(initial))
        sample_times = np.linspace(t_start, t_final,
                                   max(int(n_samples), 2))
        samples = np.empty((sample_times.size, state.counts.size),
                           dtype=float)
        samples[0] = state.counts
        next_sample = 1
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0
        firings = np.zeros(self.network.n_reactions, dtype=np.int64) \
            if self.metrics.enabled else None
        rng = self.rng
        a = state.a  # reset() rebound it; fire() mutates it in place
        fire = state.fire
        grid = sample_times.tolist()
        n_times = len(grid)

        t = t_start
        events = 0
        while t < t_final:
            cumulative = a.cumsum()
            total = cumulative[-1]
            if total <= 0.0:
                break  # No reaction can fire; state is absorbing.
            t += rng.exponential(1.0 / total)
            if t > t_final:
                break
            while next_sample < n_times and grid[next_sample] <= t:
                samples[next_sample] = state.counts
                next_sample += 1
            if events >= max_events:
                if telemetry:
                    self._record_batch("ssa", t_final, events,
                                       perf_counter() - wall_start, firings)
                raise SimulationError(
                    f"SSA exceeded {max_events} events at t={t:g}")
            j = select_reaction(a, rng.random(),
                                cumulative=cumulative, total=total)
            fire(j)
            events += 1
            if firings is not None:
                firings[j] += 1
        samples[next_sample:] = state.counts
        if telemetry:
            self._record_batch("ssa", t_final, events,
                               perf_counter() - wall_start, firings)
        return Trajectory(sample_times, samples, self.network.species_names,
                          {"events": events})

    def final_counts(self, t_final: float, **kwargs) -> dict[str, int]:
        """Convenience: final integer counts of one realisation."""
        trajectory = self.simulate(t_final, n_samples=2, **kwargs)
        return {name: int(round(value))
                for name, value in trajectory.final_state().items()}

    # -- ensembles -------------------------------------------------------------

    def _clone_spec(self) -> dict:
        """Constructor spec for per-run ensemble clones (picklable)."""
        return {"cls": type(self), "network": self.network,
                "rates": np.asarray(self.kinetics.rates),
                "volume": self.volume, "extra": {}}

    def _spawn_run_seeds(self, n_runs: int) -> list[np.random.SeedSequence]:
        """Independent, reproducible per-run seed sequences.

        Spawned from the simulator's root :class:`~numpy.random.SeedSequence`
        when one exists (int or ``None`` seed); a simulator built around a
        caller-supplied ``Generator`` derives a root sequence from the
        generator stream once, keeping ensembles reproducible per call
        order.
        """
        if self._seed_seq is None:
            entropy = int(self.rng.integers(np.iinfo(np.int64).max))
            self._seed_seq = np.random.SeedSequence(entropy)
        return self._seed_seq.spawn(n_runs)

    def mean_trajectory(self, t_final: float, n_runs: int,
                        n_samples: int = 100, *,
                        n_workers: int | None = None,
                        backend: str = "reference",
                        **kwargs) -> Trajectory:
        """Sample mean over ``n_runs`` independent realisations.

        Each run gets its own spawned seed, and runs are summed in fixed
        chunks of :data:`ENSEMBLE_CHUNK_RUNS`, so the result is bitwise
        identical whether the ensemble executes serially (``n_workers``
        ``None``/1) or through a
        :class:`~repro.crn.simulation.sweep.ParallelSweepRunner` pool.

        ``backend="batch"`` computes each chunk through the
        structure-of-arrays ensemble engine (one batched call for all
        seeds when running serially); per-trial realisations and the
        chunk-ordered reduction are bitwise identical to the reference
        path, so this changes wall time only.  Simulators the batch
        engine cannot vectorise (tau-leaping) fall back to reference.
        """
        from repro.crn.simulation.sweep import (ENSEMBLE_BACKENDS,
                                                ParallelSweepRunner,
                                                simulate_mean_chunk)

        if n_runs < 1:
            raise SimulationError("n_runs must be >= 1")
        if backend not in ENSEMBLE_BACKENDS:
            raise SimulationError(
                f"unknown ensemble backend {backend!r}; expected one of "
                f"{ENSEMBLE_BACKENDS}")
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0
        seeds = self._spawn_run_seeds(n_runs)
        runner = ParallelSweepRunner(n_workers)
        use_batch = backend == "batch" and self._supports_batch_ensembles
        if use_batch and (runner.n_workers <= 1 or n_runs
                          <= ENSEMBLE_CHUNK_RUNS):
            # Serial: one structure-of-arrays call over every seed
            # (EnsembleResult.mean applies the same chunked reduction).
            from repro.crn.simulation.batch import BatchStochasticSimulator

            batch = BatchStochasticSimulator(
                self.network, rates=np.asarray(self.kinetics.rates),
                volume=self.volume)
            mean = batch.simulate_ensemble(
                t_final, seeds=seeds, n_samples=n_samples,
                **kwargs).mean()
            if telemetry:
                self._record_batch(
                    self._batch_kind, t_final, int(mean.meta["events"]),
                    perf_counter() - wall_start,
                    extra={"ensemble_runs": n_runs})
            return mean
        spec = self._clone_spec()
        spec["backend"] = backend
        payloads = [
            (spec, seeds[i:i + ENSEMBLE_CHUNK_RUNS], t_final, n_samples,
             kwargs)
            for i in range(0, n_runs, ENSEMBLE_CHUNK_RUNS)
        ]
        partials = runner.map(simulate_mean_chunk, payloads)
        times, accumulator, events = partials[0]
        accumulator = accumulator.copy()
        for index, (chunk_times, states, chunk_events) in \
                enumerate(partials[1:], start=1):
            if not np.array_equal(chunk_times, times):
                raise SimulationError(
                    f"ensemble chunk {index} returned a misaligned "
                    f"sample grid (size {chunk_times.size} vs "
                    f"{times.size}); refusing to sum mismatched states")
            accumulator += states
            events += chunk_events
        if telemetry:
            self._record_batch(self._batch_kind, t_final, events,
                               perf_counter() - wall_start,
                               extra={"ensemble_runs": n_runs})
        return Trajectory(times, accumulator / n_runs,
                          self.network.species_names,
                          {"n_runs": n_runs, "events": events})
