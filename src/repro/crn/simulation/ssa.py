"""Gillespie stochastic simulation (direct method).

Molecular computation ultimately runs on integer molecule counts; the
iterative (nonlinear) constructs in :mod:`repro.core.iterative` are *exact*
only in that discrete semantics, so the test suite exercises them here.
"""

from __future__ import annotations

from collections.abc import Mapping
from time import perf_counter

import numpy as np

from repro.crn.kinetics import build_kinetics
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.result import Trajectory
from repro.errors import SimulationError
from repro.obs.metrics import ensure_metrics
from repro.obs.tracer import ensure_tracer


class StochasticSimulator:
    """Exact SSA (Gillespie direct method) for one network.

    An optional ``tracer``/``metrics`` pair records each ``simulate``
    call as an ``ssa.batch`` solver span and counts reaction firings,
    overall and per channel (``ssa.firings[<reaction label>]``).
    """

    def __init__(self, network: Network, scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None, volume: float = 1.0,
                 seed: int | np.random.Generator | None = None,
                 tracer=None, metrics=None):
        network.validate()
        self.network = network
        self.scheme = scheme or RateScheme()
        self.kinetics = build_kinetics(network, self.scheme, rates)
        self.volume = float(volume)
        self.constants = self.kinetics.stochastic_constants(self.volume)
        self.stoich = network.stoichiometry_matrix().T.astype(np.int64)
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)

    def _channel_label(self, j: int) -> str:
        reaction = self.network.reactions[j]
        return getattr(reaction, "label", "") or str(reaction)

    def _record_batch(self, kind: str, t_final: float, events: int,
                      wall: float, firings: np.ndarray | None = None,
                      extra: dict | None = None) -> None:
        """Per-``simulate`` telemetry shared by SSA and tau-leaping."""
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc(f"{kind}.batches")
            metrics.inc(f"{kind}.events", events)
            metrics.observe(f"{kind}.wall_seconds", wall)
            for name, value in (extra or {}).items():
                metrics.inc(f"{kind}.{name}", value)
            if firings is not None:
                for j in np.nonzero(firings)[0]:
                    metrics.inc(
                        f"ssa.firings[{self._channel_label(int(j))}]",
                        float(firings[j]))
        if self.tracer.enabled:
            args = {"events": events, "wall": round(wall, 6)}
            args.update(extra or {})
            self.tracer.emit_span(f"{kind}.batch", "solver", 0.0,
                                  t_final, args)

    def _initial_counts(self, initial) -> np.ndarray:
        if initial is None:
            x0 = self.network.initial_vector()
        elif isinstance(initial, Mapping):
            x0 = self.network.initial_vector(initial)
        else:
            x0 = np.asarray(initial, dtype=float)
        counts = np.rint(x0).astype(np.int64)
        if np.any(counts < 0):
            raise SimulationError("negative initial counts")
        return counts

    def simulate(self, t_final: float, *,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 200,
                 max_events: int = 50_000_000) -> Trajectory:
        """Run one SSA realisation, recorded on a uniform time grid."""
        if t_final <= 0:
            raise SimulationError("t_final must be positive")
        counts = self._initial_counts(initial)
        sample_times = np.linspace(0.0, t_final, max(int(n_samples), 2))
        samples = np.empty((sample_times.size, counts.size), dtype=float)
        samples[0] = counts
        next_sample = 1
        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0
        firings = np.zeros(self.network.n_reactions, dtype=np.int64) \
            if self.metrics.enabled else None

        t = 0.0
        events = 0
        while t < t_final:
            propensities = self.kinetics.propensities(counts, self.constants)
            total = propensities.sum()
            if total <= 0.0:
                break  # No reaction can fire; state is absorbing.
            t += self.rng.exponential(1.0 / total)
            if t > t_final:
                break
            while (next_sample < sample_times.size
                   and sample_times[next_sample] <= t):
                samples[next_sample] = counts
                next_sample += 1
            choice = self.rng.random() * total
            j = int(np.searchsorted(np.cumsum(propensities), choice))
            j = min(j, propensities.size - 1)
            counts = counts + self.stoich[j]
            events += 1
            if firings is not None:
                firings[j] += 1
            if events > max_events:
                raise SimulationError(
                    f"SSA exceeded {max_events} events at t={t:g}")
        samples[next_sample:] = counts
        if telemetry:
            self._record_batch("ssa", t_final, events,
                               perf_counter() - wall_start, firings)
        return Trajectory(sample_times, samples, self.network.species_names,
                          {"events": events})

    def final_counts(self, t_final: float, **kwargs) -> dict[str, int]:
        """Convenience: final integer counts of one realisation."""
        trajectory = self.simulate(t_final, n_samples=2, **kwargs)
        return {name: int(round(value))
                for name, value in trajectory.final_state().items()}

    def mean_trajectory(self, t_final: float, n_runs: int,
                        n_samples: int = 100, **kwargs) -> Trajectory:
        """Sample mean over ``n_runs`` independent realisations."""
        if n_runs < 1:
            raise SimulationError("n_runs must be >= 1")
        accumulator = None
        for _ in range(n_runs):
            trajectory = self.simulate(t_final, n_samples=n_samples, **kwargs)
            if accumulator is None:
                accumulator = trajectory.states.copy()
                times = trajectory.times
            else:
                accumulator += trajectory.states
        return Trajectory(times, accumulator / n_runs,
                          self.network.species_names, {"n_runs": n_runs})
