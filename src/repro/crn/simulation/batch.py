"""Structure-of-arrays batched SSA: one NumPy ensemble per call.

Every statistical claim in this repo -- robustness margins, fault
campaigns, SSA-vs-ODE differential oracles, stationary-distribution
sweeps -- reduces to *many independent realisations of one network*.
The reference :class:`~repro.crn.simulation.ssa.StochasticSimulator`
runs each realisation as its own Python event loop; this module runs
the whole ensemble through one loop instead, holding the state as
structure-of-arrays blocks:

- integer counts as one ``(trials, species)`` array,
- the extended gather buffer as ``(trials, 2 * (species + 1))``,
- propensities and their cumulative sums as ``(trials, reactions)``
  arrays evaluated with the same order-grouped index gathers the
  compiled :class:`~repro.crn.kinetics.MassActionKinetics` uses,
- reaction selection for every live trial as one vectorised
  ``searchsorted``-equivalent comparison per step.

Trials that finish -- absorbed (zero total propensity) or past the
horizon -- are retired from the *front-compacted* active block, so
ragged horizons never serialise the batch: each step costs O(active),
not O(trials).

Bitwise contract
----------------
Seeded realisations match the reference engine **bitwise,
trial-for-trial**: trial ``i`` built from seed ``s_i`` produces exactly
the sampled trajectory ``StochasticSimulator(seed=default_rng(s_i))``
would.  That holds because per trial the batch engine consumes the same
generator stream in the same order (one exponential for the waiting
time, then one uniform for the selection), evaluates propensities with
the same multiply order as the compiled kinetics, and records samples
with the same pre-fire grid-crossing rule.  Two empirically verified
identities make the scalar draws cheap without touching the stream:

- ``Generator.exponential(s)`` equals ``standard_exponential() * s``
  (the ziggurat draw times an IEEE-commutative scale), and
- ``Generator.random()`` equals ``(bit_generator.random_raw() >> 11) *
  2.0**-53`` for one-uint64-per-double bit generators (PCG64);
  :data:`_RAW_UNIFORMS_OK` re-verifies this at import time and the
  engine falls back to bound ``Generator.random`` calls if the host's
  bit generator disagrees.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from time import perf_counter

import numpy as np

from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.ssa import ENSEMBLE_CHUNK_RUNS, StochasticSimulator
from repro.errors import SimulationError

#: ``(raw >> 11) * 2**-53`` maps a 53-bit integer to [0, 1) exactly the
#: way ``Generator.random()`` does internally.
_UNIFORM_SCALE = 2.0 ** -53


def _verify_raw_uniforms() -> bool:
    """Does ``random_raw() >> 11`` reproduce ``Generator.random()``?

    Checked on an interleaved exponential/uniform stream -- the exact
    call pattern of the SSA event loop -- so a bit generator that
    consumes a different number of words per double is caught here and
    the engine downgrades to (slower) bound-method uniform draws.
    """
    probe = np.random.default_rng(np.random.SeedSequence(9941))
    mirror = np.random.default_rng(np.random.SeedSequence(9941))
    raw = mirror.bit_generator.random_raw
    for _ in range(8):
        expected = probe.random()
        probe.standard_exponential()
        if (raw() >> 11) * _UNIFORM_SCALE != expected:
            return False
        mirror.standard_exponential()
    return True


_RAW_UNIFORMS_OK = _verify_raw_uniforms()


class EnsembleResult:
    """Sampled trajectories of one batched ensemble.

    Attributes
    ----------
    times:
        shared sample grid, shape ``(n_times,)``.
    states:
        sampled counts, shape ``(trials, n_times, species)``.
    names:
        species names aligned with the last axis.
    events:
        per-trial event counts, shape ``(trials,)``.
    absorbed:
        per-trial flag: the trial hit a zero-total-propensity state
        before the horizon and was frozen there.
    """

    def __init__(self, times: np.ndarray, states: np.ndarray,
                 names: Sequence[str], events: np.ndarray,
                 absorbed: np.ndarray, meta: dict | None = None):
        self.times = times
        self.states = states
        self.names = list(names)
        self.events = events
        self.absorbed = absorbed
        self.meta = dict(meta or {})

    def __len__(self) -> int:
        return self.states.shape[0]

    def trial(self, i: int) -> Trajectory:
        """Trial ``i`` as a :class:`Trajectory` (reference-identical)."""
        return Trajectory(self.times, self.states[i], self.names,
                          {"events": int(self.events[i])})

    def trials(self):
        """Iterate over per-trial trajectories."""
        return (self.trial(i) for i in range(len(self)))

    def final_states(self) -> np.ndarray:
        """``(trials, species)`` states at the horizon."""
        return self.states[:, -1, :]

    def summed_states(self, start: int = 0,
                      stop: int | None = None) -> np.ndarray:
        """Sum of ``states[start:stop]`` in strict trial order.

        Left-associated like the reference ensemble worker's per-chunk
        accumulation, so chunk partials built from this are bitwise
        identical to summing the individual reference runs.
        """
        stop = len(self) if stop is None else stop
        acc = self.states[start].copy()
        for i in range(start + 1, stop):
            acc += self.states[i]
        return acc

    def mean(self, chunk_runs: int = ENSEMBLE_CHUNK_RUNS) -> Trajectory:
        """Ensemble-mean trajectory with the reference reduction order.

        Trials are summed in fixed chunks of ``chunk_runs`` and the
        chunk partials combined left-to-right -- the exact summation
        tree ``StochasticSimulator.mean_trajectory`` uses -- so the mean
        is bitwise identical to the reference ensemble path (serial or
        pooled) on the same seeds.
        """
        n = len(self)
        partials = [self.summed_states(i, min(i + chunk_runs, n))
                    for i in range(0, n, chunk_runs)]
        acc = partials[0].copy()
        for partial in partials[1:]:
            acc += partial
        return Trajectory(self.times, acc / n, self.names,
                          {"n_runs": n, "events": int(self.events.sum())})


class BatchStochasticSimulator(StochasticSimulator):
    """Exact SSA over a whole seeded ensemble at once.

    Constructor signature matches :class:`StochasticSimulator`; the new
    entry point is :meth:`simulate_ensemble`.  :meth:`simulate` runs a
    single-trial ensemble off the instance generator, so the facade's
    ``backend="batch"`` route returns the bitwise-identical trajectory
    the reference engine would.
    """

    def simulate(self, t_final: float, *, t_start: float = 0.0,
                 initial: Mapping[str, float] | np.ndarray | None = None,
                 n_samples: int = 200,
                 max_events: int = 50_000_000) -> Trajectory:
        result = self.simulate_ensemble(
            t_final, seeds=[self.rng], t_start=t_start, initial=initial,
            n_samples=n_samples, max_events=max_events)
        return result.trial(0)

    def simulate_ensemble(self, t_final: float, n_trials: int | None = None,
                          *, seeds: Sequence | None = None,
                          t_start: float = 0.0, initial=None,
                          n_samples: int = 200,
                          max_events: int = 50_000_000,
                          rates: np.ndarray | None = None
                          ) -> EnsembleResult:
        """Run one seeded ensemble, sampled on a shared uniform grid.

        Parameters
        ----------
        n_trials:
            ensemble size; per-trial seeds are spawned from the
            simulator's root :class:`~numpy.random.SeedSequence`
            exactly like ``mean_trajectory`` does.
        seeds:
            explicit per-trial seeds (ints, ``SeedSequence``s or
            ``Generator``s) overriding ``n_trials`` spawning; trial
            ``i`` consumes ``np.random.default_rng(seeds[i])``.
        initial:
            shared initial state (mapping or vector), or one per trial
            (a sequence of ``n_trials`` mappings/vectors, or a
            ``(n_trials, species)`` array).
        rates:
            per-trial rate draws: a ``(n_trials, reactions)`` array
            giving each trial its own rate vector (a single ``(R,)``
            vector is also accepted and shared).  ``None`` keeps the
            simulator's compiled rates.
        max_events:
            per-trial event budget; any trial exceeding it raises
            :class:`SimulationError` for the whole ensemble.
        """
        if t_final <= t_start:
            raise SimulationError("t_final must exceed t_start")
        if seeds is None:
            if n_trials is None:
                raise SimulationError(
                    "simulate_ensemble needs n_trials or an explicit "
                    "seeds sequence")
            if n_trials < 1:
                raise SimulationError("n_trials must be >= 1")
            seeds = self._spawn_run_seeds(int(n_trials))
        else:
            seeds = list(seeds)
            if n_trials is not None and int(n_trials) != len(seeds):
                raise SimulationError(
                    f"n_trials={n_trials} disagrees with {len(seeds)} "
                    f"explicit seeds")
            if not seeds:
                raise SimulationError("seeds must be non-empty")
        rngs = [np.random.default_rng(seed) for seed in seeds]
        n = len(rngs)
        counts0 = self._trial_initial_counts(initial, n)
        constants = self._trial_constants(rates, n)

        telemetry = self.tracer.enabled or self.metrics.enabled
        wall_start = perf_counter() if telemetry else 0.0
        firings = np.zeros(self.network.n_reactions, dtype=np.int64) \
            if self.metrics.enabled else None
        result = self._run_ensemble(rngs, counts0, constants,
                                    float(t_start), float(t_final),
                                    int(n_samples), int(max_events),
                                    firings)
        if telemetry:
            self._record_batch("ssa", t_final, int(result.events.sum()),
                               perf_counter() - wall_start, firings,
                               extra={"ensemble_trials": n})
        return result

    # -- per-trial parameter resolution ---------------------------------------

    def _trial_initial_counts(self, initial, n: int) -> np.ndarray:
        """``(n, species)`` integer initial counts, shared or per-trial."""
        per_trial = False
        if isinstance(initial, np.ndarray) and initial.ndim == 2:
            per_trial = True
        elif isinstance(initial, (list, tuple)) and initial and \
                not isinstance(initial[0], (int, float, np.number)):
            per_trial = True
        if not per_trial:
            return np.tile(self._initial_counts(initial), (n, 1))
        if len(initial) != n:
            raise SimulationError(
                f"{len(initial)} per-trial initial states for {n} trials")
        return np.stack([self._initial_counts(row) for row in initial])

    def _trial_constants(self, rates, n: int) -> np.ndarray:
        """Stochastic constants: ``(R,)`` shared or ``(n, R)`` per trial.

        Per-trial rows use the same scalar arithmetic order as
        :meth:`MassActionKinetics.stochastic_constants`
        (``rate * factor / volume**max(order-1, 0)``, zeroth order
        ``rate * volume``) so a trial with rate row ``r_i`` matches a
        reference simulator built with ``rates=r_i`` bitwise.
        """
        if rates is None:
            return self.constants
        rates = np.asarray(rates, dtype=float)
        n_r = self.kinetics.n_reactions
        if rates.shape == (n_r,):
            return type(self.kinetics)(self.network, rates) \
                .stochastic_constants(self.volume)
        if rates.shape != (n, n_r):
            raise SimulationError(
                f"per-trial rates have shape {rates.shape}, expected "
                f"({n}, {n_r}) or ({n_r},)")
        volume = self.volume
        factor = np.empty(n_r)
        power = np.empty(n_r)
        order0 = np.zeros(n_r, dtype=bool)
        for j, reactants in enumerate(self.kinetics._reactant_lists):
            order = sum(e for _, e in reactants)
            f = 1.0
            for _, e in reactants:
                f *= math.factorial(e)
            factor[j] = f
            power[j] = volume ** max(order - 1, 0)
            order0[j] = order == 0
        constants = rates * factor
        constants /= power
        constants[:, order0] = rates[:, order0] * volume
        return constants

    # -- the batched event loop -----------------------------------------------

    def _run_ensemble(self, rngs, counts0, constants, t_start, t_final,
                      n_samples, max_events, firings) -> EnsembleResult:
        kinetics = self.kinetics
        n_s = kinetics.n_species
        n_r = kinetics.n_reactions
        fa = kinetics._factor_a
        fb = kinetics._stoch_factor_b
        generic = [int(j) for j in kinetics._generic_rows]
        stoich_rows = self.stoich                      # (R, S) int64
        per_trial_constants = constants.ndim == 2
        n = len(rngs)

        sample_times = np.linspace(t_start, t_final, max(n_samples, 2))
        n_times = sample_times.size
        grid = sample_times.tolist()
        grid.append(math.inf)                          # retire-guard sentinel
        samples = np.empty((n, n_times, n_s))
        samples[:, 0, :] = counts0
        events_out = np.zeros(n, dtype=np.int64)
        absorbed_out = np.zeros(n, dtype=bool)

        # Front-compacted active block: row k of each array belongs to
        # trial ids[k]; retired trials are dropped by compacting the
        # prefix, so every vector op is O(active).
        counts = counts0.astype(np.int64, copy=True)
        cbuf = np.ones((n, 2 * (n_s + 1)))
        abuf = np.empty((n, n_r))
        bbuf = np.empty((n, n_r))
        cumbuf = np.empty((n, n_r))
        con = constants if per_trial_constants else None

        ids = list(range(n))
        t_l = [t_start] * n
        ev_l = [0] * n
        ns_l = [1] * n
        exp_l = [r.standard_exponential for r in rngs]
        use_raw = _RAW_UNIFORMS_OK
        draw_l = [r.bit_generator.random_raw for r in rngs] if use_raw \
            else [r.random for r in rngs]

        uniform_scale = _UNIFORM_SCALE
        while ids:
            active = len(ids)
            ca = counts[:active]
            cb = cbuf[:active]
            # Extended gather buffer, same arithmetic as the kinetics'
            # _fill_count_buffer: [counts..., 1, (counts-1)/2..., 1].
            cb[:, :n_s] = ca
            half = cb[:, n_s + 1:2 * n_s + 1]
            np.subtract(cb[:, :n_s], 1.0, out=half)
            half *= 0.5
            # Propensities with the reference multiply order:
            # (constants * cb[fa]) * cb[fb] -- the first multiply is
            # commuted, which is bitwise-neutral for IEEE products.
            a = abuf[:active]
            np.take(cb, fa, axis=1, out=a)
            a *= con[:active] if per_trial_constants else constants
            b = bbuf[:active]
            np.take(cb, fb, axis=1, out=b)
            a *= b
            for j in generic:
                for k in range(active):
                    a[k, j] = kinetics.propensity_of(
                        j, ca[k], con[k] if per_trial_constants
                        else constants)
            cum = np.cumsum(a, axis=1, out=cumbuf[:active])
            totals = cum[:, -1].tolist()

            # Scalar phase: one exponential (and at most one uniform)
            # per live trial, via plain-Python int/float arithmetic --
            # numpy scalar types here would triple the per-event cost.
            live: list[int] = []
            uts: list[float] = []
            finished: list[int] = []
            fired_last: list[int] = []
            live_append = live.append
            uts_append = uts.append
            for k, tot in enumerate(totals):
                if tot <= 0.0:
                    absorbed_out[ids[k]] = True
                    finished.append(k)          # frozen forever
                    continue
                t = t_l[k] + exp_l[k]() * (1.0 / tot)
                t_l[k] = t
                if t > t_final:
                    finished.append(k)          # horizon crossed, no event
                    continue
                ns = ns_l[k]
                if grid[ns] <= t:               # record pre-fire samples
                    start = ns
                    while grid[ns] <= t:
                        ns += 1
                    samples[ids[k], start:ns] = counts[k]
                    ns_l[k] = ns
                ev = ev_l[k]
                if ev >= max_events:
                    raise SimulationError(
                        f"SSA exceeded {max_events} events at t={t:g} "
                        f"(ensemble trial {ids[k]})")
                ev_l[k] = ev + 1
                uts_append(((draw_l[k]() >> 11) * uniform_scale
                            if use_raw else draw_l[k]()) * tot)
                live_append(k)
                if t >= t_final:                # event exactly on the horizon
                    fired_last.append(k)

            if live:
                whole = len(live) == active
                rows = None if whole else np.array(live, dtype=np.intp)
                cum_live = cum if whole else cum[rows]
                ut = np.array(uts)
                # Counting entries <= u*total is searchsorted
                # side='right': zero-width bins are skipped, matching
                # select_reaction() -- including its last-positive
                # fallback when rounding overflows the final bin.
                sel = (cum_live <= ut[:, None]).sum(axis=1)
                if (sel >= n_r).any():
                    for i in np.nonzero(sel >= n_r)[0]:
                        row = a[live[int(i)]]
                        positive = np.nonzero(row > 0.0)[0]
                        if not positive.size:
                            raise SimulationError(
                                "select_reaction() called with no "
                                "positive propensity: the state is "
                                "absorbing and no reaction can fire")
                        sel[i] = positive[-1]
                if whole:
                    counts[:active] += stoich_rows[sel]
                else:
                    counts[rows] += stoich_rows[sel]
                if firings is not None:
                    firings += np.bincount(sel, minlength=n_r)

            if finished or fired_last:
                drop = set(finished)
                drop.update(fired_last)
                for k in drop:
                    trial = ids[k]
                    samples[trial, ns_l[k]:] = counts[k]
                    events_out[trial] = ev_l[k]
                keep = [k for k in range(active) if k not in drop]
                if keep:
                    kidx = np.array(keep, dtype=np.intp)
                    counts[:len(keep)] = counts[kidx]
                    if per_trial_constants:
                        con[:len(keep)] = con[kidx]
                    ids = [ids[k] for k in keep]
                    t_l = [t_l[k] for k in keep]
                    ev_l = [ev_l[k] for k in keep]
                    ns_l = [ns_l[k] for k in keep]
                    exp_l = [exp_l[k] for k in keep]
                    draw_l = [draw_l[k] for k in keep]
                else:
                    ids = []

        return EnsembleResult(sample_times, samples,
                              self.network.species_names, events_out,
                              absorbed_out,
                              {"t_start": t_start, "t_final": t_final})
