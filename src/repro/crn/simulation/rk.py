"""Self-contained adaptive Runge-Kutta integrator.

This is an independent implementation of the Dormand-Prince 5(4) embedded
pair with proportional-integral step control, provided so the library does
not *depend* on scipy's integrators for correctness: the test suite
cross-checks scipy's LSODA/BDF results against this integrator on the
paper's networks.  It also clamps states to be non-negative, which is the
physically meaningful domain for chemical quantities.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SimulationError

# Dormand-Prince coefficients (RK45, FSAL).
_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176,
              -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784,
                11 / 84, 0.0])
_B4 = np.array([5179 / 57600, 0.0, 7571 / 16695, 393 / 640,
                -92097 / 339200, 187 / 2100, 1 / 40])
# Dense-output weights for the Dormand-Prince pair (Hairer's DOPRI5
# "contd5" interpolant): together with the step endpoints and slopes
# they define a 4th-order polynomial over each accepted step, so values
# sampled *between* steps carry the same accuracy as the steps
# themselves.  Plain linear interpolation here is O(h^2) and silently
# dominates the integration error at tight tolerances.
_D = np.array([-12715105075.0 / 11282082432.0, 0.0,
               87487479700.0 / 32700410799.0,
               -10690763975.0 / 1880347072.0,
               701980252875.0 / 199316789632.0,
               -1453857185.0 / 822651844.0,
               69997945.0 / 29380423.0])


def integrate_rk45(rhs: Callable[[float, np.ndarray], np.ndarray],
                   t_span: tuple[float, float],
                   x0: np.ndarray,
                   rtol: float = 1e-6,
                   atol: float = 1e-9,
                   max_step: float = np.inf,
                   max_steps: int = 2_000_000,
                   dense_times: np.ndarray | None = None,
                   stats: dict | None = None):
    """Integrate ``dx/dt = rhs(t, x)`` over ``t_span``.

    Returns ``(times, states)``.  If ``dense_times`` is given, the solution
    is evaluated at those points with the Dormand-Prince 4th-order dense
    output, so sampled values carry the same accuracy as the accepted
    steps; otherwise the accepted step points are returned.  If ``stats``
    is a dict, it is filled with solver effort: ``nfev`` (RHS
    evaluations), ``accepted`` and ``rejected`` step counts.
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise SimulationError("t_span must be increasing")
    x = np.asarray(x0, dtype=float).copy()
    n = x.size

    times = [t0]
    states = [x.copy()]

    t = t0
    f = rhs(t, x)
    # Initial step size heuristic (Hairer-Norsett-Wanner style).
    scale = atol + rtol * np.abs(x)
    d0 = np.linalg.norm(x / scale) / np.sqrt(n)
    d1 = np.linalg.norm(f / scale) / np.sqrt(n)
    h = 0.01 * d0 / d1 if d0 > 1e-5 and d1 > 1e-5 else 1e-6
    h = min(h, t1 - t0, max_step)

    error_old = 1e-4
    steps = 0
    accepted = 0
    rejected = 0
    nfev = 1  # the initial-step-size RHS evaluation above
    k = np.empty((7, n))
    interp: list[tuple] = []  # per-step dense-output coefficients

    while t < t1:
        steps += 1
        if steps > max_steps:
            raise SimulationError(
                f"rk45: exceeded {max_steps} steps at t={t:g}")
        h = min(h, t1 - t, max_step)
        k[0] = f
        for stage in range(1, 7):
            xs = x + h * (k[:stage].T @ _A[stage])
            k[stage] = rhs(t + _C[stage] * h, xs)
        nfev += 6
        x5 = x + h * (k.T @ _B5)
        x4 = x + h * (k.T @ _B4)
        scale = atol + rtol * np.maximum(np.abs(x), np.abs(x5))
        error = np.linalg.norm((x5 - x4) / scale) / np.sqrt(n)
        if error <= 1.0:
            if dense_times is not None:
                # Hairer's contd5 coefficients for this step; evaluated
                # after the loop for every requested sample time.
                x_new = np.maximum(x5, 0.0)
                ydiff = x_new - x
                bspl = h * k[0] - ydiff
                interp.append((t, h, x.copy(), ydiff, bspl,
                               ydiff - h * k[6] - bspl, h * (k.T @ _D)))
            t += h
            x = np.maximum(x5, 0.0)
            accepted += 1
            if np.all(x5 >= 0):
                f = k[6]
            else:
                f = rhs(t, x)
                nfev += 1
            times.append(t)
            states.append(x.copy())
            # PI step control.
            factor = 0.9 * error ** -0.7 * error_old ** 0.4 \
                if error > 0 else 5.0
            h *= min(5.0, max(0.2, factor))
            error_old = max(error, 1e-10)
        else:
            rejected += 1
            h *= max(0.2, 0.9 * error ** -0.25)
            if h < 1e-14 * max(abs(t), 1.0):
                raise SimulationError(f"rk45: step size underflow at t={t:g}")

    if stats is not None:
        stats.update(nfev=nfev, accepted=accepted, rejected=rejected)
    times = np.array(times)
    states = np.array(states)
    if dense_times is not None:
        dense_times = np.asarray(dense_times, dtype=float)
        starts = np.array([step[0] for step in interp])
        which = np.clip(starts.searchsorted(dense_times, side="right") - 1,
                        0, len(interp) - 1)
        dense = np.empty((dense_times.size, n))
        for i, (t_eval, j) in enumerate(zip(dense_times, which)):
            t_old, h_step, r1, r2, r3, r4, r5 = interp[j]
            theta = min(max((t_eval - t_old) / h_step, 0.0), 1.0)
            theta1 = 1.0 - theta
            dense[i] = r1 + theta * (r2 + theta1
                                     * (r3 + theta * (r4 + theta1 * r5)))
        return dense_times, np.maximum(dense, 0.0)
    return times, states
