"""Structural analysis of chemical reaction networks.

Classical CRN-theory inspections used by the verification layer and the
documentation: species-reaction graphs, linkage classes, deficiency,
reversibility, and catalytic structure.  These operate purely on
stoichiometry -- no simulation involved.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.crn.network import Network
from repro.crn.species import as_species


def species_reaction_graph(network: Network) -> nx.DiGraph:
    """Bipartite digraph: species -> reactions they feed -> products.

    Species nodes carry ``kind="species"`` (plus colour/role metadata);
    reaction nodes carry ``kind="reaction"`` and the reaction index.
    """
    graph = nx.DiGraph()
    for species in network.species:
        graph.add_node(f"S:{species.name}", kind="species",
                       color=species.color, role=species.role)
    for index, reaction in enumerate(network.reactions):
        node = f"R:{index}"
        graph.add_node(node, kind="reaction", rate=reaction.rate,
                       label=reaction.label)
        for species, coeff in reaction.reactants.items():
            graph.add_edge(f"S:{species.name}", node, coeff=coeff)
        for species, coeff in reaction.products.items():
            graph.add_edge(node, f"S:{species.name}", coeff=coeff)
    return graph


def reachable_species(network: Network,
                      sources: "list | None" = None) -> set[str]:
    """Species producible (transitively) from the given source species.

    A reaction fires only if *all* its reactants are available -- pure
    catalysts included -- so the closure iterates to a fixed point rather
    than walking edges blindly.  Zeroth-order reactions need no reactants
    and are always available.

    ``sources`` accepts species objects or names; ``None`` seeds the
    closure from every species with a non-zero initial quantity (so a
    pure catalyst whose only supply is its initial condition correctly
    enables its reactions).
    """
    if sources is None:
        sources = [name for name, value in network.initial.items()
                   if value > 0]
    available = {as_species(source).name for source in sources}
    changed = True
    while changed:
        changed = False
        for reaction in network.reactions:
            if all(s.name in available for s in reaction.reactants):
                for product in reaction.products:
                    if product.name not in available:
                        available.add(product.name)
                        changed = True
    return available


def external_species(network: Network) -> set[str]:
    """Species never net-produced by any reaction.

    These can only enter the system from outside -- initial conditions
    or driver-injected inputs -- so reachability analyses treat them as
    potentially available.  Pure catalysts (only ever appearing on both
    sides) are external by this definition: nothing manufactures them.
    """
    produced: set[str] = set()
    for reaction in network.reactions:
        for species, change in reaction.net_change().items():
            if change > 0:
                produced.add(species.name)
    return set(network.species_names) - produced


def complexes(network: Network) -> list[frozenset[tuple[str, int]]]:
    """The distinct complexes (multisets of species) of the network."""
    seen: list[frozenset[tuple[str, int]]] = []
    for reaction in network.reactions:
        for side in (reaction.reactants, reaction.products):
            key = frozenset((s.name, c) for s, c in side.items())
            if key not in seen:
                seen.append(key)
    return seen


def complex_graph(network: Network) -> nx.DiGraph:
    """Digraph on complexes with one edge per reaction."""
    graph = nx.DiGraph()
    index = {key: i for i, key in enumerate(complexes(network))}
    for key in index:
        graph.add_node(index[key], complex=key)
    for reaction in network.reactions:
        source = frozenset((s.name, c)
                           for s, c in reaction.reactants.items())
        target = frozenset((s.name, c)
                           for s, c in reaction.products.items())
        graph.add_edge(index[source], index[target])
    return graph


def linkage_classes(network: Network) -> int:
    """Number of connected components of the complex graph."""
    graph = complex_graph(network).to_undirected()
    return nx.number_connected_components(graph)


def deficiency(network: Network) -> int:
    """Feinberg deficiency:  #complexes - #linkage classes - rank(S)."""
    n_complexes = len(complexes(network))
    rank = int(np.linalg.matrix_rank(network.stoichiometry_matrix()))
    return n_complexes - linkage_classes(network) - rank


def is_weakly_reversible(network: Network) -> bool:
    """True if every reaction lies on a directed cycle of complexes."""
    graph = complex_graph(network)
    components = list(nx.strongly_connected_components(graph))
    component_of = {}
    for i, component in enumerate(components):
        for node in component:
            component_of[node] = i
    return all(component_of[u] == component_of[v]
               for u, v in graph.edges)


@dataclass
class CatalyticSummary:
    """Which species act as pure catalysts / pure products / consumed."""

    catalysts: set[str]
    sources_only: set[str]
    sinks_only: set[str]

    def __contains__(self, name: str) -> bool:
        return name in self.catalysts


def catalytic_summary(network: Network) -> CatalyticSummary:
    """Classify species by how the reaction set treats them."""
    consumed: set[str] = set()
    produced: set[str] = set()
    catalytic: set[str] = set()
    for reaction in network.reactions:
        delta = reaction.net_change()
        for species in reaction.species:
            change = delta.get(species, 0)
            if change < 0:
                consumed.add(species.name)
            elif change > 0:
                produced.add(species.name)
            elif reaction.is_catalytic_in(species):
                catalytic.add(species.name)
    pure_catalysts = catalytic - consumed - produced
    return CatalyticSummary(
        catalysts=pure_catalysts,
        sources_only=produced - consumed,
        sinks_only=consumed - produced)


def stranded_species(network: Network,
                     sources: "list | None" = None) -> set[str]:
    """Species that some reaction produces but nothing ever consumes
    (other than catalytically) -- quantity parks there forever.

    Legitimate for readout accumulators and wastes; a bug for anything
    colour-coded (see :mod:`repro.lint`).

    With the default ``sources=None`` the check is purely stoichiometric:
    every reaction counts as a potential consumer.  Passing an iterable
    of available species (or names) restricts the analysis to *fireable*
    reactions -- those whose reactants are in the reachable closure of
    ``sources`` -- which catches the zeroth-order trap where a source
    species' only consumer is gated on a catalyst that is never
    available:

        -> X @ slow           # X generated forever
        X + Y -> Y @ fast     # ...but Y has no supply: X parks

    Stoichiometrically X looks consumed; with ``sources=[]`` (or any
    seed that cannot produce ``Y``) it is correctly reported stranded.
    """
    if sources is None:
        summary = catalytic_summary(network)
        return summary.sources_only
    reach = reachable_species(network, sources)
    produced: set[str] = set()
    consumed: set[str] = set()
    for reaction in network.reactions:
        if not all(s.name in reach for s in reaction.reactants):
            continue  # can never fire: not a real producer or consumer
        for species, change in reaction.net_change().items():
            if change > 0:
                produced.add(species.name)
            elif change < 0:
                consumed.add(species.name)
    return produced - consumed


def reaction_order_histogram(network: Network) -> dict[int, int]:
    """How many reactions of each molecularity the network uses --
    relevant to implementability (DSD compiles orders <= 3)."""
    histogram: dict[int, int] = {}
    for reaction in network.reactions:
        histogram[reaction.order] = histogram.get(reaction.order, 0) + 1
    return histogram
