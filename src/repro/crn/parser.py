"""Text format for chemical reaction networks.

The format mirrors how the paper writes reactions.  One statement per line:

.. code-block:: text

    # comment
    network: delay_chain
    species R_1 color=red role=signal
    init X = 50
    X + Y -> 2 Z @ fast          # mass-action, symbolic rate category
    2 G -> I @ slow
    I + R -> 2 G + G_out @ 250.0 # numeric rate constant
    -> r @ slow                  # zeroth-order source
    r + R -> R @ fast            # catalytic consumption
    X ->  @ 0.1                  # degradation
    A <-> B @ slow / fast        # reversible: forward @ slow, back @ fast

The parser round-trips with :meth:`repro.crn.network.Network.to_text`.
"""

from __future__ import annotations

import re

from repro.crn.network import Network
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import ParseError

_TERM_RE = re.compile(r"^\s*(?:(\d+)\s+|(\d+)\s*\*\s*)?([A-Za-z_][\w.\[\]]*)\s*$")
_ATTR_RE = re.compile(r"^(\w+)=([\w.]+)$")


def _parse_side(text: str, line_no: int, line: str) -> dict[str, int]:
    text = text.strip()
    if not text or text == "0":
        return {}
    side: dict[str, int] = {}
    for term in text.split("+"):
        match = _TERM_RE.match(term)
        if not match:
            raise ParseError(f"cannot parse term {term.strip()!r}",
                             line_no, line)
        coeff = int(match.group(1) or match.group(2) or 1)
        name = match.group(3)
        side[name] = side.get(name, 0) + coeff
    return side


def _parse_rate(text: str, line_no: int, line: str) -> float | str:
    text = text.strip()
    if re.match(r"^[A-Za-z_]\w*$", text):
        return text
    try:
        value = float(text)
    except ValueError:
        raise ParseError(f"cannot parse rate {text!r}", line_no, line) from None
    if value < 0:
        raise ParseError("rate must be non-negative", line_no, line)
    return value


def parse_network(text: str, name: str = "crn") -> Network:
    """Parse CRN text into a :class:`~repro.crn.network.Network`."""
    network = Network(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line, _, comment = raw.partition("#")
        line = line.strip()
        if not line:
            continue
        if line.startswith("network:"):
            network.name = line.split(":", 1)[1].strip() or network.name
            continue
        if line.startswith("species "):
            _parse_species_line(network, line, line_no, raw)
            continue
        if line.startswith("init "):
            _parse_init_line(network, line, line_no, raw)
            continue
        # A trailing comment on a reaction line round-trips as its label.
        _parse_reaction_line(network, line, line_no, raw,
                             label=comment.strip())
    return network


def _parse_species_line(network: Network, line: str, line_no: int,
                        raw: str) -> None:
    parts = line.split()
    if len(parts) < 2:
        raise ParseError("species line needs a name", line_no, raw)
    name = parts[1]
    attrs: dict[str, str] = {}
    for part in parts[2:]:
        match = _ATTR_RE.match(part)
        if not match:
            raise ParseError(f"bad species attribute {part!r}", line_no, raw)
        attrs[match.group(1)] = match.group(2)
    try:
        species = Species(name, color=attrs.get("color"),
                          role=attrs.get("role", "signal"))
        network.add_species(species)
    except ParseError:
        raise
    except Exception as exc:
        # Bad colour/role, invalid name, or a re-declaration that
        # conflicts with an earlier line -- all user errors in the file.
        raise ParseError(str(exc), line_no, raw) from exc
    network.provenance[("species", name)] = line_no


def _parse_init_line(network: Network, line: str, line_no: int,
                     raw: str) -> None:
    body = line[len("init "):]
    if "=" not in body:
        raise ParseError("init line needs 'name = value'", line_no, raw)
    name, value_text = body.split("=", 1)
    try:
        value = float(value_text)
    except ValueError:
        raise ParseError(f"bad init value {value_text.strip()!r}",
                         line_no, raw) from None
    if value < 0:
        raise ParseError("init value must be non-negative", line_no, raw)
    network.set_initial(name.strip(), value)


def _parse_reaction_line(network: Network, line: str, line_no: int,
                         raw: str, label: str = "") -> None:
    if "@" in line:
        body, rate_text = line.rsplit("@", 1)
    else:
        body, rate_text = line, "slow"
    reversible = "<->" in body
    arrow = "<->" if reversible else "->"
    if arrow not in body:
        raise ParseError("expected '->' or '<->'", line_no, raw)
    left_text, right_text = body.split(arrow, 1)
    left = _parse_side(left_text, line_no, raw)
    right = _parse_side(right_text, line_no, raw)
    if not left and not right:
        raise ParseError("reaction with both sides empty", line_no, raw)
    if reversible:
        if "/" not in rate_text:
            raise ParseError("reversible reaction needs 'fwd / bwd' rates",
                             line_no, raw)
        fwd_text, bwd_text = rate_text.split("/", 1)
        fwd = _parse_rate(fwd_text, line_no, raw)
        bwd = _parse_rate(bwd_text, line_no, raw)
        network.add_reaction(Reaction(left, right, fwd, label=label))
        network.provenance[("reaction", network.n_reactions - 1)] = line_no
        network.add_reaction(Reaction(right, left, bwd, label=label))
        network.provenance[("reaction", network.n_reactions - 1)] = line_no
    else:
        rate = _parse_rate(rate_text, line_no, raw)
        network.add_reaction(Reaction(left, right, rate, label=label))
        network.provenance[("reaction", network.n_reactions - 1)] = line_no


def load_network(path, name: str | None = None) -> Network:
    """Parse a network from a file path."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return parse_network(text, name=name or str(path))
