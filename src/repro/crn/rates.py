"""Coarse rate categories and their numeric resolution.

The paper's central robustness idea is that reactions fall into just two
coarse categories, ``fast`` and ``slow``:

    "it does not matter how fast any 'fast' reaction is relative to
    another, or how slow any 'slow' reaction is relative to another --
    only that 'fast' reactions are fast relative to 'slow' reactions."

A :class:`RateScheme` maps category names to numeric rate constants used by
a particular simulation.  Keeping reactions *symbolic* until simulation time
is what lets the rate-robustness benchmarks re-run one network under many
different schemes (including per-reaction jitter) without rebuilding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetworkError

#: Category names used throughout the library.
FAST = "fast"
SLOW = "slow"
#: Zeroth-order absence-indicator generation used by the sharpened
#: ("catalytic") gating mode.  It only *seeds* the indicator amplifier, so
#: it is small; like ``amp`` it scales with the slow category in
#: robustness sweeps.  (The companion-faithful "consuming" mode generates
#: indicators at ``k_slow`` itself, as published.)
GEN = "gen"

#: First-order indicator self-amplification (``b -> 2b``) used by the
#: sharpened ("catalytic") gating mode.  The ratio ``amp / fast`` is the
#: absence threshold: a colour whose total quantity exceeds it pins its
#: indicator at a tiny floor; below it the indicator switches on
#: exponentially.  Like ``gen`` it scales with the slow category.
AMP = "amp"

#: Second-order indicator self-damping (``2b -> b``).  Together with
#: ``amp`` it caps the ON level of an amplified indicator at ``amp/damp``.
#: Raising it (relative to ``k_slow``) lowers both the gate's ON level and
#: -- more importantly -- the standing residue of the linearised-division
#: intermediates (``h_ss = (amp/damp) * k_slow/k_fast``), keeping the sum
#: of all residues below the absence threshold ``amp/k_fast``.
DAMP = "damp"

#: Numeric values from the paper's ODE validation (unitless time).
DEFAULT_FAST = 1000.0
DEFAULT_SLOW = 1.0
DEFAULT_GEN = 0.01
DEFAULT_AMP = 30.0
DEFAULT_DAMP = 1.0


@dataclass(frozen=True)
class RateScheme:
    """Numeric interpretation of symbolic rate categories.

    Parameters
    ----------
    values:
        mapping from category name to rate constant.  ``fast`` and ``slow``
        default to the paper's values (1000 and 1).
    """

    values: dict[str, float] = field(
        default_factory=lambda: {FAST: DEFAULT_FAST, SLOW: DEFAULT_SLOW,
                                 GEN: DEFAULT_GEN, AMP: DEFAULT_AMP,
                                 DAMP: DEFAULT_DAMP})

    def __post_init__(self):
        for name, value in self.values.items():
            if not np.isfinite(value) or value <= 0:
                raise NetworkError(
                    f"rate category {name!r} must be positive and finite, "
                    f"got {value!r}")
        if GEN not in self.values:
            # Generation tracks the slow category by default.
            self.values[GEN] = self.values.get(SLOW, DEFAULT_SLOW) \
                * DEFAULT_GEN
        if AMP not in self.values:
            self.values[AMP] = self.values.get(SLOW, DEFAULT_SLOW) \
                * DEFAULT_AMP
        if DAMP not in self.values:
            self.values[DAMP] = self.values.get(SLOW, DEFAULT_SLOW) \
                * DEFAULT_DAMP

    @property
    def fast(self) -> float:
        return self.values[FAST]

    @property
    def slow(self) -> float:
        return self.values[SLOW]

    @property
    def separation(self) -> float:
        """Ratio k_fast / k_slow -- the time-scale separation."""
        return self.fast / self.slow

    def resolve(self, rate: "float | str") -> float:
        """Resolve a symbolic or numeric rate to a number."""
        if isinstance(rate, str):
            try:
                return self.values[rate]
            except KeyError:
                raise NetworkError(f"unknown rate category {rate!r}; "
                                   f"scheme defines {sorted(self.values)}") from None
        value = float(rate)
        if not np.isfinite(value) or value < 0:
            raise NetworkError(f"invalid numeric rate {rate!r}")
        return value

    def scaled(self, fast_factor: float = 1.0,
               slow_factor: float = 1.0) -> "RateScheme":
        """A new scheme with the fast/slow values multiplied by factors.

        The generation category scales with the slow factor (it is a slow
        reaction from an abundant source).
        """
        values = dict(self.values)
        values[FAST] = values[FAST] * fast_factor
        values[SLOW] = values[SLOW] * slow_factor
        values[GEN] = values[GEN] * slow_factor
        values[AMP] = values[AMP] * slow_factor
        values[DAMP] = values[DAMP] * slow_factor
        return RateScheme(values)

    def compressed(self, factor: float) -> "RateScheme":
        """A scheme with the fast/slow separation divided by ``factor``.

        The paper's robustness guarantee erodes exactly along this axis:
        compressing the separation models every fast reaction slowing
        toward the slow time scale at once (the fault-injection
        campaigns binary-search this factor for the robustness margin).
        Slow-tracking categories (``gen``/``amp``/``damp``) are
        untouched, so only the guarantee's premise is attacked.
        """
        if not np.isfinite(factor) or factor <= 0:
            raise NetworkError("compression factor must be positive")
        return self.scaled(fast_factor=1.0 / factor)

    @classmethod
    def with_separation(cls, separation: float, slow: float = DEFAULT_SLOW,
                        generation: float | None = None) -> "RateScheme":
        """A scheme with the given k_fast / k_slow ratio."""
        if separation <= 0:
            raise NetworkError("separation must be positive")
        if generation is None:
            generation = slow * DEFAULT_GEN
        return cls({FAST: slow * separation, SLOW: slow, GEN: generation,
                    AMP: slow * DEFAULT_AMP, DAMP: slow * DEFAULT_DAMP})


def jittered_rates(network, scheme: RateScheme, rng: np.random.Generator,
                   low: float = 0.5, high: float = 2.0) -> np.ndarray:
    """Per-reaction rate constants with independent multiplicative jitter.

    Every reaction's resolved rate is multiplied by an independent uniform
    factor in ``[low, high)``.  This models the paper's claim that only the
    *category* matters: within a category the constants may vary freely.

    Returns an array aligned with ``network.reactions``.
    """
    rates = np.array([scheme.resolve(rxn.rate) for rxn in network.reactions])
    jitter = rng.uniform(low, high, size=rates.shape)
    return rates * jitter


def lognormal_rates(network, scheme: RateScheme, rng: np.random.Generator,
                    sigma: float = 0.25) -> np.ndarray:
    """Per-reaction rate constants with log-normal multiplicative mismatch.

    Each resolved rate is multiplied by an independent
    ``exp(N(0, sigma^2))`` factor -- the standard model for fabrication
    mismatch of rate constants (median-preserving, always positive).
    Unlike :func:`jittered_rates`' bounded uniform jitter, the log-normal
    tail occasionally produces large mismatches, which is what the
    fault-injection campaigns are probing.
    """
    if sigma < 0:
        raise NetworkError("sigma must be non-negative")
    rates = np.array([scheme.resolve(rxn.rate) for rxn in network.reactions])
    return rates * rng.lognormal(mean=0.0, sigma=sigma, size=rates.shape)
