"""Molecular species.

A species is the unit of "signal" in molecular computation: following the
paper, *all signals are quantities of chemical types*.  Species carry
optional metadata used by the synchronous framework:

``color``
    one of ``"red"``, ``"green"``, ``"blue"`` for signal/clock types that
    take part in the three-phase transfer protocol, or ``None`` for types
    outside the protocol (absence indicators, feedback intermediates,
    auxiliary loop species).

``role``
    a coarse classification used by analysis and bookkeeping tools:
    ``"signal"``, ``"clock"``, ``"indicator"``, ``"feedback"`` or ``"aux"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import NetworkError

#: Colour categories of the three-phase protocol, in rotation order.
COLORS = ("red", "green", "blue")

#: Recognised species roles.
ROLES = ("signal", "clock", "indicator", "feedback", "aux")

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\[\]]*$")


def next_color(color: str) -> str:
    """Return the colour that follows ``color`` in the rotation.

    >>> next_color("red")
    'green'
    >>> next_color("blue")
    'red'
    """
    try:
        index = COLORS.index(color)
    except ValueError:
        raise NetworkError(f"unknown colour {color!r}; expected one of {COLORS}") from None
    return COLORS[(index + 1) % len(COLORS)]


def previous_color(color: str) -> str:
    """Return the colour that precedes ``color`` in the rotation."""
    try:
        index = COLORS.index(color)
    except ValueError:
        raise NetworkError(f"unknown colour {color!r}; expected one of {COLORS}") from None
    return COLORS[(index - 1) % len(COLORS)]


@dataclass(frozen=True)
class Species:
    """A molecular type.

    Species compare and hash by name only, so two ``Species`` objects with
    the same name refer to the same chemical type even if their metadata
    differs; the network registry rejects conflicting re-declarations.
    """

    name: str
    color: str | None = field(default=None, compare=False)
    role: str = field(default="signal", compare=False)
    doc: str = field(default="", compare=False)

    def __post_init__(self):
        if not _NAME_RE.match(self.name):
            raise NetworkError(f"invalid species name {self.name!r}")
        if self.color is not None and self.color not in COLORS:
            raise NetworkError(
                f"species {self.name!r}: unknown colour {self.color!r}")
        if self.role not in ROLES:
            raise NetworkError(
                f"species {self.name!r}: unknown role {self.role!r}")

    def __str__(self) -> str:
        return self.name

    def same_metadata(self, other: "Species") -> bool:
        """True if ``other`` declares identical colour and role."""
        return (self.name == other.name and self.color == other.color
                and self.role == other.role)


def as_species(value: "Species | str") -> Species:
    """Coerce a name or species object to a :class:`Species`."""
    if isinstance(value, Species):
        return value
    return Species(str(value))
