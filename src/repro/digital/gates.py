"""Combinational Boolean gates on dual-rail bits.

Each gate consumes one unit from one rail of each input bit and produces
one unit on the correct rail of the output bit.  Because exactly one rail
of each input carries the unit, exactly one of the gate's reactions can
fire -- the evaluation is deterministic and rate-independent (all gate
reactions are fast; which one fires is decided by *which reactants exist*,
never by rate ratios).

Gates destroy their inputs (as molecular events do); use :func:`fan_out`
to copy a bit that feeds several gates.
"""

from __future__ import annotations

from repro.crn.network import Network
from repro.crn.rates import FAST

from repro.digital.bits import Bit
from repro.errors import NetworkError

#: Truth tables, keyed by (a, b) for binary gates.
_TABLES = {
    "and": {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    "or": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
    "xor": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
    "nand": {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0},
    "nor": {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0},
    "xnor": {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1},
}


def _rail(bit: Bit, value: int) -> str:
    return bit.hi if value else bit.lo


def binary_gate(network: Network, kind: str, a: Bit, b: Bit,
                out: Bit) -> Bit:
    """Emit the four reactions of a two-input gate (inputs consumed)."""
    try:
        table = _TABLES[kind]
    except KeyError:
        raise NetworkError(f"unknown gate kind {kind!r}; "
                           f"expected one of {sorted(_TABLES)}") from None
    out.declare(network)
    for (va, vb), vo in table.items():
        network.add(
            {_rail(a, va): 1, _rail(b, vb): 1}, {_rail(out, vo): 1},
            FAST, label=f"{kind}({a.name}={va},{b.name}={vb})")
    return out


def and_gate(network: Network, a: Bit, b: Bit, out: Bit) -> Bit:
    return binary_gate(network, "and", a, b, out)


def or_gate(network: Network, a: Bit, b: Bit, out: Bit) -> Bit:
    return binary_gate(network, "or", a, b, out)


def xor_gate(network: Network, a: Bit, b: Bit, out: Bit) -> Bit:
    return binary_gate(network, "xor", a, b, out)


def nand_gate(network: Network, a: Bit, b: Bit, out: Bit) -> Bit:
    return binary_gate(network, "nand", a, b, out)


def nor_gate(network: Network, a: Bit, b: Bit, out: Bit) -> Bit:
    return binary_gate(network, "nor", a, b, out)


def not_gate(network: Network, a: Bit, out: Bit) -> Bit:
    """Inverter: swap rails (input consumed)."""
    out.declare(network)
    network.add({a.hi: 1}, {out.lo: 1}, FAST, label=f"not {a.name} hi")
    network.add({a.lo: 1}, {out.hi: 1}, FAST, label=f"not {a.name} lo")
    return out


def fan_out(network: Network, a: Bit, copies: list[Bit]) -> list[Bit]:
    """Copy a bit into several fresh bits (input consumed).

    One reaction per rail produces the same rail of every copy at once.
    """
    if not copies:
        raise NetworkError("fan_out needs at least one copy")
    for copy in copies:
        copy.declare(network)
    network.add({a.hi: 1}, {c.hi: 1 for c in copies}, FAST,
                label=f"fanout {a.name} hi")
    network.add({a.lo: 1}, {c.lo: 1 for c in copies}, FAST,
                label=f"fanout {a.name} lo")
    return copies


def half_adder(network: Network, a: Bit, b: Bit, total: Bit,
               carry: Bit) -> tuple[Bit, Bit]:
    """Sum and carry of two bits (inputs consumed)."""
    total.declare(network)
    carry.declare(network)
    table = {(0, 0): (0, 0), (0, 1): (1, 0), (1, 0): (1, 0), (1, 1): (0, 1)}
    for (va, vb), (vs, vc) in table.items():
        network.add({_rail(a, va): 1, _rail(b, vb): 1},
                    {_rail(total, vs): 1, _rail(carry, vc): 1},
                    FAST, label=f"half_adder({va},{vb})")
    return total, carry


def full_adder(network: Network, a: Bit, b: Bit, carry_in: Bit,
               total: Bit, carry_out: Bit) -> tuple[Bit, Bit]:
    """Three-input adder as a single reaction family (inputs consumed).

    A direct eight-reaction realisation: molecular logic permits
    multi-input "gates" with one reaction per input combination.
    """
    total.declare(network)
    carry_out.declare(network)
    for va in (0, 1):
        for vb in (0, 1):
            for vc in (0, 1):
                s = va + vb + vc
                network.add(
                    {_rail(a, va): 1, _rail(b, vb): 1,
                     _rail(carry_in, vc): 1},
                    {_rail(total, s & 1): 1, _rail(carry_out, s >> 1): 1},
                    FAST, label=f"full_adder({va},{vb},{vc})")
    return total, carry_out
