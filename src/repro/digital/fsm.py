"""Finite-state machines with molecular reactions.

A Moore machine maps directly onto a CRN with **one-hot state encoding**:
each state is a molecular type, exactly one of which holds one unit; each
input symbol is a pulse type; each transition is one fast reaction

    symbol_pulse + state -> next_state (+ output_pulse if emitting)

Exactly one transition reaction is enabled per (pulse, state) pair, so
the machine is deterministic and rate-independent.  Outputs accumulate in
uncoloured counter types (e.g. an "accept" event counter).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import FAST, RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.species import Species
from repro.errors import NetworkError, SimulationError
from repro.waves.probe import ensure_probe, signal_key


class MolecularFSM:
    """Compile a Moore machine to reactions and drive it with symbols.

    Parameters
    ----------
    states:
        state names; the first is the initial state.
    symbols:
        input alphabet.
    transitions:
        mapping ``(state, symbol) -> next_state``; must be total.
    emit:
        optional mapping ``(state, symbol) -> output_name`` -- an output
        event counter bumped when that transition fires (Mealy outputs;
        Moore outputs are simply functions of the observable state).
    """

    def __init__(self, states: list[str], symbols: list[str],
                 transitions: Mapping[tuple[str, str], str],
                 emit: Mapping[tuple[str, str], str] | None = None,
                 name: str = "fsm"):
        if not states:
            raise NetworkError("FSM needs at least one state")
        if len(set(states)) != len(states):
            raise NetworkError("duplicate state names")
        self.states = list(states)
        self.symbols = list(symbols)
        self.transitions = dict(transitions)
        self.emit = dict(emit or {})
        self.name = name
        self._check_total()
        self.network = Network(f"fsm_{name}")
        self.outputs = sorted(set(self.emit.values()))
        self._build()

    def _check_total(self) -> None:
        for state in self.states:
            for symbol in self.symbols:
                if (state, symbol) not in self.transitions:
                    raise NetworkError(
                        f"transition missing for ({state!r}, {symbol!r})")
                target = self.transitions[(state, symbol)]
                if target not in self.states:
                    raise NetworkError(f"unknown target state {target!r}")

    def _state_species(self, state: str) -> str:
        return f"{self.name}_S_{state}"

    def _symbol_species(self, symbol: str) -> str:
        return f"{self.name}_I_{symbol}"

    def _output_species(self, output: str) -> str:
        return f"{self.name}_O_{output}"

    def _build(self) -> None:
        for state in self.states:
            self.network.add_species(Species(self._state_species(state)))
        for symbol in self.symbols:
            self.network.add_species(
                Species(self._symbol_species(symbol), role="aux"))
        for output in self.outputs:
            self.network.add_species(
                Species(self._output_species(output), role="aux"))
        self.network.set_initial(self._state_species(self.states[0]), 1.0)
        for (state, symbol), target in self.transitions.items():
            products = {self._state_species(target): 1}
            if (state, symbol) in self.emit:
                output = self._output_species(self.emit[(state, symbol)])
                products[output] = products.get(output, 0) + 1
            self.network.add(
                {self._symbol_species(symbol): 1,
                 self._state_species(state): 1},
                products, FAST,
                label=f"{state} --{symbol}--> {target}")

    # -- driving -------------------------------------------------------------------

    def run(self, word: Iterable[str], scheme: RateScheme | None = None,
            settle_time: float | None = None, stochastic: bool = True,
            seed: int | None = None, probe=None) -> "FsmRun":
        """Feed a symbol sequence; return the state/output trace.

        ``probe`` takes a :class:`~repro.waves.probe.WaveformProbe`
        charting the one-hot state (a symbolic ``state`` lane) and the
        cumulative output counts, one reading per consumed symbol.
        """
        scheme = scheme or RateScheme()
        settle = settle_time or 100.0 / scheme.fast
        if stochastic:
            simulator = StochasticSimulator(self.network, scheme, seed=seed)
        else:
            simulator = OdeSimulator(self.network, scheme)
        probe = ensure_probe(probe)
        state = self.network.initial_vector()
        trace = [self.read_state(state)]
        output_counts = {o: [0] for o in self.outputs}
        if probe.enabled:
            self._sample_probe(probe, 0, trace[0],
                               {o: 0 for o in self.outputs})
        for reading, symbol in enumerate(word, start=1):
            if symbol not in self.symbols:
                raise NetworkError(f"unknown symbol {symbol!r}")
            state = state.copy()
            state[self.network.species_index(
                self._symbol_species(symbol))] += 1.0
            trajectory = simulator.simulate(settle, initial=state,
                                            n_samples=4)
            state = trajectory.final()
            trace.append(self.read_state(state))
            counts_now = {}
            for output in self.outputs:
                count = state[self.network.species_index(
                    self._output_species(output))]
                counts_now[output] = int(round(float(count)))
                output_counts[output].append(counts_now[output])
            if probe.enabled:
                self._sample_probe(probe, reading, trace[-1], counts_now,
                                   symbol=symbol, t=reading * settle)
        return FsmRun(trace=trace, output_counts=output_counts)

    def _sample_probe(self, probe, reading: int, state_name: str,
                      counts: Mapping[str, int],
                      symbol: str | None = None,
                      t: float = 0.0) -> None:
        """One waveform reading: state lane, outputs, boundary sample."""
        probe.record(f"{self.name}_state", t, state_name, kind="state")
        boundary = {"cycle": reading, "t": t, "state": state_name}
        if symbol is not None:
            boundary["symbol"] = symbol
        for output, count in counts.items():
            probe.record(f"{self.name}_O_{output}", t, count,
                         kind="int", width=8)
            boundary[signal_key(output)] = count
        probe.boundary(reading, t, boundary)

    def read_state(self, state: np.ndarray) -> str:
        """The (unique) occupied state, or raise if not settled."""
        occupied = []
        for name in self.states:
            value = float(state[self.network.species_index(
                self._state_species(name))])
            if value > 0.5:
                occupied.append((name, value))
        if len(occupied) != 1 or abs(occupied[0][1] - 1.0) > 0.2:
            raise SimulationError(f"FSM state not settled: {occupied}")
        return occupied[0][0]


class FsmRun:
    """State trace plus cumulative output event counts."""

    def __init__(self, trace: list[str],
                 output_counts: dict[str, list[int]]):
        self.trace = trace
        self.output_counts = output_counts

    def emissions(self, output: str) -> list[int]:
        """Per-step emission increments of one output."""
        counts = self.output_counts[output]
        return [b - a for a, b in zip(counts, counts[1:])]


def parity_machine(name: str = "parity") -> MolecularFSM:
    """Tracks the parity of '1' symbols seen; emits on odd->even."""
    transitions = {
        ("even", "0"): "even", ("even", "1"): "odd",
        ("odd", "0"): "odd", ("odd", "1"): "even",
    }
    emit = {("odd", "1"): "even_again"}
    return MolecularFSM(["even", "odd"], ["0", "1"], transitions, emit,
                        name=name)


def sequence_detector(pattern: str = "101",
                      name: str = "detector") -> MolecularFSM:
    """Detects (overlapping) occurrences of a binary pattern, emitting a
    ``hit`` event on each completion."""
    if not pattern or any(c not in "01" for c in pattern):
        raise NetworkError("pattern must be a non-empty binary string")
    prefixes = [pattern[:i] for i in range(len(pattern))]

    def next_prefix(prefix: str, symbol: str) -> str:
        candidate = prefix + symbol
        while candidate and candidate not in (prefixes + [pattern]):
            candidate = candidate[1:]
        if candidate == pattern:
            # Overlap: fall back to the longest proper prefix-suffix.
            candidate = candidate[1:]
            while candidate and candidate not in prefixes:
                candidate = candidate[1:]
        return candidate

    states = [f"p{len(p)}" for p in prefixes]
    transitions = {}
    emit = {}
    for prefix, state in zip(prefixes, states):
        for symbol in "01":
            candidate = prefix + symbol
            if candidate == pattern or candidate.endswith(pattern):
                emit[(state, symbol)] = "hit"
            target = next_prefix(prefix, symbol)
            transitions[(state, symbol)] = f"p{len(target)}"
    return MolecularFSM(states, ["0", "1"], transitions, emit, name=name)
