"""Dual-rail molecular bits.

A bit is a pair of molecular types ``<name>_hi`` / ``<name>_lo`` with the
invariant that exactly one of the two holds one unit of quantity.  With
low concentration = logical 0 and high = logical 1 (as the paper frames
clock levels), the dual-rail pair makes both polarities *available as
reactants*, which is what lets ordinary mass-action reactions implement
complete Boolean logic: a reaction can test a bit by consuming the rail
that carries the unit.
"""

from __future__ import annotations

from repro.crn.network import Network
from repro.crn.simulation.result import Trajectory
from repro.crn.species import Species
from repro.errors import NetworkError

#: Quantity representing one logical unit.
UNIT = 1.0

#: Classification margin: rails must be this close to 0 or UNIT.
MARGIN = 0.2


class Bit:
    """Names and helpers for one dual-rail bit."""

    def __init__(self, name: str):
        self.name = name
        self.hi = f"{name}_hi"
        self.lo = f"{name}_lo"

    def declare(self, network: Network, value: bool | None = None) -> "Bit":
        """Register both rails; optionally set the initial logical value."""
        network.add_species(Species(self.hi))
        network.add_species(Species(self.lo))
        if value is not None:
            self.set(network, value)
        return self

    def set(self, network: Network, value: bool) -> None:
        network.set_initial(self.hi, UNIT if value else 0.0)
        network.set_initial(self.lo, 0.0 if value else UNIT)

    def read_state(self, get) -> bool:
        """Classify the bit from a ``get(species_name) -> float`` accessor.

        Raises :class:`NetworkError` if the rails are not cleanly settled
        (both present, both absent, or mid-scale quantities).
        """
        hi, lo = float(get(self.hi)), float(get(self.lo))
        if abs(hi - UNIT) <= MARGIN and abs(lo) <= MARGIN:
            return True
        if abs(lo - UNIT) <= MARGIN and abs(hi) <= MARGIN:
            return False
        raise NetworkError(
            f"bit {self.name!r} is not settled: hi={hi:.3f} lo={lo:.3f}")

    def read_soft(self, get) -> tuple[bool, bool]:
        """Best-effort classification: ``(value, settled)``.

        The fault-injection campaigns must keep scoring after a bit goes
        mushy, so this returns the majority rail as the value and flags
        whether :meth:`read_state` would have accepted the state.
        """
        hi, lo = float(get(self.hi)), float(get(self.lo))
        value = hi >= lo
        if value:
            settled = abs(hi - UNIT) <= MARGIN and abs(lo) <= MARGIN
        else:
            settled = abs(lo - UNIT) <= MARGIN and abs(hi) <= MARGIN
        return value, settled

    def read(self, trajectory: Trajectory, t: float | None = None) -> bool:
        """Classify the bit at time ``t`` (default: final sample).

        ``t`` must lie within the simulated horizon; a readout schedule
        that outruns the trajectory raises :class:`SimulationError`
        instead of silently reading the clamped endpoint value.
        """
        if t is None:
            return self.read_state(lambda n: trajectory.final(n))
        return self.read_state(lambda n: trajectory.at(t, n))


def bits_to_int(values: list[bool]) -> int:
    """LSB-first bit list to integer."""
    return sum(1 << i for i, v in enumerate(values) if v)


def int_to_bits(value: int, width: int) -> list[bool]:
    """Integer to LSB-first bit list of fixed width."""
    if value < 0 or value >= (1 << width):
        raise NetworkError(f"{value} does not fit in {width} bits")
    return [bool((value >> i) & 1) for i in range(width)]
