"""The molecular binary counter -- a sequential digital example.

State: ``n`` dual-rail bits.  Input: an increment pulse (one unit of a
pulse type).  The pulse ripples through the bits exactly as a carry chain:

    P_i + hi_i -> lo_i + P_{i+1}     (bit was 1: flip to 0, carry on)
    P_i + lo_i -> hi_i               (bit was 0: flip to 1, absorb pulse)

Because each bit presents exactly one rail, the pulse's path is fully
determined; the chain is self-sequencing (the carry token cannot skip a
bit) and rate-independent (every reaction is fast; no races between
enabled reactions ever exist).  The final carry out of the top bit lands
in an overflow accumulator, so counting is modulo ``2**n`` with an
observable wrap count.

Digital logic on unit quantities is *single-molecule* computation: a
pulse meets each bit exactly once.  The exact stochastic semantics (SSA)
realises this perfectly; the deterministic ODE continuum does not (a
pulse fractionally flips a bit and then reacts with the flipped rail),
so the drivers default to ``stochastic=True``.
"""

from __future__ import annotations

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import FAST, RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.species import Species
from repro.digital.bits import Bit, bits_to_int
from repro.errors import NetworkError, SimulationError


class BinaryCounter:
    """An ``n``-bit molecular ripple counter."""

    def __init__(self, n_bits: int = 3, name: str = "ctr"):
        if n_bits < 1:
            raise NetworkError("counter needs at least one bit")
        self.n_bits = n_bits
        self.name = name
        self.network = Network(f"counter_{n_bits}")
        self.bits = [Bit(f"{name}_b{i}") for i in range(n_bits)]
        self.pulses = [f"{name}_P{i}" for i in range(n_bits + 1)]
        self.overflow = f"{name}_ovf"
        self._build()

    def _build(self) -> None:
        for bit in self.bits:
            bit.declare(self.network, value=False)
        for pulse in self.pulses:
            self.network.add_species(Species(pulse, role="aux"))
        self.network.add_species(Species(self.overflow, role="aux"))
        for i, bit in enumerate(self.bits):
            self.network.add({self.pulses[i]: 1, bit.hi: 1},
                             {bit.lo: 1, self.pulses[i + 1]: 1}, FAST,
                             label=f"bit {i} carry")
            self.network.add({self.pulses[i]: 1, bit.lo: 1},
                             {bit.hi: 1}, FAST, label=f"bit {i} set")
        self.network.add({self.pulses[-1]: 1}, {self.overflow: 1}, FAST,
                         label="overflow")

    @property
    def input_pulse(self) -> str:
        return self.pulses[0]

    def read(self, get) -> int:
        """Counter value from a state accessor."""
        return bits_to_int([bit.read_state(get) for bit in self.bits])

    def count(self, n_pulses: int, scheme: RateScheme | None = None,
              settle_time: float | None = None,
              stochastic: bool = True, seed: int | None = None,
              tracer=None, metrics=None) -> "CounterRun":
        """Apply ``n_pulses`` increments, reading the value after each."""
        scheme = scheme or RateScheme()
        settle = settle_time or 100.0 / scheme.fast
        if stochastic:
            simulator = StochasticSimulator(self.network, scheme, seed=seed,
                                            tracer=tracer, metrics=metrics)
        else:
            simulator = OdeSimulator(self.network, scheme,
                                     tracer=tracer, metrics=metrics)
        tracer = simulator.tracer
        metrics = simulator.metrics
        state = self.network.initial_vector()
        pulse_index = self.network.species_index(self.input_pulse)
        values = [self.read(self._getter(state))]
        for pulse in range(int(n_pulses)):
            state = state.copy()
            state[pulse_index] += 1.0
            trajectory = simulator.simulate(settle, initial=state,
                                            n_samples=4)
            state = trajectory.final()
            values.append(self.read(self._getter(state)))
            if tracer.enabled:
                tracer.emit_span(f"pulse:{pulse}", "machine",
                                 pulse * settle, (pulse + 1) * settle,
                                 {"value": values[-1]})
            if metrics.enabled:
                metrics.inc("counter.pulses")
        overflow = float(state[self.network.species_index(self.overflow)])
        return CounterRun(values=values, overflow=int(round(overflow)))

    def _getter(self, state: np.ndarray):
        network = self.network

        def get(name: str) -> float:
            return float(state[network.species_index(name)])

        return get


class CounterRun:
    """Sequence of counter readings, one per applied pulse."""

    def __init__(self, values: list[int], overflow: int):
        self.values = values
        self.overflow = overflow

    def expected(self, modulo: int) -> list[int]:
        return [i % modulo for i in range(len(self.values))]

    def check(self, modulo: int) -> None:
        expected = self.expected(modulo)
        if self.values != expected:
            raise SimulationError(
                f"counter sequence {self.values} != expected {expected}")
