"""The molecular binary counter -- a sequential digital example.

State: ``n`` dual-rail bits.  Input: an increment pulse (one unit of a
pulse type).  The pulse ripples through the bits exactly as a carry chain:

    P_i + hi_i -> lo_i + P_{i+1}     (bit was 1: flip to 0, carry on)
    P_i + lo_i -> hi_i               (bit was 0: flip to 1, absorb pulse)

Because each bit presents exactly one rail, the pulse's path is fully
determined; the chain is self-sequencing (the carry token cannot skip a
bit) and rate-independent (every reaction is fast; no races between
enabled reactions ever exist).  The final carry out of the top bit lands
in an overflow accumulator, so counting is modulo ``2**n`` with an
observable wrap count.

Digital logic on unit quantities is *single-molecule* computation: a
pulse meets each bit exactly once.  The exact stochastic semantics (SSA)
realises this perfectly; the deterministic ODE continuum does not (a
pulse fractionally flips a bit and then reacts with the flipped rail),
so the drivers default to ``stochastic=True``.
"""

from __future__ import annotations

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import FAST, RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.ssa import StochasticSimulator
from repro.crn.species import Species
from repro.digital.bits import Bit, bits_to_int
from repro.errors import NetworkError, SimulationError
from repro.waves.probe import ensure_probe, signal_key


class BinaryCounter:
    """An ``n``-bit molecular ripple counter."""

    def __init__(self, n_bits: int = 3, name: str = "ctr"):
        if n_bits < 1:
            raise NetworkError("counter needs at least one bit")
        self.n_bits = n_bits
        self.name = name
        self.network = Network(f"counter_{n_bits}")
        self.bits = [Bit(f"{name}_b{i}") for i in range(n_bits)]
        self.pulses = [f"{name}_P{i}" for i in range(n_bits + 1)]
        self.overflow = f"{name}_ovf"
        self._build()

    def _build(self) -> None:
        for bit in self.bits:
            bit.declare(self.network, value=False)
        for pulse in self.pulses:
            self.network.add_species(Species(pulse, role="aux"))
        self.network.add_species(Species(self.overflow, role="aux"))
        for i, bit in enumerate(self.bits):
            self.network.add({self.pulses[i]: 1, bit.hi: 1},
                             {bit.lo: 1, self.pulses[i + 1]: 1}, FAST,
                             label=f"bit {i} carry")
            self.network.add({self.pulses[i]: 1, bit.lo: 1},
                             {bit.hi: 1}, FAST, label=f"bit {i} set")
        self.network.add({self.pulses[-1]: 1}, {self.overflow: 1}, FAST,
                         label="overflow")

    @property
    def input_pulse(self) -> str:
        return self.pulses[0]

    def read(self, get) -> int:
        """Counter value from a state accessor."""
        return bits_to_int([bit.read_state(get) for bit in self.bits])

    def read_soft(self, get) -> tuple[int, int]:
        """Best-effort ``(value, n_unsettled_bits)`` (never raises)."""
        readings = [bit.read_soft(get) for bit in self.bits]
        value = bits_to_int([v for v, _ in readings])
        return value, sum(1 for _, settled in readings if not settled)

    def count(self, n_pulses: int, scheme: RateScheme | None = None,
              settle_time: float | None = None,
              stochastic: bool = True, seed=None,
              tracer=None, metrics=None,
              faults=None, strict: bool = True,
              probe=None) -> "CounterRun":
        """Apply ``n_pulses`` increments, reading the value after each.

        ``faults`` takes a :class:`~repro.faults.models.FaultPlan` whose
        perturbations are materialised before the run.  ``strict=False``
        switches readings to :meth:`read_soft` -- mushy bits are scored
        (best-guess value, ``settled`` flag) instead of raising -- which
        is how the robustness campaigns keep measuring past the first
        failure.  ``probe`` takes a
        :class:`~repro.waves.probe.WaveformProbe` charting the bit
        rails, counter value and carry residual per reading (unsettled
        rails chart as ``x``).
        """
        scheme = scheme or RateScheme()
        network = self.network
        rates = None
        if faults is not None and faults.active:
            setup = faults.materialize(network, scheme)
            network, scheme, rates = setup.network, setup.scheme, setup.rates
        settle = settle_time or 100.0 / scheme.fast
        if stochastic:
            simulator = StochasticSimulator(network, scheme, rates=rates,
                                            seed=seed,
                                            tracer=tracer, metrics=metrics)
        else:
            simulator = OdeSimulator(network, scheme, rates=rates,
                                     tracer=tracer, metrics=metrics)
        tracer = simulator.tracer
        metrics = simulator.metrics
        probe = ensure_probe(probe)
        state = network.initial_vector()
        # Fault models never add or remove species, so indices computed
        # against the pristine network remain valid on the faulted one.
        pulse_index = network.species_index(self.input_pulse)
        pulse_indices = [network.species_index(p) for p in self.pulses]

        def observe(state):
            getter = self._getter(state, network)
            residual = float(sum(state[i] for i in pulse_indices))
            if strict:
                return self.read(getter), True, residual
            value, unsettled = self.read_soft(getter)
            return value, unsettled == 0, residual

        def sample_probe(reading, state, residual):
            # The counter has no chemistry-detected boundary; the time
            # axis is the readout schedule (one settle window per pulse).
            t = reading * settle
            getter = self._getter(state, network)
            boundary = {"cycle": reading, "t": t, "residual": residual}
            unsettled = 0
            bit_values = []
            for bit in self.bits:
                bit_value, bit_settled = bit.read_soft(getter)
                probe.record(bit.name, t,
                             int(bit_value) if bit_settled else "x",
                             kind="bit")
                boundary[signal_key(bit.name)] = int(bit_value)
                bit_values.append(bit_value)
                unsettled += 0 if bit_settled else 1
            overflow_now = float(state[network.species_index(
                self.overflow)])
            boundary["value"] = bits_to_int(bit_values)
            boundary["unsettled"] = unsettled
            boundary["overflow"] = int(round(overflow_now))
            probe.record(f"{self.name}_value", t, boundary["value"],
                         kind="int", width=self.n_bits)
            probe.record(f"{self.name}_residual", t, residual,
                         kind="real")
            probe.boundary(reading, t, boundary)

        value, settled_now, residual = observe(state)
        values = [value]
        settled = [settled_now]
        residuals = [residual]
        if probe.enabled:
            sample_probe(0, state, residual)
        for pulse in range(int(n_pulses)):
            state = state.copy()
            state[pulse_index] += 1.0
            trajectory = simulator.simulate(settle, initial=state,
                                            n_samples=4)
            state = trajectory.final()
            value, settled_now, residual = observe(state)
            values.append(value)
            settled.append(settled_now)
            residuals.append(residual)
            if probe.enabled:
                sample_probe(pulse + 1, state, residual)
            if tracer.enabled:
                tracer.emit_span(f"pulse:{pulse}", "machine",
                                 pulse * settle, (pulse + 1) * settle,
                                 {"value": values[-1]})
            if metrics.enabled:
                metrics.inc("counter.pulses")
        overflow = float(state[network.species_index(self.overflow)])
        return CounterRun(values=values, overflow=int(round(overflow)),
                          settled=settled, residuals=residuals)

    def _getter(self, state: np.ndarray, network: Network | None = None):
        network = network or self.network

        def get(name: str) -> float:
            return float(state[network.species_index(name)])

        return get


class CounterRun:
    """Sequence of counter readings, one per applied pulse.

    ``settled`` flags whether each reading's rails were cleanly digital
    (always ``True`` under strict reads, which raise instead);
    ``residuals`` is the leftover pulse/carry mass at each reading --
    non-zero residue means the ripple had not finished when the value
    was sampled.
    """

    def __init__(self, values: list[int], overflow: int,
                 settled: list[bool] | None = None,
                 residuals: list[float] | None = None):
        self.values = values
        self.overflow = overflow
        self.settled = settled if settled is not None \
            else [True] * len(values)
        self.residuals = residuals if residuals is not None \
            else [0.0] * len(values)

    def expected(self, modulo: int) -> list[int]:
        return [i % modulo for i in range(len(self.values))]

    def check(self, modulo: int) -> None:
        expected = self.expected(modulo)
        if self.values != expected:
            raise SimulationError(
                f"counter sequence {self.values} != expected {expected}")
