"""Digital (Boolean, sequential) layer on molecular reactions."""

from repro.digital.bits import Bit, bits_to_int, int_to_bits
from repro.digital.counter import BinaryCounter, CounterRun
from repro.digital.fsm import (FsmRun, MolecularFSM, parity_machine,
                               sequence_detector)
from repro.digital.gates import (and_gate, binary_gate, fan_out, full_adder,
                                 half_adder, nand_gate, nor_gate, not_gate,
                                 or_gate, xor_gate)

__all__ = [
    "BinaryCounter",
    "Bit",
    "CounterRun",
    "FsmRun",
    "MolecularFSM",
    "and_gate",
    "binary_gate",
    "bits_to_int",
    "fan_out",
    "full_adder",
    "half_adder",
    "int_to_bits",
    "nand_gate",
    "nor_gate",
    "not_gate",
    "or_gate",
    "parity_machine",
    "sequence_detector",
    "xor_gate",
]
