"""Asynchronous (self-timed) sequential computation.

The companion abstract (IWBDA 2011) implements computation that is
self-timed rather than clocked: delay elements transfer through the same
three colour categories, but there is no free-running oscillator --
the absence indicators alone implement a multi-phase *handshaking*
protocol.  Quantities move exactly one delay element per full colour
rotation, and a rotation begins whenever data is present; with no data,
nothing moves and nothing is consumed (except the indicator trickle).

Because the indicators are shared, the handshake is still *global*: every
element waits for all elements to finish the current phase ("all the
delay elements must wait for each to complete its current phase before
they can all move to the next phase").  The practical difference from the
synchronous machine is the absence of the clock quantity: throughput is
data-driven, and an empty pipeline idles.

This module provides a self-timed pipeline driver that streams samples by
*watching the output*: a new sample is injected as soon as the previous
one has fully arrived -- the molecular analogue of a request/acknowledge
handshake with the environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.result import Trajectory
from repro.core.memory import DelayLine
from repro.core.phases import PhaseProtocol
from repro.errors import SimulationError
from repro.obs.metrics import ensure_metrics
from repro.obs.tracer import ensure_tracer


@dataclass
class AsyncRun:
    """Result of streaming samples through a self-timed pipeline."""

    injected: list[float]
    arrived: list[float]
    arrival_times: list[float]
    trajectory: Trajectory | None = None

    @property
    def mean_latency(self) -> float:
        if not self.arrival_times:
            raise SimulationError("no samples arrived")
        times = np.array([0.0] + self.arrival_times)
        return float(np.mean(np.diff(times)))

    def max_error(self) -> float:
        n = min(len(self.injected), len(self.arrived))
        if n == 0:
            return 0.0
        injected = np.array(self.injected[:n])
        arrived = np.array(self.arrived[:n])
        return float(np.max(np.abs(injected - arrived)))


class SelfTimedPipeline:
    """An ``n``-element self-timed delay pipeline (companion scheme).

    Parameters
    ----------
    n:
        number of delay elements between input X and output Y.
    gating / acceleration:
        protocol configuration.  The default is the companion-faithful
        configuration (consuming indicators + dimer accelerator), which is
        sound here because each sample traverses the chain as a one-shot
        wave: the driver injects the next sample only after the previous
        one has arrived, so no type holds standing mass while its transfer
        gate is closed.
    """

    def __init__(self, n: int = 2, gating: str = "consuming",
                 acceleration: str | None = None,
                 scheme: RateScheme | None = None,
                 arrival_fraction: float = 0.95,
                 settle_after: float | None = None,
                 max_wait: float | None = None,
                 tracer=None, metrics=None):
        self.scheme = scheme or RateScheme()
        self.network = Network(f"async_pipeline_{n}")
        self.protocol = PhaseProtocol(gating=gating,
                                      acceleration=acceleration)
        self.line = DelayLine(n, drain_output=True)
        self.line.build(self.network, self.protocol)
        self.protocol.finalize(self.network)
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)
        self.simulator = OdeSimulator(self.network, self.scheme,
                                      tracer=tracer, metrics=metrics)
        self.arrival_fraction = arrival_fraction
        # Handshake hold-off: after acknowledging an arrival, let the
        # rotation finish its residual phases before the next request.
        # Injecting the next sample mid-rotation adds blue mass in the
        # wrong phase window and (in consuming mode, which cannot recover
        # from mixed states) can wedge the pipeline.
        self.settle_after = (settle_after if settle_after is not None
                             else 5.0 / self.scheme.slow)
        self.max_wait = max_wait or 500.0 / self.scheme.slow

    @property
    def input_name(self) -> str:
        return self.line.input.name

    @property
    def output_name(self) -> str:
        return self.line.output.name

    def _effective_from_state(self, state) -> float:
        """Effective output (dimer-inclusive) from a raw state vector."""
        value = float(state[self.network.species_index(self.output_name)])
        dimer = f"I_{self.output_name}"
        if dimer in self.network:
            value += 2.0 * float(
                state[self.network.species_index(dimer)])
        return value

    def _arrival_event(self, threshold: float):
        output_index = self.network.species_index(self.output_name)
        dimer = f"I_{self.output_name}"
        dimer_index = (self.network.species_index(dimer)
                       if dimer in self.network else None)

        def event(t: float, x: np.ndarray) -> float:
            value = float(x[output_index])
            if dimer_index is not None:
                value += 2.0 * float(x[dimer_index])
            return value - threshold

        event.terminal = True
        event.direction = 1.0
        return event

    def run(self, samples: list[float], record: bool = False,
            samples_per_wave: int = 80) -> AsyncRun:
        """Stream samples; each is injected once the previous arrived."""
        state = self.network.initial_vector()
        input_index = self.network.species_index(self.input_name)
        t = 0.0
        arrived: list[float] = []
        arrival_times: list[float] = []
        trajectory: Trajectory | None = None
        cumulative_target = 0.0
        previous_total = 0.0

        for index, sample in enumerate(samples):
            sample = float(sample)
            if sample < 0:
                raise SimulationError("self-timed pipeline carries "
                                      "non-negative quantities")
            t_inject = t
            state = state.copy()
            state[input_index] += sample
            cumulative_target += sample
            # Acknowledge: the output has received (almost all of) the
            # cumulative injected quantity.  The effective output includes
            # the share reversibly parked in the accelerator dimer.
            event = self._arrival_event(
                previous_total + self.arrival_fraction * max(sample, 1e-9))
            segment = self.simulator.simulate(
                t + self.max_wait, t_start=t, initial=state,
                n_samples=samples_per_wave if record else 8,
                events=[event])
            if "event" not in segment.meta and sample > 0:
                raise SimulationError(
                    f"sample did not arrive within {self.max_wait:g} "
                    f"time units at t={t:g}")
            state = segment.final()
            t = segment.t_final
            if self.settle_after > 0:
                tail = self.simulator.simulate(
                    t + self.settle_after, t_start=t, initial=state,
                    n_samples=8)
                state = tail.final()
                t = tail.t_final
                if record:
                    segment = segment.concat(tail)
            total = self._effective_from_state(state)
            arrived.append(total - previous_total)
            previous_total = total
            arrival_times.append(t)
            if self.tracer.enabled:
                self.tracer.emit_span(
                    f"wave:{index}", "handshake", t_inject, t,
                    {"sample": sample, "arrived": arrived[-1]})
            if self.metrics.enabled:
                self.metrics.inc("handshake.waves")
                self.metrics.observe("handshake.wave_sim_time",
                                     t - t_inject)
            if record:
                trajectory = segment if trajectory is None else \
                    trajectory.concat(segment)

        return AsyncRun(injected=[float(s) for s in samples],
                        arrived=arrived, arrival_times=arrival_times,
                        trajectory=trajectory)
