"""Self-timed (asynchronous) sequential computation -- companion scheme."""

from repro.asynchronous.handshake import AsyncRun, SelfTimedPipeline

__all__ = ["AsyncRun", "SelfTimedPipeline"]
