"""Baseline: rate-DEPENDENT transfer chains (no phase ordering).

The paper's motivating comparison: "most prior schemes for molecular
computation depend on specific values of the kinetic constants".  The
naive way to move a quantity through a delay line is a chain of plain
unimolecular transfers

    X -> S_1 -> S_2 -> ... -> Y        (all at nominally equal rates)

With *exactly* equal rates this is an Erlang cascade: the signal arrives
smeared over time, stages overlap, and consecutive samples intermix --
there is no cycle boundary at which "the value" is anywhere.  With
unequal rates (the realistic case: kinetic constants vary with volume
and temperature) the smearing is worse and stage occupancies at any fixed
readout time shift with every rate perturbation.  The benchmark
``bench_naive_baseline`` quantifies both effects against the phase-ordered
delay line, which is insensitive to the same perturbations.
"""

from __future__ import annotations

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme, jittered_rates
from repro.crn.simulation.ode import OdeSimulator
from repro.errors import NetworkError


def build_naive_chain(n_stages: int = 6, rate: float | str = "slow",
                      initial: float = 50.0) -> Network:
    """An un-phased transfer chain with ``n_stages`` intermediate stages."""
    if n_stages < 1:
        raise NetworkError("need at least one stage")
    network = Network(f"naive_chain_{n_stages}")
    names = ["X"] + [f"S_{i}" for i in range(1, n_stages)] + ["Y"]
    for source, target in zip(names, names[1:]):
        network.add(source, target, rate,
                    label=f"{source} -> {target}")
    network.set_initial("X", initial)
    return network


def arrival_spread(network: Network, scheme: RateScheme | None = None,
                   rates: np.ndarray | None = None,
                   t_final: float = 200.0, output: str = "Y",
                   low: float = 0.1, high: float = 0.9) -> float:
    """Time between 10% and 90% arrival of the quantity at the output.

    The phase-ordered chain delivers each hop crisply, so its spread is a
    small fraction of the hop time; the Erlang cascade's spread grows as
    ``sqrt(n)`` times the stage time.
    """
    simulator = OdeSimulator(network, scheme, rates=rates)
    trajectory = simulator.simulate(t_final, n_samples=2000)
    series = trajectory.column(output)
    final = series[-1]
    if final <= 0:
        raise NetworkError("nothing arrived at the output")
    t_low = float(np.interp(low * final, series, trajectory.times))
    t_high = float(np.interp(high * final, series, trajectory.times))
    return t_high - t_low


def arrival_time(network: Network, scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None, t_final: float = 200.0,
                 output: str = "Y", fraction: float = 0.5) -> float:
    """Time at which ``fraction`` of the quantity has arrived."""
    simulator = OdeSimulator(network, scheme, rates=rates)
    trajectory = simulator.simulate(t_final, n_samples=2000)
    series = trajectory.column(output)
    final = series[-1]
    if final <= 0:
        raise NetworkError("nothing arrived at the output")
    return float(np.interp(fraction * final, series, trajectory.times))


def jitter_sensitivity(build, measure, scheme: RateScheme | None = None,
                       n_trials: int = 8, seed: int = 0,
                       low: float = 0.5, high: float = 2.0) -> np.ndarray:
    """Measurement under independent per-reaction rate jitter.

    ``build()`` must return a fresh network and ``measure(network, rates)``
    a scalar; returns the measurements across ``n_trials`` jitter draws.
    """
    scheme = scheme or RateScheme()
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(n_trials):
        network = build()
        rates = jittered_rates(network, scheme, rng, low=low, high=high)
        results.append(measure(network, rates))
    return np.array(results)
