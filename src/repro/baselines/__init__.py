"""Baselines: rate-dependent naive chains and exact DSP references."""

from repro.baselines.naive_chain import (arrival_spread, arrival_time,
                                         build_naive_chain,
                                         jitter_sensitivity)
from repro.baselines.reference_dsp import (biquad_reference,
                                           fir_reference,
                                           frequency_response,
                                           iir_first_order_reference,
                                           measured_gain_at_period,
                                           moving_average_reference)

__all__ = [
    "arrival_spread",
    "arrival_time",
    "biquad_reference",
    "build_naive_chain",
    "fir_reference",
    "frequency_response",
    "iir_first_order_reference",
    "jitter_sensitivity",
    "measured_gain_at_period",
    "moving_average_reference",
]
