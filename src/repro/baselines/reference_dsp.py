"""Exact discrete-time reference models (the golden DSP implementations).

These are plain numpy implementations of the filters the molecular
machines realise; every benchmark compares measured chemistry against
them.  They are written from scratch (direct-form difference equations)
rather than delegating to scipy.signal, so the reference semantics are
explicit and auditable.
"""

from __future__ import annotations

import numpy as np


def fir_reference(coefficients, samples) -> np.ndarray:
    """``y[n] = sum_i c_i x[n-i]`` with zero initial history."""
    coefficients = np.asarray([float(c) for c in coefficients])
    samples = np.asarray(samples, dtype=float)
    output = np.zeros_like(samples)
    for i, c in enumerate(coefficients):
        if c == 0.0:
            continue
        output[i:] += c * samples[:len(samples) - i]
    return output


def moving_average_reference(n_taps: int, samples) -> np.ndarray:
    return fir_reference([1.0 / n_taps] * n_taps, samples)


def iir_first_order_reference(feed: float, feedback: float,
                              samples) -> np.ndarray:
    """``y[n] = feed x[n] + feedback y[n-1]``, ``y[-1] = 0``."""
    samples = np.asarray(samples, dtype=float)
    output = np.empty_like(samples)
    state = 0.0
    for i, x in enumerate(samples):
        state = float(feed) * x + float(feedback) * state
        output[i] = state
    return output


def biquad_reference(b0: float, b1: float, b2: float, a1: float, a2: float,
                     samples) -> np.ndarray:
    """Direct-form-I ``y[n] = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2``."""
    samples = np.asarray(samples, dtype=float)
    output = np.empty_like(samples)
    x1 = x2 = y1 = y2 = 0.0
    for i, x in enumerate(samples):
        y = (float(b0) * x + float(b1) * x1 + float(b2) * x2
             - float(a1) * y1 - float(a2) * y2)
        output[i] = y
        x2, x1 = x1, x
        y2, y1 = y1, y
    return output


def frequency_response(b, a, n_points: int = 64) -> np.ndarray:
    """|H(e^{jw})| of ``H(z) = B(z)/A(z)`` on a uniform frequency grid.

    ``b`` and ``a`` are the numerator/denominator coefficient lists with
    ``a[0] = 1`` implied absent.
    """
    b = np.asarray([float(c) for c in b])
    a = np.concatenate([[1.0], np.asarray([float(c) for c in a])])
    omegas = np.linspace(0.0, np.pi, n_points)
    response = np.empty(n_points)
    for i, omega in enumerate(omegas):
        z = np.exp(-1j * omega)
        numerator = np.polyval(b[::-1], z)
        denominator = np.polyval(a[::-1], z)
        response[i] = abs(numerator / denominator)
    return response


def measured_gain_at_period(outputs: np.ndarray, inputs: np.ndarray,
                            period: int, skip: int = 0) -> float:
    """Empirical amplitude gain of a filter at one tone period.

    Fits the fundamental Fourier component of input and output over whole
    periods (after ``skip`` warm-up samples) and returns the magnitude
    ratio.
    """
    inputs = np.asarray(inputs, dtype=float)[skip:]
    outputs = np.asarray(outputs, dtype=float)[skip:len(inputs) + skip]
    usable = (len(inputs) // period) * period
    if usable < period:
        raise ValueError("need at least one whole period after skip")
    inputs = inputs[:usable]
    outputs = outputs[:usable]
    n = np.arange(usable)
    basis = np.exp(-2j * np.pi * n / period)
    gain_in = np.abs(np.dot(inputs - inputs.mean(), basis))
    gain_out = np.abs(np.dot(outputs - outputs.mean(), basis))
    if gain_in == 0:
        raise ValueError("input has no component at the given period")
    return float(gain_out / gain_in)
