"""The molecular clock: a self-sustaining three-phase oscillator.

The synchronous methodology needs a global clock.  Electronically a clock
is an oscillator; molecularly, the paper chooses "reactions that produce
sustained oscillations in the chemical concentrations".  Here the clock is
the three-phase rotation itself applied to a dedicated conserved quantity:
three clock types ``C_red, C_green, C_blue`` whose total mass is constant
and which chase each other around the colour cycle through the shared
absence indicators:

    b + C_red   -> C_green   (slow, + positive feedback)
    r + C_green -> C_blue    (slow, + positive feedback)
    g + C_blue  -> C_red     (slow, + positive feedback)

Because the indicators are *shared* with all signal types, the clock does
double duty: it guarantees that the phase rotation continues even when all
signal values happen to be zero, and its own concentration pulses are the
clock waveform -- high C_red == "phase red", etc.
"""

from __future__ import annotations

import numpy as np

from repro.crn.network import Network
from repro.crn.simulation.result import Trajectory
from repro.crn.species import COLORS, Species
from repro.core.phases import PhaseProtocol
from repro.errors import NetworkError, SimulationError


class MolecularClock:
    """Builder and analyzer for the RGB oscillator."""

    def __init__(self, mass: float = 100.0, name: str = "C"):
        if mass <= 0:
            raise NetworkError("clock mass must be positive")
        self.mass = float(mass)
        self.name = name
        self.species = {color: Species(f"{name}_{color}", color=color,
                                       role="clock")
                        for color in COLORS}

    @property
    def red(self) -> Species:
        return self.species["red"]

    @property
    def green(self) -> Species:
        return self.species["green"]

    @property
    def blue(self) -> Species:
        return self.species["blue"]

    def species_names(self) -> list[str]:
        return [self.species[color].name for color in COLORS]

    def build(self, network: Network, protocol: PhaseProtocol,
              start_color: str = "red",
              acceleration: str | None = None) -> None:
        """Emit the rotation reactions; initial mass on ``start_color``.

        ``acceleration`` overrides the protocol's mode for the clock
        transfers only.  Inside a synchronous machine the clock must use
        ``gated`` acceleration: its types hold standing mass in every
        phase, so the companion's dimer accelerator would fire through
        closed gates and detach the clock from the shared indicators.
        """
        if start_color not in COLORS:
            raise NetworkError(f"unknown colour {start_color!r}")
        for color in COLORS:
            network.add_species(self.species[color])
        rotation = ("red", "green"), ("green", "blue"), ("blue", "red")
        for source_color, target_color in rotation:
            protocol.add_transfer(
                network, self.species[source_color],
                self.species[target_color],
                label=f"clock {source_color} -> {target_color}",
                acceleration=acceleration)
        network.set_initial(self.species[start_color], self.mass)

    # -- waveform analysis --------------------------------------------------------

    def phase_fractions(self, trajectory: Trajectory) -> np.ndarray:
        """(len(t), 3) array of per-colour mass fractions over time."""
        columns = np.stack([trajectory.column(self.species[c].name)
                            for c in COLORS], axis=1)
        total = columns.sum(axis=1)
        total[total == 0] = 1.0
        return columns / total[:, None]

    def dominant_phase(self, trajectory: Trajectory) -> np.ndarray:
        """Index (0=red, 1=green, 2=blue) of the dominant colour over time."""
        return np.argmax(self.phase_fractions(trajectory), axis=1)

    def rising_edges(self, trajectory: Trajectory, color: str = "red",
                     threshold: float = 0.5) -> np.ndarray:
        """Times at which the colour's mass fraction crosses ``threshold``
        upward -- clock edges."""
        fractions = self.phase_fractions(trajectory)
        series = fractions[:, COLORS.index(color)]
        above = series >= threshold
        crossings = np.nonzero(~above[:-1] & above[1:])[0]
        edges = []
        for i in crossings:
            t0, t1 = trajectory.times[i], trajectory.times[i + 1]
            y0, y1 = series[i], series[i + 1]
            if y1 == y0:
                edges.append(t1)
            else:
                edges.append(t0 + (threshold - y0) * (t1 - t0) / (y1 - y0))
        return np.array(edges)

    def period(self, trajectory: Trajectory, color: str = "red") -> float:
        """Mean oscillation period estimated from rising edges."""
        edges = self.rising_edges(trajectory, color)
        if edges.size < 2:
            raise SimulationError(
                "fewer than two clock edges observed; simulate longer")
        return float(np.mean(np.diff(edges)))

    def period_jitter(self, trajectory: Trajectory,
                      color: str = "red") -> float:
        """Relative standard deviation of the period."""
        edges = self.rising_edges(trajectory, color)
        if edges.size < 3:
            raise SimulationError("need >= 3 edges for jitter")
        periods = np.diff(edges)
        return float(np.std(periods) / np.mean(periods))

    def amplitude(self, trajectory: Trajectory, color: str = "red",
                  settle: float = 0.25) -> tuple[float, float]:
        """(min, max) of the colour's quantity after a settling fraction."""
        series = trajectory.column(self.species[color].name)
        start = int(len(series) * settle)
        tail = series[start:]
        return float(tail.min()), float(tail.max())

    def emit_trace(self, trajectory: Trajectory, tracer) -> None:
        """Emit rotation (``cycle``) and ``phase:*`` spans for a
        free-running clock trajectory into a tracer.

        The machine driver records these spans live; a standalone clock
        run has no driver, so the spans are reconstructed here from the
        waveform (rotations between red rising edges, phases from the
        dominant colour).
        """
        if not tracer.enabled:
            return
        edges = self.rising_edges(trajectory)
        for index, (t0, t1) in enumerate(zip(edges, edges[1:])):
            tracer.emit_span("cycle", "machine", float(t0), float(t1),
                             {"cycle": index})
        dominant = self.dominant_phase(trajectory)
        times = trajectory.times
        start = 0
        for i in range(1, len(dominant) + 1):
            if i < len(dominant) and dominant[i] == dominant[start]:
                continue
            t1 = float(times[min(i, len(dominant) - 1)])
            tracer.emit_span(f"phase:{COLORS[dominant[start]]}",
                             "protocol", float(times[start]), t1,
                             {"color": COLORS[dominant[start]]})
            start = i


def build_clock(mass: float = 100.0, gating: str = "catalytic",
                acceleration: str | None = None
                ) -> tuple[Network, MolecularClock, PhaseProtocol]:
    """A standalone, finalized clock network (experiment E1)."""
    network = Network("molecular_clock")
    protocol = PhaseProtocol(gating=gating, acceleration=acceleration)
    clock = MolecularClock(mass=mass)
    clock.build(network, protocol)
    protocol.finalize(network)
    return network, clock, protocol
