"""Molecular clocks: self-sustaining three-phase oscillators.

The synchronous methodology needs a global clock.  Electronically a clock
is an oscillator; molecularly, the paper chooses "reactions that produce
sustained oscillations in the chemical concentrations".  The reference
implementation (:class:`MolecularClock`) is the three-phase rotation
itself applied to a dedicated conserved quantity: three clock types
``C_red, C_green, C_blue`` whose total mass is constant and which chase
each other around the colour cycle through the shared absence indicators:

    b + C_red   -> C_green   (slow, + positive feedback)
    r + C_green -> C_blue    (slow, + positive feedback)
    g + C_blue  -> C_red     (slow, + positive feedback)

Because the indicators are *shared* with all signal types, the clock does
double duty: it guarantees that the phase rotation continues even when all
signal values happen to be zero, and its own concentration pulses are the
clock waveform -- high C_red == "phase red", etc.

Alternative oscillator chemistries live behind the :class:`Clock`
protocol and the :func:`register_oscillator` registry so that machines,
scenarios, conformance targets, fault campaigns and benchmarks can swap
the pacemaker without caring how it oscillates.  The built-in
alternative, :class:`RelaxationClock`, follows the relaxation-oscillator
construction of Shi & Gao (arXiv:2209.03033, arXiv:2302.14226): each
phase *charges slowly* through the gated seed reaction and *discharges
fast* through a gated autocatalytic switch, giving the sawtooth
charge/snap waveform characteristic of relaxation oscillators while
staying inside the two-rate-category protocol.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.crn.network import Network
from repro.crn.simulation.result import Trajectory
from repro.crn.species import COLORS, Species
from repro.core.phases import GATED, PhaseProtocol
from repro.errors import NetworkError, SimulationError


@runtime_checkable
class Clock(Protocol):
    """What a machine (and every downstream layer) needs from a clock.

    Any object with a conserved ``mass``, one coloured species per phase,
    a ``build`` method emitting its oscillation chemistry, and the
    waveform-analysis surface satisfies the protocol.  Concrete
    implementations are registered by name via
    :func:`register_oscillator` and constructed via :func:`make_clock`.
    """

    mass: float
    name: str
    species: dict[str, Species]

    def species_names(self) -> list[str]: ...

    def build(self, network: Network, protocol: PhaseProtocol,
              start_color: str = "red",
              acceleration: str | None = None) -> None: ...


class MolecularClock:
    """Builder and analyzer for the RGB oscillator."""

    #: Registry key of this oscillator chemistry.
    kind = "molecular"

    def __init__(self, mass: float = 100.0, name: str = "C"):
        if mass <= 0:
            raise NetworkError("clock mass must be positive")
        self.mass = float(mass)
        self.name = name
        self.species = {color: Species(f"{name}_{color}", color=color,
                                       role="clock")
                        for color in COLORS}

    @property
    def red(self) -> Species:
        return self.species["red"]

    @property
    def green(self) -> Species:
        return self.species["green"]

    @property
    def blue(self) -> Species:
        return self.species["blue"]

    def species_names(self) -> list[str]:
        return [self.species[color].name for color in COLORS]

    def build(self, network: Network, protocol: PhaseProtocol,
              start_color: str = "red",
              acceleration: str | None = None) -> None:
        """Emit the rotation reactions; initial mass on ``start_color``.

        ``acceleration`` overrides the protocol's mode for the clock
        transfers only.  Inside a synchronous machine the clock must use
        ``gated`` acceleration: its types hold standing mass in every
        phase, so the companion's dimer accelerator would fire through
        closed gates and detach the clock from the shared indicators.
        """
        if start_color not in COLORS:
            raise NetworkError(f"unknown colour {start_color!r}")
        for color in COLORS:
            network.add_species(self.species[color])
        rotation = ("red", "green"), ("green", "blue"), ("blue", "red")
        for source_color, target_color in rotation:
            protocol.add_transfer(
                network, self.species[source_color],
                self.species[target_color],
                label=f"clock {source_color} -> {target_color}",
                acceleration=acceleration)
        network.set_initial(self.species[start_color], self.mass)

    # -- waveform analysis --------------------------------------------------------

    def phase_fractions(self, trajectory: Trajectory) -> np.ndarray:
        """(len(t), 3) array of per-colour mass fractions over time."""
        columns = np.stack([trajectory.column(self.species[c].name)
                            for c in COLORS], axis=1)
        total = columns.sum(axis=1)
        total[total == 0] = 1.0
        return columns / total[:, None]

    def dominant_phase(self, trajectory: Trajectory) -> np.ndarray:
        """Index (0=red, 1=green, 2=blue) of the dominant colour over time."""
        return np.argmax(self.phase_fractions(trajectory), axis=1)

    def rising_edges(self, trajectory: Trajectory, color: str = "red",
                     threshold: float = 0.5) -> np.ndarray:
        """Times at which the colour's mass fraction crosses ``threshold``
        upward -- clock edges.

        One excursion above the threshold yields exactly one edge: the
        series must fall *strictly below* the threshold before another
        edge can fire.  Samples sitting exactly *at* the threshold (a
        plateau) are collapsed deterministically -- the edge is the
        plateau's first sample if the series later rises strictly above
        the threshold, and no edge at all if it retreats below without
        ever exceeding it.  (The previous sample-pair scan emitted one
        edge per below->at transition, so threshold plateaus and chatter
        produced duplicate/spurious edges that corrupted ``period()``,
        ``period_jitter()`` and the ``emit_trace`` cycle spans.)

        The returned times are strictly increasing, and both the count
        and the edge times are invariant under linear resampling of the
        trajectory (adding interpolated samples cannot create or move an
        edge).
        """
        fractions = self.phase_fractions(trajectory)
        series = fractions[:, COLORS.index(color)]
        times = trajectory.times
        edges: list[float] = []
        armed = False        # seen strictly-below since the last edge
        pending: float | None = None  # first time of an at-threshold plateau
        for i in range(len(series)):
            value = series[i]
            if value < threshold:
                armed = True
                pending = None
            elif value == threshold:
                if armed and pending is None:
                    pending = float(times[i])
            else:  # strictly above
                if armed:
                    if pending is not None:
                        edge = pending
                    else:
                        # Interpolate the crossing inside (i-1, i]; the
                        # previous sample is strictly below, so y1 > y0
                        # and the division is well defined.  A zero-width
                        # bracket (duplicate sample times) degenerates to
                        # the right endpoint.
                        t0, t1 = float(times[i - 1]), float(times[i])
                        y0, y1 = float(series[i - 1]), float(series[i])
                        edge = t0 + (threshold - y0) * (t1 - t0) / (y1 - y0)
                    if not edges or edge > edges[-1]:
                        edges.append(edge)
                    armed = False
                pending = None
        return np.array(edges)

    def period(self, trajectory: Trajectory, color: str = "red") -> float:
        """Mean oscillation period estimated from rising edges."""
        edges = self.rising_edges(trajectory, color)
        if edges.size < 2:
            raise SimulationError(
                "fewer than two clock edges observed; simulate longer")
        return float(np.mean(np.diff(edges)))

    def period_jitter(self, trajectory: Trajectory,
                      color: str = "red") -> float:
        """Relative standard deviation of the period."""
        edges = self.rising_edges(trajectory, color)
        if edges.size < 3:
            raise SimulationError("need >= 3 edges for jitter")
        periods = np.diff(edges)
        return float(np.std(periods) / np.mean(periods))

    def amplitude(self, trajectory: Trajectory, color: str = "red",
                  settle: float = 0.25) -> tuple[float, float]:
        """(min, max) of the colour's quantity after a settling fraction.

        ``settle`` is a fraction of the *simulated time span*, not of the
        sample count: event-bracketed ODE output and SSA trajectories
        cluster their samples around transients, so cutting by sample
        index would discard an unpredictable share of the waveform.
        """
        series = trajectory.column(self.species[color].name)
        times = trajectory.times
        t_cut = float(times[0]) + settle * (float(times[-1])
                                            - float(times[0]))
        tail = series[times >= t_cut]
        if tail.size == 0:
            tail = series[-1:]
        return float(tail.min()), float(tail.max())

    def emit_trace(self, trajectory: Trajectory, tracer) -> None:
        """Emit rotation (``cycle``) and ``phase:*`` spans for a
        free-running clock trajectory into a tracer.

        The machine driver records these spans live; a standalone clock
        run has no driver, so the spans are reconstructed here from the
        waveform (rotations between red rising edges, phases from the
        dominant colour).
        """
        if not tracer.enabled:
            return
        edges = self.rising_edges(trajectory)
        for index, (t0, t1) in enumerate(zip(edges, edges[1:])):
            tracer.emit_span("cycle", "machine", float(t0), float(t1),
                             {"cycle": index})
        dominant = self.dominant_phase(trajectory)
        times = trajectory.times
        start = 0
        for i in range(1, len(dominant) + 1):
            if i < len(dominant) and dominant[i] == dominant[start]:
                continue
            t1 = float(times[min(i, len(dominant) - 1)])
            tracer.emit_span(f"phase:{COLORS[dominant[start]]}",
                             "protocol", float(times[start]), t1,
                             {"color": COLORS[dominant[start]]})
            start = i


class RelaxationClock(MolecularClock):
    """Relaxation-oscillator pacemaker (Shi & Gao, arXiv:2209.03033).

    Same three conserved colour types and the same shared absence
    indicators as :class:`MolecularClock`, but every rotation transfer
    additionally carries the protocol's *gated autocatalytic* switch::

        gate + C_src + C_dst -> gate + 2 C_dst + ...    (slow)

    The phase then has the two-timescale structure of a relaxation
    oscillator: the gated seed *charges* the next colour slowly and
    linearly, and once enough of it has accumulated the autocatalytic
    term *snaps* the remaining mass across in a burst -- slow charge,
    fast discharge.  The switch is catalytic in the gate, so it is inert
    while the phase's gate is closed; this is the acceleration mode
    :mod:`repro.core.phases` proves sound for free-running cyclic
    designs (the companion's dimer accelerator is one-shot only and
    would fire through closed gates).
    """

    kind = "relaxation"

    def build(self, network: Network, protocol: PhaseProtocol,
              start_color: str = "red",
              acceleration: str | None = None) -> None:
        super().build(network, protocol, start_color=start_color,
                      acceleration=acceleration or GATED)


#: Oscillator registry: chemistry name -> Clock factory.  Factories take
#: ``(mass, name)`` keyword arguments, like the class constructors.
_OSCILLATORS: dict[str, type] = {}


def register_oscillator(kind: str, factory: type) -> None:
    """Register a clock chemistry under ``kind``.

    Re-registering an existing name raises: scenario recipes, CLI
    choice lists and conformance targets all key off the registry, so a
    silent replacement would change what those names mean.
    """
    if kind in _OSCILLATORS:
        raise NetworkError(f"oscillator {kind!r} already registered")
    _OSCILLATORS[kind] = factory


def oscillator_names() -> tuple[str, ...]:
    """Registered oscillator chemistries, in registration order."""
    return tuple(_OSCILLATORS)


def make_clock(oscillator: str = "molecular", mass: float = 100.0,
               name: str = "C") -> Clock:
    """Instantiate a registered clock chemistry."""
    try:
        factory = _OSCILLATORS[oscillator]
    except KeyError:
        raise NetworkError(
            f"unknown oscillator {oscillator!r}; registered chemistries: "
            f"{sorted(_OSCILLATORS)}") from None
    return factory(mass=mass, name=name)


register_oscillator("molecular", MolecularClock)
register_oscillator("relaxation", RelaxationClock)


def build_clock(mass: float = 100.0, gating: str = "catalytic",
                acceleration: str | None = None,
                oscillator: str = "molecular"
                ) -> tuple[Network, Clock, PhaseProtocol]:
    """A standalone, finalized clock network (experiment E1).

    ``oscillator`` selects a registered chemistry; the explicit
    ``acceleration`` override still applies on top of whatever the
    chemistry's own default is.
    """
    network = Network(f"{oscillator}_clock")
    protocol = PhaseProtocol(gating=gating, acceleration=acceleration)
    clock = make_clock(oscillator, mass=mass)
    clock.build(network, protocol)
    protocol.finalize(network)
    return network, clock, protocol
