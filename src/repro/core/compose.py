"""Composition of synchronous designs.

Linear synchronous designs in matrix form compose like linear systems:

- :func:`cascade` -- series connection: the outputs of one design feed
  the inputs of the next, with a one-cycle pipeline register between the
  stages (chemically, the second stage's input registers *are* delay
  elements receiving the first stage's outputs);
- :func:`parallel_sum` -- two designs share inputs and their outputs add;
- :func:`rename` -- relabel ports without touching the dynamics.

The compositions operate on :class:`~repro.core.dfg.MatrixDesign`
directly (exact rational algebra, no graphs re-traversed), so the
composite synthesizes like any hand-built design and the reference
semantics stay exact.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.dfg import MatrixDesign
from repro.errors import SynthesisError


def _check_distinct(names: list[str], what: str) -> None:
    """Composite name spaces must stay collision-free (REPRO-E701)."""
    seen: set[str] = set()
    clashes: set[str] = set()
    for name in names:
        if name in seen:
            clashes.add(name)
        seen.add(name)
    if clashes:
        raise SynthesisError(
            f"{what} collide across modules: {sorted(clashes)} "
            f"(REPRO-E701); rename the ports before composing")


def _prefixed(design: MatrixDesign, prefix: str) -> MatrixDesign:
    """Internal: a copy with every *delay* name prefixed (ports kept)."""
    mapping = {name: f"{prefix}{name}" for name in design.delays}

    def port(name: str) -> str:
        return mapping.get(name, name)

    coefficients = {(port(sink), port(source)): value
                    for (sink, source), value in
                    design.coefficients.items()}
    return MatrixDesign(
        name=design.name,
        inputs=list(design.inputs),
        outputs=list(design.outputs),
        delays=[mapping[d] for d in design.delays],
        coefficients=coefficients,
        initial_state={mapping[k]: v
                       for k, v in design.initial_state.items()})


def rename(design: MatrixDesign, inputs: dict[str, str] | None = None,
           outputs: dict[str, str] | None = None,
           name: str | None = None) -> MatrixDesign:
    """Relabel input/output ports."""
    inputs = inputs or {}
    outputs = outputs or {}
    for old in inputs:
        if old not in design.inputs:
            raise SynthesisError(f"unknown input {old!r}")
    for old in outputs:
        if old not in design.outputs:
            raise SynthesisError(f"unknown output {old!r}")

    def map_in(port: str) -> str:
        return inputs.get(port, port)

    def map_out(port: str) -> str:
        return outputs.get(port, port)

    _check_distinct([map_in(p) for p in design.inputs]
                    + [map_out(p) for p in design.outputs]
                    + list(design.delays),
                    "rename: port and register names")
    coefficients = {}
    for (sink, source), value in design.coefficients.items():
        sink = map_out(sink) if sink in design.outputs else sink
        source = map_in(source) if source in design.inputs else source
        coefficients[(sink, source)] = value
    return MatrixDesign(
        name=name or design.name,
        inputs=[map_in(p) for p in design.inputs],
        outputs=[map_out(p) for p in design.outputs],
        delays=list(design.delays),
        coefficients=coefficients,
        initial_state=dict(design.initial_state))


def cascade(first: MatrixDesign, second: MatrixDesign,
            name: str | None = None,
            certify: bool = False) -> MatrixDesign:
    """Series composition with a one-cycle pipeline register per link.

    Every output of ``first`` must match an input of ``second`` by name.
    Chemically the link is honest: the first stage's output quantity
    lands in a delay register that the second stage reads next cycle, so
    the composite's reference semantics are ``second`` applied to
    ``first``'s output delayed by one sample.

    With ``certify=True`` the composite must carry a composition
    certificate whose error bound stays inside the digital noise
    margin; an uncertifiable stage raises
    :class:`~repro.errors.CertifyError` with REPRO-C801 phrasing and a
    small-gain violation with REPRO-C802 (see ``docs/certify.md``).
    """
    missing = [p for p in first.outputs if p not in second.inputs]
    if missing:
        raise SynthesisError(
            f"cascade: output width mismatch -- outputs {missing} "
            f"have no matching inputs in {second.name!r} "
            f"(REPRO-E701); rename the ports before composing")
    a = _prefixed(first, "s1_")
    b = _prefixed(second, "s2_")

    link = {port: f"lnk_{port}" for port in first.outputs}
    delays = a.delays + list(link.values()) + b.delays
    inputs = list(a.inputs) + [p for p in b.inputs
                               if p not in first.outputs]
    outputs = list(b.outputs)
    _check_distinct(inputs, "cascade: composite input names")
    _check_distinct(delays + inputs,
                    "cascade: register and port names")
    coefficients: dict[tuple[str, str], Fraction] = {}

    # Stage 1: outputs redirected into the link registers.
    for (sink, source), value in a.coefficients.items():
        target = link.get(sink, sink)
        coefficients[(target, source)] = \
            coefficients.get((target, source), Fraction(0)) + value
    # Stage 2: inputs that were stage-1 outputs read the link registers.
    for (sink, source), value in b.coefficients.items():
        origin = link.get(source, source)
        coefficients[(sink, origin)] = \
            coefficients.get((sink, origin), Fraction(0)) + value

    initial_state = dict(a.initial_state)
    initial_state.update(b.initial_state)
    composite = MatrixDesign(
        name=name or f"{first.name}_then_{second.name}",
        inputs=inputs, outputs=outputs, delays=delays,
        coefficients={k: v for k, v in coefficients.items() if v != 0},
        initial_state=initial_state)
    composite.validate()
    if certify:
        from repro.certify.compose import certify_composition

        certify_composition(first, second, composite, "cascade")
    return composite


def parallel_sum(first: MatrixDesign, second: MatrixDesign,
                 name: str | None = None,
                 certify: bool = False) -> MatrixDesign:
    """Shared-input, summed-output composition.

    Both designs must expose identical input and output port names; the
    composite's outputs are the per-port sums (chemically: both
    sub-designs' accumulators land in the same readout).

    ``certify=True`` behaves as in :func:`cascade`.
    """
    if first.inputs != second.inputs:
        raise SynthesisError(
            f"parallel_sum: input arity/name mismatch -- "
            f"{first.name!r} exposes {first.inputs} but "
            f"{second.name!r} exposes {second.inputs} (REPRO-E701); "
            f"rename the ports before composing")
    if first.outputs != second.outputs:
        raise SynthesisError(
            f"parallel_sum: output ports differ -- {first.name!r} "
            f"exposes {first.outputs} but {second.name!r} exposes "
            f"{second.outputs} (REPRO-E701); rename the ports before "
            f"composing")
    a = _prefixed(first, "p1_")
    b = _prefixed(second, "p2_")
    coefficients: dict[tuple[str, str], Fraction] = {}
    for part in (a, b):
        for key, value in part.coefficients.items():
            coefficients[key] = coefficients.get(key, Fraction(0)) + value
    initial_state = dict(a.initial_state)
    initial_state.update(b.initial_state)
    composite = MatrixDesign(
        name=name or f"{first.name}_plus_{second.name}",
        inputs=list(first.inputs), outputs=list(first.outputs),
        delays=a.delays + b.delays,
        coefficients={k: v for k, v in coefficients.items() if v != 0},
        initial_state=initial_state)
    composite.validate()
    if certify:
        from repro.certify.compose import certify_composition

        certify_composition(first, second, composite, "parallel")
    return composite
