"""Synthesis flow: matrix-form design -> chemical reaction network.

Every linear synchronous design (see :mod:`repro.core.dfg`) maps onto one
three-phase cycle:

phase 1, red -> green (fan-out)
    each source quantity is copied, in a *single* reaction, into one green
    copy type per sink it feeds.  Using one reaction per source (rather
    than one per edge) is essential: competing transfers out of the same
    type would split the quantity rate-dependently.

phase 2, green -> blue (gain + add)
    each copy is scaled by its exact rational coefficient ``p/q``
    stoichiometrically (``q`` copies consumed, ``p`` produced) into the
    sink's blue accumulator; addition is just several transfers producing
    the same accumulator.

phase 3, blue -> red (land / read out)
    each delay accumulator lands in its register's red type (read as a
    source next cycle); each *output* accumulator instead drains straight
    out of the rotation into an uncoloured readout pool.  Outputs must not
    land in a standing red register: such a register would deadlock
    against the red-absence indicator that is supposed to flush it.

Signed signals use dual rails (``_p`` / ``_n``): a value is the difference
of its two rail quantities, negative coefficients cross the rails, and
fast annihilation reactions keep the rails bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.crn.network import Network
from repro.crn.species import Species
from repro.core.clock import Clock, make_clock
from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.core.phases import PhaseProtocol
from repro.errors import SynthesisError

RAILS = ("p", "n")


@dataclass
class SynthesizedCircuit:
    """A synthesized design: the network plus its species bookkeeping."""

    design: MatrixDesign
    network: Network
    protocol: PhaseProtocol
    clock: Clock
    signed: bool
    source_species: dict[str, dict[str, str]] = field(default_factory=dict)
    readout_species: dict[str, dict[str, str]] = field(default_factory=dict)

    def rails(self) -> tuple[str, ...]:
        return RAILS if self.signed else ("p",)

    def input_rail(self, name: str, rail: str = "p") -> str:
        return self.source_species[name][rail]

    def state_value(self, state_getter, name: str) -> float:
        """Effective (dimer-inclusive) value of a delay register.

        ``state_getter(species_name) -> float`` abstracts over raw state
        vectors and trajectory finals.
        """
        value = 0.0
        for rail, sign in (("p", 1.0), ("n", -1.0)):
            if rail not in self.rails():
                continue
            species = self.source_species[name][rail]
            value += sign * state_getter(species)
            dimer = f"I_{species}"
            if dimer in self.network:
                value += sign * 2.0 * state_getter(dimer)
        return value

    def readout_value(self, state_getter, name: str) -> float:
        """Cumulative effective output readout (see machine driver).

        Sums everything already destined for the output with weight one:
        the uncoloured readout pool plus the in-flight blue accumulator
        (and its dimer in companion mode), signed across rails.  Counting
        the in-flight accumulator makes the cumulative readout invariant
        to exactly where within the boundary tolerance the cycle event
        fired.
        """
        value = 0.0
        for rail, sign in (("p", 1.0), ("n", -1.0)):
            if rail not in self.rails():
                continue
            value += sign * state_getter(self.readout_species[name][rail])
            acc = _acc_name(name, rail)
            if acc in self.network:
                value += sign * state_getter(acc)
                dimer = f"I_{acc}"
                if dimer in self.network:
                    value += sign * 2.0 * state_getter(dimer)
        return value


def synthesize(design: MatrixDesign | SignalFlowGraph,
               clock_mass: float = 20.0,
               signed: bool | None = None,
               gating: str = "catalytic",
               protocol: PhaseProtocol | None = None,
               oscillator: str = "molecular") -> SynthesizedCircuit:
    """Compile a design to a finalized reaction network with a clock.

    ``oscillator`` names a registered clock chemistry (see
    :func:`repro.core.clock.make_clock`); every registered oscillator
    drives the same three-colour protocol, so the rest of the synthesis
    is oscillator-agnostic.
    """
    if isinstance(design, SignalFlowGraph):
        design = design.to_matrix()
    design.validate()
    if signed is None:
        signed = design.signed
    if design.signed and not signed:
        raise SynthesisError(
            "design has negative coefficients; signed mode is required")

    network = Network(design.name)
    protocol = protocol or PhaseProtocol(gating=gating)
    rails = RAILS if signed else ("p",)

    circuit = SynthesizedCircuit(design=design, network=network,
                                 protocol=protocol,
                                 clock=make_clock(oscillator,
                                                  mass=clock_mass),
                                 signed=signed)

    _declare_species(circuit, rails)
    _build_fanout(circuit, rails)
    _build_gains(circuit, rails)
    _build_landing(circuit, rails)
    _build_readout(circuit, rails)
    if signed:
        _build_annihilation(circuit)

    circuit.clock.build(network, protocol)
    protocol.finalize(network)
    for name, value in design.initial_state.items():
        rail = "p" if value >= 0 else "n"
        if rail == "n" and not signed:
            raise SynthesisError(
                f"negative initial state for {name!r} in unsigned design")
        network.set_initial(circuit.source_species[name][rail], abs(value))
    network.validate()
    return circuit


# -- naming -------------------------------------------------------------------------

def _source_name(source: str, rail: str) -> str:
    return f"s_{source}_{rail}"


def _copy_name(source: str, sink: str, rail: str) -> str:
    return f"c_{source}__{sink}_{rail}"


def _acc_name(sink: str, rail: str) -> str:
    return f"a_{sink}_{rail}"


def _readout_name(output: str, rail: str) -> str:
    return f"y_{output}_{rail}"


def _waste_name(source: str, rail: str) -> str:
    return f"w_{source}_{rail}"


# -- construction stages ---------------------------------------------------------------

def _declare_species(circuit: SynthesizedCircuit, rails) -> None:
    design, network = circuit.design, circuit.network
    for source in design.sources:
        circuit.source_species[source] = {
            rail: network.add_species(
                Species(_source_name(source, rail), color="red")).name
            for rail in rails}
    for output in design.outputs:
        circuit.readout_species[output] = {
            rail: network.add_species(
                Species(_readout_name(output, rail), role="aux")).name
            for rail in rails}


def _build_fanout(circuit: SynthesizedCircuit, rails) -> None:
    """Phase 1: one reaction per source rail copying into all its edges."""
    design, network, protocol = (circuit.design, circuit.network,
                                 circuit.protocol)
    for source in design.sources:
        sinks = design.fanout_of(source)
        for rail in rails:
            source_species = circuit.source_species[source][rail]
            if not sinks:
                # Unused source: still must leave the rotation each cycle.
                protocol.add_drain(network, source_species,
                                   _waste_name(source, rail),
                                   label=f"waste {source}")
                continue
            products = {Species(_copy_name(source, sink, rail),
                                color="green"): 1
                        for sink in sinks}
            protocol.add_transfer(network, source_species, products,
                                  label=f"fanout {source} ({rail})")


def _build_gains(circuit: SynthesizedCircuit, rails) -> None:
    """Phase 2: rational gains into sink accumulators; adds merge.

    A gain ``p/q`` must consume ``q`` copies per ``p`` produced.  Writing
    it as one reaction of order ``q`` (``q c -> p a``) is correct but has
    mass-action rate ~``[c]**q``: its leak through a closed gate scales
    like the q-th power of the signal value (fatal -- observed as early
    blues killing the phase-1 gate), and its tail decays only as a power
    law.  Instead the division is *linearised*: a gated seed grabs one
    unit at a time and fast pairing reactions complete the q-unit bite::

        gate + c -> gate + h_1      (slow; rate ~ [c], gated)
        h_i + c  -> h_{i+1}         (fast)             i = 1..q-2
        h_{q-1} + c -> p a          (fast)

    The intermediates ``h_i`` hold at most ~``amp/k_fast`` quantity (seed
    influx over pairing outflux), within the protocol's quantisation
    floor.
    """
    design, network, protocol = (circuit.design, circuit.network,
                                 circuit.protocol)
    for (sink, source), coeff in sorted(design.coefficients.items()):
        magnitude: Fraction = abs(coeff)
        q, p = magnitude.denominator, magnitude.numerator
        for rail in rails:
            copy_species = _copy_name(source, sink, rail)
            target_rail = rail if coeff > 0 else _opposite(rail)
            if target_rail not in rails:
                raise SynthesisError(
                    f"negative coefficient for ({sink}, {source}) in "
                    f"unsigned synthesis")
            acc = Species(_acc_name(sink, target_rail), color="blue")
            label = f"gain {coeff} {source}->{sink} ({rail})"
            if q == 1:
                protocol.add_transfer(
                    network, Species(copy_species, color="green"), {acc: p},
                    label=label)
            else:
                _build_divided_gain(circuit, copy_species, acc, p, q, label)


def _build_divided_gain(circuit: SynthesizedCircuit, copy_species: str,
                        acc: Species, p: int, q: int, label: str) -> None:
    """Linearised ``q c -> p a`` (see :func:`_build_gains`)."""
    from repro.core.phases import CATALYTIC
    from repro.crn.reaction import Reaction

    network, protocol = circuit.network, circuit.protocol
    copy = network.add_species(Species(copy_species, color="green"))
    acc = network.add_species(acc)
    gate = network.add_species(protocol.gate_indicator("green"))
    # The stage intermediates are deliberately *uncoloured*: they hold at
    # most ~amp/k_fast quantity, and colouring them would add one more
    # near-threshold residue per gain to the absence detection of some
    # colour.  The price is that a leftover stage unit completes its bite
    # with the next cycle's copies -- an inter-sample smear bounded by the
    # quantisation floor.
    stages = [network.add_species(Species(f"h{i}_{copy_species}",
                                          role="aux"))
              for i in range(1, q)]
    seed_products = {stages[0]: 1}
    if protocol.gating == CATALYTIC:
        seed_products[gate] = 1
    network.add_reaction(Reaction({gate: 1, copy: 1}, seed_products,
                                  protocol.transfer_rate,
                                  label=f"{label} seed"))
    for i in range(1, q - 1):
        network.add_reaction(Reaction(
            {stages[i - 1]: 1, copy: 1}, {stages[i]: 1},
            protocol.consumption_rate, label=f"{label} pair {i}"))
    network.add_reaction(Reaction(
        {stages[-1]: 1, copy: 1}, {acc: p},
        protocol.consumption_rate, label=f"{label} close"))


def _build_landing(circuit: SynthesizedCircuit, rails) -> None:
    """Phase 3: delay accumulators land in their registers."""
    design, network, protocol = (circuit.design, circuit.network,
                                 circuit.protocol)
    for sink in design.delays:
        for rail in rails:
            acc = Species(_acc_name(sink, rail), color="blue")
            if acc.name not in set(network.species_names):
                continue  # nothing feeds this accumulator on this rail
            target = circuit.source_species[sink][rail]
            protocol.add_transfer(network, acc,
                                  Species(target, color="red"),
                                  label=f"land {sink} ({rail})")


def _build_readout(circuit: SynthesizedCircuit, rails) -> None:
    """Phase 3: output accumulators drain to the readout pools."""
    design, network, protocol = (circuit.design, circuit.network,
                                 circuit.protocol)
    for output in design.outputs:
        for rail in rails:
            acc = _acc_name(output, rail)
            if acc not in set(network.species_names):
                network.add_species(Species(acc, color="blue"))
            protocol.add_drain(network, acc,
                               circuit.readout_species[output][rail],
                               label=f"readout {output} ({rail})")


def _build_annihilation(circuit: SynthesizedCircuit) -> None:
    """Fast p/n annihilation on every dual-rail pair that can hold mass."""
    design, network, protocol = (circuit.design, circuit.network,
                                 circuit.protocol)
    pairs: list[tuple[str, str]] = []
    for source in design.sources:
        pairs.append((circuit.source_species[source]["p"],
                      circuit.source_species[source]["n"]))
    for sink in design.sinks:
        p_name, n_name = _acc_name(sink, "p"), _acc_name(sink, "n")
        existing = set(network.species_names)
        if p_name in existing and n_name in existing:
            pairs.append((p_name, n_name))
    for positive, negative in pairs:
        protocol.add_annihilation(network, positive, negative,
                                  label=f"annihilate {positive}/{negative}")


def _opposite(rail: str) -> str:
    return "n" if rail == "p" else "p"
