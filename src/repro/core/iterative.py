"""Iterative (looping) constructs over discrete molecule counts.

Rate-independent *continuous* CRNs compute only piecewise-linear
functions, so the paper series realises multiplication, exponentiation and
logarithms as **iterative constructs analogous to "for" and "while"
loops**: a loop body of fast reactions, sequenced by absence indicators,
repeated once per unit of a count species.

These constructs are exact with high probability in the *discrete*
(stochastic) semantics given fast >> slow -- each slow step fires once and
the fast body runs to completion before the next slow step, with
probability approaching one as the separation grows.  The discipline that
makes this true at single-molecule resolution: *decision* reactions
(anything consuming an absence indicator to change loop phase) are SLOW,
while indicator *suppression* is FAST -- a transient indicator molecule
generated during the wrong phase is then suppressed with probability
~1 - k_slow/k_fast instead of firing the branch with probability
1/(1 + suppressor count).  Under the
deterministic ODE semantics they are approximations (iterations blur into
each other), which the tests demonstrate quantitatively.

Loop skeleton (multiplication Z := X * Y shown)::

    IDLE + X -> T              (slow)   consume one X, start iteration
                                         (IDLE: a conserved one-unit
                                          baton; see _baton)
    T + Y -> T + Ys + Z        (fast)   copy Y into Z (marking Y spent)
    0 -> v                   (slow)   Y-exhausted indicator
    v + Y -> Y                 (fast)
    v + T -> U                 (fast)   copy done -> restore phase
    U + Ys -> U + Y            (fast)   restore Y from the spent copy
    0 -> u                   (slow)   Ys-exhausted indicator
    u + Ys -> Ys               (fast)
    u + U  -> 0                (fast)   restore done -> idle again

Each builder returns the name of the result species.
"""

from __future__ import annotations

from repro.crn.network import Network
from repro.crn.rates import FAST, SLOW
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.errors import NetworkError


def _sp(network: Network, name: str, role: str = "signal") -> Species:
    return network.add_species(Species(name, role=role))


def _absence_indicator(network: Network, name: str,
                       suppressors: list[Species],
                       rate: float | str = SLOW) -> Species:
    """An indicator generated slowly and consumed fast by each suppressor."""
    indicator = _sp(network, name, role="indicator")
    network.add_reaction(Reaction(None, {indicator: 1}, rate,
                                  label=f"generate {name}"))
    for suppressor in suppressors:
        network.add_reaction(Reaction({indicator: 1, suppressor: 1},
                                      {suppressor: 1}, FAST,
                                      label=f"{suppressor.name} "
                                            f"suppresses {name}"))
    return indicator



def _baton(network: Network, tag: str) -> Species:
    """A conserved single-token species sequencing one construct.

    Exactly one unit exists at all times across {baton, T, U, ...}; the
    loop passes it along instead of re-detecting idleness with an
    absence indicator.  This removes the (low- but non-zero-probability)
    double-start race in which a leftover idle-indicator molecule spawns
    a second overlapping iteration.
    """
    baton = _sp(network, f"{tag}_IDLE", role="aux")
    network.set_initial(baton, 1.0)
    return baton


def multiplier(network: Network, x: str = "X", y: str = "Y",
               z: str = "Z", tag: str = "mul") -> str:
    """``Z := X * Y`` by repeated addition (X consumed, Y preserved).

    One loop iteration per unit of X: copy the whole of Y into Z (marking
    it spent), then restore Y.  Absence indicators sequence the phases.
    """
    x_s = _sp(network, x)
    y_s = _sp(network, y)
    z_s = _sp(network, z)
    spent = _sp(network, f"{tag}_Ys", role="aux")
    token = _sp(network, f"{tag}_T", role="aux")
    restore = _sp(network, f"{tag}_U", role="aux")

    baton = _baton(network, tag)
    network.add_reaction(Reaction({baton: 1, x_s: 1}, {token: 1}, SLOW,
                                  label=f"{tag} start iteration"))
    network.add_reaction(Reaction({token: 1, y_s: 1},
                                  {token: 1, spent: 1, z_s: 1}, FAST,
                                  label=f"{tag} copy Y -> Z"))
    y_done = _absence_indicator(network, f"{tag}_v", [y_s])
    network.add_reaction(Reaction({y_done: 1, token: 1}, {restore: 1},
                                  SLOW, label=f"{tag} copy done"))
    network.add_reaction(Reaction({restore: 1, spent: 1},
                                  {restore: 1, y_s: 1}, FAST,
                                  label=f"{tag} restore Y"))
    spent_done = _absence_indicator(network, f"{tag}_u", [spent])
    network.add_reaction(Reaction({spent_done: 1, restore: 1}, {baton: 1},
                                  SLOW, label=f"{tag} restore done"))
    return z


def power_of_two(network: Network, x: str = "X", z: str = "Z",
                 tag: str = "exp") -> str:
    """``Z := 2 ** X`` by repeated doubling (X consumed).

    Z starts at one unit; each iteration doubles it.  The same loop
    skeleton as :func:`multiplier` with the copy step replaced by
    ``T + Z -> T + 2 Zs``.
    """
    x_s = _sp(network, x)
    z_s = _sp(network, z)
    network.set_initial(z_s, network.get_initial(z_s) or 1.0)
    doubled = _sp(network, f"{tag}_Zs", role="aux")
    token = _sp(network, f"{tag}_T", role="aux")
    restore = _sp(network, f"{tag}_U", role="aux")

    baton = _baton(network, tag)
    network.add_reaction(Reaction({baton: 1, x_s: 1}, {token: 1}, SLOW,
                                  label=f"{tag} start iteration"))
    network.add_reaction(Reaction({token: 1, z_s: 1},
                                  {token: 1, doubled: 2}, FAST,
                                  label=f"{tag} double"))
    z_done = _absence_indicator(network, f"{tag}_v", [z_s])
    network.add_reaction(Reaction({z_done: 1, token: 1}, {restore: 1},
                                  SLOW, label=f"{tag} double done"))
    network.add_reaction(Reaction({restore: 1, doubled: 1},
                                  {restore: 1, z_s: 1}, FAST,
                                  label=f"{tag} rename back"))
    doubled_done = _absence_indicator(network, f"{tag}_u", [doubled])
    network.add_reaction(Reaction({doubled_done: 1, restore: 1},
                                  {baton: 1}, SLOW,
                                  label=f"{tag} iteration done"))
    return z


def log_two(network: Network, x: str = "X", z: str = "Z",
            tag: str = "log") -> str:
    """``Z := ceil(log2(X))`` by repeated halving (X consumed).

    Each iteration pairs X down (``2 X -> Xh``), carries any odd leftover
    unit into the next round, and increments Z; the loop stops when a
    single unit remains.  With the leftover carried, the iteration count
    is exactly ``ceil(log2 X)`` (and 0 for X <= 1).

    "Fewer than two remain" is detected with a *pair-suppressed*
    indicator: ``v + 2 X -> 2 X`` has zero propensity at X < 2, so ``v``
    accumulates exactly when no pair is left.
    """
    x_s = _sp(network, x)
    z_s = _sp(network, z)
    halved = _sp(network, f"{tag}_Xh", role="aux")
    token = _sp(network, f"{tag}_T", role="aux")
    restore = _sp(network, f"{tag}_U", role="aux")

    # An iteration may start only when at least two X remain: the starter
    # requires a pair (returned intact), so a single leftover unit cannot
    # trigger it.
    baton = _baton(network, tag)
    network.add_reaction(Reaction({baton: 1, x_s: 2}, {token: 1, x_s: 2},
                                  SLOW, label=f"{tag} start iteration"))
    network.add_reaction(Reaction({token: 1, x_s: 2},
                                  {token: 1, halved: 1}, FAST,
                                  label=f"{tag} halve"))
    pairs_done = _sp(network, f"{tag}_v", role="indicator")
    network.add_reaction(Reaction(None, {pairs_done: 1}, SLOW,
                                  label=f"generate {tag}_v"))
    network.add_reaction(Reaction({pairs_done: 1, x_s: 2}, {x_s: 2}, FAST,
                                  label=f"pairs suppress {tag}_v"))
    network.add_reaction(Reaction({pairs_done: 1, token: 1},
                                  {restore: 1, z_s: 1}, SLOW,
                                  label=f"{tag} halve done, count"))
    network.add_reaction(Reaction({restore: 1, halved: 1},
                                  {restore: 1, x_s: 1}, FAST,
                                  label=f"{tag} rename back"))
    halved_done = _absence_indicator(network, f"{tag}_u", [halved])
    network.add_reaction(Reaction({halved_done: 1, restore: 1},
                                  {baton: 1}, SLOW,
                                  label=f"{tag} iteration done"))
    return z


def divider(network: Network, x: str = "X", y: str = "Y", q: str = "Q",
            r: str = "R", tag: str = "div") -> tuple[str, str]:
    """``Q := X div Y`` and ``R := X mod Y`` by repeated subtraction.

    X is consumed; Y ends as ``Y - R`` (the units subtracted in the final
    partial bite are delivered as the remainder rather than restored).

    Each iteration takes one "bite": the trimolecular pairing

        T + Y + X -> T + Ys                             (fast)

    consumes one X and one Y per firing (marking the Y as spent) until
    either side exhausts:

    - Y exhausted first -> a full bite: count it (``Q += 1``), restore
      the spent copies to Y, loop;
    - X exhausted first with Y still present -> the final partial bite:
      the spent count *is* ``X mod Y``; convert it to R and stop.

    The partial branch is tie-broken against exact division by requiring
    leftover Y catalytically (``xe + T + Y -> F + Y``): when X divides
    exactly, Y and X empty together and only the full-bite branch can
    fire.
    """
    x_s = _sp(network, x)
    y_s = _sp(network, y)
    q_s = _sp(network, q)
    r_s = _sp(network, r)
    spent = _sp(network, f"{tag}_Ys", role="aux")
    token = _sp(network, f"{tag}_T", role="aux")
    restore = _sp(network, f"{tag}_U", role="aux")
    partial = _sp(network, f"{tag}_F", role="aux")

    baton = _baton(network, tag)
    network.add_reaction(Reaction({baton: 1, x_s: 1}, {token: 1, x_s: 1},
                                  SLOW, label=f"{tag} start"))
    network.add_reaction(Reaction({token: 1, y_s: 1, x_s: 1},
                                  {token: 1, spent: 1}, FAST,
                                  label=f"{tag} bite"))
    y_empty = _absence_indicator(network, f"{tag}_v", [y_s])
    network.add_reaction(Reaction({y_empty: 1, token: 1},
                                  {restore: 1, q_s: 1}, SLOW,
                                  label=f"{tag} full bite, count"))
    network.add_reaction(Reaction({restore: 1, spent: 1},
                                  {restore: 1, y_s: 1}, FAST,
                                  label=f"{tag} restore Y"))
    spent_empty = _absence_indicator(network, f"{tag}_u", [spent])
    network.add_reaction(Reaction({spent_empty: 1, restore: 1},
                                  {baton: 1}, SLOW,
                                  label=f"{tag} restore done"))
    x_empty = _absence_indicator(network, f"{tag}_e", [x_s])
    network.add_reaction(Reaction({x_empty: 1, token: 1, y_s: 1},
                                  {partial: 1, y_s: 1}, SLOW,
                                  label=f"{tag} partial bite"))
    network.add_reaction(Reaction({partial: 1, spent: 1},
                                  {partial: 1, r_s: 1}, FAST,
                                  label=f"{tag} spent -> remainder"))
    return q, r


def build_divider(x_value: int, y_value: int) -> tuple[Network, str, str]:
    """Standalone divider network with initial counts."""
    _check_count(x_value)
    _check_count(y_value)
    if y_value < 1:
        raise NetworkError("division needs a positive divisor")
    network = Network("divider")
    quotient, remainder = divider(network)
    network.set_initial("X", float(x_value))
    network.set_initial("Y", float(y_value))
    return network, quotient, remainder


def build_multiplier(x_value: int, y_value: int) -> tuple[Network, str]:
    """Standalone multiplier network with initial counts."""
    _check_count(x_value)
    _check_count(y_value)
    network = Network("multiplier")
    result = multiplier(network)
    network.set_initial("X", float(x_value))
    network.set_initial("Y", float(y_value))
    return network, result


def build_power_of_two(x_value: int) -> tuple[Network, str]:
    """Standalone ``2**X`` network with an initial count."""
    _check_count(x_value)
    network = Network("power_of_two")
    result = power_of_two(network)
    network.set_initial("X", float(x_value))
    return network, result


def build_log_two(x_value: int) -> tuple[Network, str]:
    """Standalone ``ceil(log2 X)`` network with an initial count."""
    _check_count(x_value)
    if x_value < 1:
        raise NetworkError("log2 needs a positive count")
    network = Network("log_two")
    result = log_two(network)
    network.set_initial("X", float(x_value))
    return network, result


def _check_count(value: int) -> None:
    if value != int(value) or value < 0:
        raise NetworkError("iterative constructs take non-negative "
                           "integer counts")
