"""Signal-flow graph intermediate representation.

The synthesis flow of the paper series (Jiang, Kharam, Riedel & Parhi,
ICCAD 2010; DAC 2011) starts from a DSP-style signal-flow graph: inputs,
outputs, unit delays, adders, and constant gains.  This module provides
that IR plus its reduction to *matrix form*:

    sinks = C . sources

where ``sources`` are the values available at a cycle boundary (external
inputs and delay-element outputs), ``sinks`` are the values to be produced
during the cycle (external outputs and delay-element inputs), and ``C`` is
a matrix of exact rational coefficients obtained by summing gain products
over all combinational paths.  Any *linear* SFG reduces to this form, and
the matrix form maps onto exactly one three-phase cycle: fan-out
(red->green), gain/add (green->blue), land (blue->red).

Combinational cycles (loops not passing through a delay) are rejected --
the same legality rule as in digital-circuit design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.core.phases import rational_gain
from repro.errors import SynthesisError

_KINDS = ("input", "output", "delay", "gain", "add")


@dataclass(frozen=True)
class NodeRef:
    """Opaque handle to a node in a :class:`SignalFlowGraph`."""

    graph_id: int
    index: int


@dataclass
class _Node:
    kind: str
    name: str
    gain: Fraction | None = None
    preds: list[int] = field(default_factory=list)


class SignalFlowGraph:
    """Builder for linear signal-flow graphs.

    Example (first-order IIR low-pass ``y[n] = x[n]/2 + y[n-1]/2``)::

        sfg = SignalFlowGraph("iir1")
        x = sfg.input("x")
        state = sfg.delay("s")
        y = sfg.add(sfg.gain(Fraction(1, 2), x),
                    sfg.gain(Fraction(1, 2), state))
        sfg.output("y", y)
        sfg.connect(y, state)      # the delay stores y for the next cycle
    """

    _next_graph_id = 0

    def __init__(self, name: str = "sfg"):
        self.name = name
        self._nodes: list[_Node] = []
        self._delay_inputs: dict[int, int] = {}
        self._initial_state: dict[str, float] = {}
        SignalFlowGraph._next_graph_id += 1
        self._graph_id = SignalFlowGraph._next_graph_id

    # -- construction ------------------------------------------------------------

    def _add_node(self, node: _Node) -> NodeRef:
        self._nodes.append(node)
        return NodeRef(self._graph_id, len(self._nodes) - 1)

    def _resolve(self, ref: NodeRef) -> int:
        if not isinstance(ref, NodeRef) or ref.graph_id != self._graph_id:
            raise SynthesisError("node reference belongs to another graph")
        return ref.index

    def input(self, name: str) -> NodeRef:
        """Declare an external input signal."""
        self._check_fresh_name(name)
        return self._add_node(_Node("input", name))

    def output(self, name: str, source: NodeRef) -> NodeRef:
        """Declare an external output driven by ``source``."""
        self._check_fresh_name(name)
        return self._add_node(_Node("output", name,
                                    preds=[self._resolve(source)]))

    def delay(self, name: str, source: NodeRef | None = None,
              initial: float = 0.0) -> NodeRef:
        """Declare a unit delay element.

        The returned reference stands for the delay's *output* (last
        cycle's stored value).  Connect its input with ``source=`` here or
        later via :meth:`connect` (necessary for feedback loops).
        """
        self._check_fresh_name(name)
        ref = self._add_node(_Node("delay", name))
        if initial:
            self._initial_state[name] = float(initial)
        if source is not None:
            self.connect(source, ref)
        return ref

    def gain(self, coefficient, source: NodeRef) -> NodeRef:
        """A constant multiplier; the coefficient is snapped to an exact
        rational (see :func:`repro.core.phases.rational_gain`)."""
        coefficient = rational_gain(coefficient)
        index = self._resolve(source)
        return self._add_node(_Node("gain", f"gain{len(self._nodes)}",
                                    gain=coefficient, preds=[index]))

    def add(self, *sources: NodeRef) -> NodeRef:
        """Sum of two or more signals."""
        if len(sources) < 2:
            raise SynthesisError("add needs at least two operands")
        preds = [self._resolve(s) for s in sources]
        return self._add_node(_Node("add", f"add{len(self._nodes)}",
                                    preds=preds))

    def subtract(self, minuend: NodeRef, subtrahend: NodeRef) -> NodeRef:
        """``minuend - subtrahend`` (sugar for add + gain(-1))."""
        return self.add(minuend, self.gain(Fraction(-1), subtrahend))

    def connect(self, source: NodeRef, delay: NodeRef) -> None:
        """Connect a delay element's input (for feedback paths)."""
        delay_index = self._resolve(delay)
        node = self._nodes[delay_index]
        if node.kind != "delay":
            raise SynthesisError("connect target must be a delay node")
        if delay_index in self._delay_inputs:
            raise SynthesisError(
                f"delay {node.name!r} already has an input")
        self._delay_inputs[delay_index] = self._resolve(source)

    def set_initial(self, delay_name: str, value: float) -> None:
        if delay_name not in [n.name for n in self._nodes
                              if n.kind == "delay"]:
            raise SynthesisError(f"no delay named {delay_name!r}")
        self._initial_state[delay_name] = float(value)

    def _check_fresh_name(self, name: str) -> None:
        for node in self._nodes:
            if node.kind in ("input", "output", "delay") and \
                    node.name == name:
                raise SynthesisError(f"name {name!r} already used")

    # -- queries -------------------------------------------------------------------

    @property
    def input_names(self) -> list[str]:
        return [n.name for n in self._nodes if n.kind == "input"]

    @property
    def output_names(self) -> list[str]:
        return [n.name for n in self._nodes if n.kind == "output"]

    @property
    def delay_names(self) -> list[str]:
        return [n.name for n in self._nodes if n.kind == "delay"]

    # -- matrix reduction -------------------------------------------------------------

    def to_matrix(self) -> "MatrixDesign":
        """Reduce to matrix form; raises on combinational cycles or
        unconnected delay inputs."""
        for index, node in enumerate(self._nodes):
            if node.kind == "delay" and index not in self._delay_inputs:
                raise SynthesisError(
                    f"delay {node.name!r} has no input; use connect()")

        coefficients: dict[tuple[str, str], Fraction] = {}
        for index, node in enumerate(self._nodes):
            if node.kind == "output":
                sink = node.name
                upstream = node.preds[0]
            elif node.kind == "delay":
                sink = node.name
                upstream = self._delay_inputs[index]
            else:
                continue
            for source, coeff in self._path_gains(upstream).items():
                key = (sink, source)
                coefficients[key] = coefficients.get(key, Fraction(0)) + coeff

        coefficients = {k: v for k, v in coefficients.items() if v != 0}
        return MatrixDesign(
            name=self.name,
            inputs=self.input_names,
            outputs=self.output_names,
            delays=self.delay_names,
            coefficients=coefficients,
            initial_state=dict(self._initial_state))

    def _path_gains(self, index: int,
                    _stack: frozenset[int] = frozenset()
                    ) -> dict[str, Fraction]:
        """Summed gain products from every source reaching ``index``."""
        if index in _stack:
            raise SynthesisError(
                "combinational cycle detected (a loop must pass through "
                "a delay element)")
        node = self._nodes[index]
        if node.kind in ("input", "delay"):
            return {node.name: Fraction(1)}
        stack = _stack | {index}
        if node.kind == "gain":
            inner = self._path_gains(node.preds[0], stack)
            return {src: c * node.gain for src, c in inner.items()}
        if node.kind == "add":
            total: dict[str, Fraction] = {}
            for pred in node.preds:
                for src, c in self._path_gains(pred, stack).items():
                    total[src] = total.get(src, Fraction(0)) + c
            return total
        raise SynthesisError(f"node kind {node.kind!r} cannot feed a sink")


@dataclass
class MatrixDesign:
    """Matrix form of a linear synchronous design.

    ``coefficients[(sink, source)]`` is the exact rational weight with
    which ``source`` (an input or a delay output) contributes to ``sink``
    (an output or a delay input) within one cycle.
    """

    name: str
    inputs: list[str]
    outputs: list[str]
    delays: list[str]
    coefficients: dict[tuple[str, str], Fraction]
    initial_state: dict[str, float] = field(default_factory=dict)

    @property
    def sources(self) -> list[str]:
        return self.inputs + self.delays

    @property
    def sinks(self) -> list[str]:
        return self.outputs + self.delays

    @property
    def signed(self) -> bool:
        """True if any coefficient is negative (dual-rail needed)."""
        return any(c < 0 for c in self.coefficients.values())

    def coefficient(self, sink: str, source: str) -> Fraction:
        return self.coefficients.get((sink, source), Fraction(0))

    def fanout_of(self, source: str) -> list[str]:
        """Sinks that ``source`` feeds (nonzero coefficient)."""
        return [sink for sink in self.sinks
                if (sink, source) in self.coefficients]

    def validate(self) -> None:
        sources, sinks = set(self.sources), set(self.sinks)
        if len(sources) != len(self.sources):
            raise SynthesisError("duplicate source names")
        if len(set(self.outputs)) != len(self.outputs):
            raise SynthesisError("duplicate output names")
        for (sink, source) in self.coefficients:
            if sink not in sinks:
                raise SynthesisError(f"unknown sink {sink!r}")
            if source not in sources:
                raise SynthesisError(f"unknown source {source!r}")
        for name in self.initial_state:
            if name not in self.delays:
                raise SynthesisError(
                    f"initial state for non-delay {name!r}")

    def reference_step(self, state: dict[str, float],
                       inputs: dict[str, float]) -> tuple[dict, dict]:
        """Exact discrete-time semantics: one synchronous cycle.

        Returns ``(outputs, next_state)``.  This is the golden model the
        molecular implementation is tested against.
        """
        source_values = {**{k: float(v) for k, v in inputs.items()},
                         **{k: float(v) for k, v in state.items()}}
        outputs = {}
        next_state = {}
        for sink in self.sinks:
            value = 0.0
            for source in self.sources:
                coeff = self.coefficient(sink, source)
                if coeff:
                    value += float(coeff) * source_values.get(source, 0.0)
            if sink in self.outputs:
                outputs[sink] = value
            else:
                next_state[sink] = value
        return outputs, next_state

    def reference_run(self, input_streams: dict[str, list[float]]
                      ) -> dict[str, list[float]]:
        """Run the golden model over full input streams."""
        lengths = {len(v) for v in input_streams.values()}
        if len(lengths) > 1:
            raise SynthesisError("input streams must have equal length")
        n = lengths.pop() if lengths else 0
        state = {name: self.initial_state.get(name, 0.0)
                 for name in self.delays}
        outputs: dict[str, list[float]] = {name: [] for name in self.outputs}
        for i in range(n):
            step_inputs = {k: v[i] for k, v in input_streams.items()}
            step_outputs, state = self.reference_step(state, step_inputs)
            for name, value in step_outputs.items():
                outputs[name].append(value)
        return outputs
