"""Delay elements and delay lines -- the molecular memory.

A delay element is the molecular D flip-flop: a triple of types
``R_i, G_i, B_i``.  One full colour rotation (three phases) moves the
element's stored quantity to the next element in the chain:

    X(=B_0) -> R_1 -> G_1 -> B_1 -> R_2 -> G_2 -> B_2 -> Y(=R_3)

exactly the two-element chain of the companion abstract's Figure 1.  The
quantity held by element ``i`` at a cycle boundary *is* the signal value
delayed by ``i`` samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crn.network import Network
from repro.crn.species import Species
from repro.core.phases import PhaseProtocol
from repro.errors import NetworkError


@dataclass(frozen=True)
class DelayElement:
    """Names of the three colour-coded types of one delay element."""

    name: str

    @property
    def red(self) -> Species:
        return Species(f"R_{self.name}", color="red")

    @property
    def green(self) -> Species:
        return Species(f"G_{self.name}", color="green")

    @property
    def blue(self) -> Species:
        return Species(f"B_{self.name}", color="blue")

    def species(self) -> tuple[Species, Species, Species]:
        return (self.red, self.green, self.blue)


class DelayLine:
    """A chain of ``n`` delay elements between an input and an output type.

    Parameters
    ----------
    n:
        number of delay elements.
    name:
        base name; element types are ``R_<name><i>`` etc.
    input_name / output_name:
        the boundary types.  Following the companion abstract the input is
        a *blue* type (``B_0`` plays the role of X) and the output is a
        *red* type (``R_{n+1}`` plays the role of Y), so a quantity placed
        on the input enters element 1 during the first blue-to-red phase.
    """

    def __init__(self, n: int, name: str = "d", input_name: str = "X",
                 output_name: str = "Y", drain_output: bool = False):
        if n < 1:
            raise NetworkError("delay line needs at least one element")
        self.n = n
        self.name = name
        self.drain_output = drain_output
        self.elements = [DelayElement(f"{name}{i}") for i in range(1, n + 1)]
        self.input = Species(input_name, color="blue")
        # The companion's one-shot chain ends in a red type Y (faithful to
        # its Figure 1); a *streaming* pipeline must instead drain its
        # output out of the colour rotation, because standing terminal red
        # mass would permanently block the red-absence gate.
        self.output = Species(output_name,
                              color=None if drain_output else "red")

    def build(self, network: Network, protocol: PhaseProtocol) -> None:
        """Emit the transfer reactions of the whole chain into ``network``.

        Per element ``i`` the transfers are ``R_i -> G_i`` and
        ``G_i -> B_i``; the connecting transfers are ``B_{i-1} -> R_i``
        (with ``B_0`` the chain input) and ``B_n -> Y``.
        """
        previous_blue = network.add_species(self.input)
        for element in self.elements:
            red = network.add_species(element.red)
            green = network.add_species(element.green)
            blue = network.add_species(element.blue)
            protocol.add_transfer(network, previous_blue, red,
                                  label=f"{previous_blue.name} -> {red.name}")
            protocol.add_transfer(network, red, green,
                                  label=f"{red.name} -> {green.name}")
            protocol.add_transfer(network, green, blue,
                                  label=f"{green.name} -> {blue.name}")
            previous_blue = blue
        output = network.add_species(self.output)
        if self.drain_output:
            protocol.add_drain(network, previous_blue, output,
                               label=f"{previous_blue.name} -> "
                                     f"{output.name} (drain)")
        else:
            protocol.add_transfer(network, previous_blue, output,
                                  label=f"{previous_blue.name} -> "
                                        f"{output.name}")

    def signal_species(self) -> list[str]:
        """All chain type names, input to output order."""
        names = [self.input.name]
        for element in self.elements:
            names.extend(s.name for s in element.species())
        names.append(self.output.name)
        return names


def build_delay_chain(n: int = 2, initial: float = 50.0,
                      acceleration: str = "dimer",
                      protocol: PhaseProtocol | None = None
                      ) -> tuple[Network, DelayLine, PhaseProtocol]:
    """The companion abstract's experiment: an ``n``-element delay chain.

    Returns the finalized network, the :class:`DelayLine` and the protocol.
    The initial quantity is placed on the chain input X.  The default
    acceleration mode is ``dimer`` -- the literal published reactions --
    which is sound here because the chain is one-shot (all downstream types
    start empty).
    """
    network = Network(f"delay_chain_{n}")
    used_protocol = protocol or PhaseProtocol(gating="consuming",
                                              acceleration=acceleration)
    line = DelayLine(n)
    line.build(network, used_protocol)
    network.set_initial(line.input, initial)
    used_protocol.finalize(network)
    return network, line, used_protocol
