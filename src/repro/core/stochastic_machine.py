"""Driving a synthesized machine under exact stochastic semantics.

The ODE driver needs a quantisation step at cycle boundaries because the
continuum carries sub-molecule residues that real chemistry does not.
This driver is the ground truth for that argument: it runs the *same*
synthesized reaction network with Gillespie's exact SSA, where counts are
integers and "absent" means literally zero molecules.  No flushing, no
tolerance tricks -- the protocol's absence detection works natively.

Costs: wall-clock time scales with event counts (keep signals <= a few
hundred molecules), and outputs carry discreteness noise of a few
molecules (odd quantities cannot halve exactly; indicator arrival times
are random).  The integration test checks agreement with the ODE driver
to within that noise scale.

**Straggler deadlocks.**  At single-molecule resolution the absence
threshold degenerates: one straggler molecule suppresses its indicator at
rate ``k_fast`` against amplification ``amp``, so a state with a couple
of leftover molecules in *every* colour pins all three gates at zero and
the rotation freezes -- a genuine limitation of the scheme at low copy
number, observed here experimentally.  The driver recovers by flushing
stragglers (counts <= ``straggler_tolerance``) after ``patience`` time
units without a boundary, modelling the slow degradation real molecules
undergo; flush events are counted so results report how often recovery
was needed.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.crn.rates import RateScheme
from repro.crn.simulation.ssa import StochasticSimulator
from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.core.machine import MachineOptions, MachineRun
from repro.core.phases import landing_map
from repro.core.synthesis import SynthesizedCircuit, synthesize
from repro.errors import SimulationError, SynthesisError
from repro.obs.records import CycleSpan
from repro.waves.probe import ensure_probe, signal_key


class StochasticMachine:
    """SSA counterpart of :class:`~repro.core.machine.SynchronousMachine`.

    Cycle boundaries are detected by polling the counts every
    ``poll_interval`` time units: a boundary holds when the clock-red
    count has re-accumulated and the blue category holds at most
    ``blue_tolerance`` molecules.
    """

    def __init__(self, design: MatrixDesign | SignalFlowGraph |
                 SynthesizedCircuit,
                 scheme: RateScheme | None = None,
                 clock_mass: float = 20.0,
                 signed: bool | None = None,
                 seed: int | None = None,
                 poll_interval: float = 0.25,
                 boundary_fraction: float = 0.9,
                 blue_tolerance: int = 0,
                 patience: float = 20.0,
                 straggler_tolerance: int = 4,
                 max_cycle_time: float | None = None,
                 tracer=None, metrics=None,
                 faults=None, probe=None,
                 options: MachineOptions | None = None):
        self.options = options or MachineOptions()
        if isinstance(design, SynthesizedCircuit):
            self.circuit = design
        else:
            self.circuit = synthesize(design, clock_mass=clock_mass,
                                      signed=signed,
                                      oscillator=self.options.oscillator)
        if scheme is None:
            # The ODE driver keeps indicator generation tiny because the
            # continuum integrates its floor into cross-gate leaks.  In
            # the discrete semantics generation is a *seed event*: with
            # gen = 0.01 the amplifier waits ~100 time units for its
            # first molecule.  Discrete states cannot accumulate
            # sub-molecule leaks, so a brisk seed rate is safe here.
            values = dict(RateScheme().values)
            values["gen"] = values["slow"]
            scheme = RateScheme(values)
        self.scheme = scheme
        self.faults = faults
        rates = None
        if faults is not None and faults.active:
            setup = faults.materialize(self.circuit.network, self.scheme)
            self._network = setup.network
            self.scheme = setup.scheme
            rates = setup.rates
        else:
            self._network = self.circuit.network
        self.simulator = StochasticSimulator(self.network, self.scheme,
                                             rates=rates,
                                             seed=seed, tracer=tracer,
                                             metrics=metrics)
        self.probe = ensure_probe(probe)
        self.poll_interval = poll_interval
        self.boundary_fraction = boundary_fraction
        self.blue_tolerance = int(blue_tolerance)
        self.patience = patience
        self.straggler_tolerance = int(straggler_tolerance)
        self.flush_events = 0
        self.max_cycle_time = max_cycle_time or 200.0 / self.scheme.slow
        self._colored_indices = [
            self.network.species_index(s) for s in self.network.species
            if s.color is not None and s.role != "clock"]
        self._blue_indices = [
            self.network.species_index(s)
            for s in self.network.species_with_color("blue")]
        self._clock_red_index = self.network.species_index(
            self.circuit.clock.red.name)
        # Adaptive clocking under SSA mirrors the ODE driver: the poll
        # scan accepts a boundary once the state has digitally settled,
        # and the remaining (integer) blue residuals are landed along
        # their unique gated seed transfers.
        self._green_indices = [
            self.network.species_index(s)
            for s in self.network.species_with_color("green")]
        clock_set = {self.network.species_index(name)
                     for name in self.circuit.clock.species_names()}
        self._signal_blue_indices = [i for i in self._blue_indices
                                     if i not in clock_set]
        if self.options.adaptive:
            if not self.options.settle_fraction < self.boundary_fraction:
                raise SimulationError(
                    f"adaptive clocking needs settle_fraction "
                    f"({self.options.settle_fraction}) below "
                    f"boundary_fraction ({self.boundary_fraction})")
            transfers = landing_map(self.network, self.circuit.protocol,
                                    color="blue")
            self._landing = []
            for index in self._blue_indices:
                name = self.network.species[index].name
                targets = transfers.get(name)
                if not targets:
                    raise SynthesisError(
                        f"adaptive clocking needs a gated seed transfer "
                        f"for every blue species, but {name!r} has none")
                self._landing.append(
                    (index, [(self.network.species_index(target), ratio)
                             for target, ratio in targets]))

    @property
    def network(self):
        """The simulated network (faulted copy when ``faults`` is active)."""
        return self._network

    @property
    def design(self) -> MatrixDesign:
        return self.circuit.design

    # -- driving ---------------------------------------------------------------

    def run(self, inputs: Mapping[str, Sequence[float]],
            extra_cycles: int = 1) -> MachineRun:
        """Stream integer-valued samples through the machine under SSA."""
        streams = self._check_streams(inputs)
        n_samples = len(next(iter(streams.values()))) if streams else 0
        n_cycles = n_samples + max(int(extra_cycles), 1)

        counts = np.rint(self.network.initial_vector()).astype(np.int64)
        spans: list[CycleSpan] = []
        cumulative = {name: [self._readout(counts, name)]
                      for name in self.design.outputs}
        state_history = [self._register_values(counts)]

        t = 0.0
        for cycle in range(n_cycles):
            if cycle < n_samples:
                counts = self._inject(counts, {
                    name: streams[name][cycle] for name in streams})
            t_start = t
            counts, t = self._run_cycle(counts, t)
            span = CycleSpan(cycle, t_start, t)
            spans.append(span)
            if self.probe.enabled:
                self._probe_cycle(span, counts)
            if self.faults is not None and self.faults.active:
                counts = np.maximum(np.rint(self.faults.on_boundary(
                    cycle, counts.astype(float), self.network)),
                    0).astype(np.int64)
            for name in self.design.outputs:
                cumulative[name].append(self._readout(counts, name))
            state_history.append(self._register_values(counts))

        outputs = {name: np.diff(np.array(series, dtype=float))
                   for name, series in cumulative.items()}
        reference = {name: np.array(values) for name, values in
                     self.design.reference_run(
                         {k: list(v) for k, v in streams.items()}).items()}
        diagnostics = self.probe.finish(t) if self.probe.enabled else []
        return MachineRun(outputs=outputs, reference=reference,
                          cycles=spans,
                          trajectory=None, state_history=state_history,
                          diagnostics=diagnostics)

    def _probe_cycle(self, span: CycleSpan, counts: np.ndarray) -> None:
        """One boundary reading on the waveform probe (the SSA driver
        polls chunks, so within-cycle rows are not recorded -- only the
        boundary states, which is what the assertions judge)."""
        probe = self.probe
        probe.observe_cycle(span, [], [])
        values = {"cycle": span.index, "t": span.t1,
                  "period": span.duration}
        clock_total = 0.0
        for name in self.circuit.clock.species_names():
            clock_total += float(counts[self.network.species_index(name)])
        probe.record("clock_total", span.t1, clock_total, kind="real")
        values["clock_total"] = clock_total
        for name, value in self._register_values(counts).items():
            probe.record(f"reg_{name}", span.t1, value, kind="real")
            values[signal_key(f"reg_{name}")] = value
        probe.boundary(span.index, span.t1, values)

    def _run_cycle(self, counts: np.ndarray,
                   t: float) -> tuple[np.ndarray, float]:
        """Advance one full rotation, scanning *within* each simulated
        chunk: the boundary window (clock red re-accumulated, blues
        empty) can be much shorter than a chunk, because the blue-absence
        gate is still on from the previous cycle and phase 1 restarts
        immediately."""
        opts = self.options
        adaptive = opts.adaptive
        threshold = (opts.settle_fraction if adaptive
                     else self.boundary_fraction) * self.circuit.clock.mass
        if adaptive:
            # Settling residual scales with the cycle's live signal mass
            # (integer counts), never below the fixed tolerance.
            signal_mass = int(counts[self._colored_indices].sum())
            settle_tol = max(self.blue_tolerance,
                             int(opts.settle_residual * signal_mass))
        samples_per_chunk = 16
        departed = False
        cycle_start = t
        start = t
        while True:
            trajectory = self.simulator.simulate(
                self.poll_interval, initial=counts,
                n_samples=samples_per_chunk)
            states = trajectory.states
            reds = states[:, self._clock_red_index]
            if adaptive:
                greens = states[:, self._green_indices].sum(axis=1)
                blues = states[:, self._signal_blue_indices].sum(axis=1)
            else:
                blues = states[:, self._blue_indices].sum(axis=1)
            for i in range(1, samples_per_chunk):
                if not departed:
                    if reds[i] < 0.5 * self.circuit.clock.mass:
                        departed = True
                elif adaptive:
                    if (reds[i] >= threshold
                            and greens[i] <= self.blue_tolerance
                            and blues[i] <= settle_tol):
                        counts = np.rint(states[i]).astype(np.int64)
                        return (self._land_residuals(counts),
                                t + float(trajectory.times[i]))
                elif (reds[i] >= threshold
                      and blues[i] <= self.blue_tolerance):
                    # Restart from this recorded state (Markov property:
                    # any sampled state is a valid SSA initial state).
                    counts = np.rint(states[i]).astype(np.int64)
                    return counts, t + float(trajectory.times[i])
            counts = np.rint(trajectory.final()).astype(np.int64)
            t += self.poll_interval
            if t - start > self.patience:
                counts = self._flush_stragglers(counts)
                start = t - self.patience / 2  # renewed (half) patience
            # Deadline on the whole cycle, not the patience window: the
            # renewal above would otherwise keep `t - start` below the
            # limit forever, so an unrecoverable wedge (e.g. clock mass
            # leaked to zero at low copy number) would spin indefinitely.
            if t - cycle_start > self.max_cycle_time:
                raise SimulationError(
                    f"no stochastic cycle boundary within "
                    f"{self.max_cycle_time:g} time units after "
                    f"t={cycle_start:g}")

    def _land_residuals(self, counts: np.ndarray) -> np.ndarray:
        """Complete residual blue molecules along their seed transfers.

        The integer counterpart of the ODE driver's algebraic landing:
        each remaining blue molecule is moved to the products of its
        unique gated seed transfer, exactly what the chemistry would do
        in the dead time the adaptive boundary skipped.
        """
        counts = counts.copy()
        for index, targets in self._landing:
            amount = int(counts[index])
            if amount <= 0:
                continue
            counts[index] = 0
            for target_index, ratio in targets:
                counts[target_index] += int(round(amount * ratio))
        return counts

    def _flush_stragglers(self, counts: np.ndarray) -> np.ndarray:
        """Degrade straggler molecules wedging the rotation (see module
        docstring)."""
        counts = counts.copy()
        flushed = 0
        for index in self._colored_indices:
            if 0 < counts[index] <= self.straggler_tolerance:
                flushed += int(counts[index])
                counts[index] = 0
        if flushed:
            self.flush_events += 1
        return counts

    # -- helpers ------------------------------------------------------------------

    def _check_streams(self, inputs):
        expected = set(self.design.inputs)
        if set(inputs) != expected:
            raise SynthesisError(
                f"input streams {sorted(inputs)} do not match design "
                f"inputs {sorted(expected)}")
        lengths = {len(v) for v in inputs.values()}
        if len(lengths) > 1:
            raise SynthesisError("input streams must have equal length")
        for stream in inputs.values():
            for value in stream:
                if float(value) != int(value):
                    raise SynthesisError(
                        "stochastic semantics take integer molecule "
                        f"counts; got {value!r}")
        return dict(inputs)

    def _inject(self, counts: np.ndarray,
                samples: Mapping[str, float]) -> np.ndarray:
        counts = counts.copy()
        for name, value in samples.items():
            value = int(value)
            rail = "p" if value >= 0 else "n"
            if rail == "n" and not self.circuit.signed:
                raise SynthesisError(
                    f"negative input sample for unsigned design: "
                    f"{name}={value}")
            index = self.network.species_index(
                self.circuit.source_species[name][rail])
            counts[index] += abs(value)
        return counts

    def _getter(self, counts: np.ndarray):
        network = self.network

        def get(name: str) -> float:
            return float(counts[network.species_index(name)])

        return get

    def _readout(self, counts: np.ndarray, output: str) -> float:
        return self.circuit.readout_value(self._getter(counts), output)

    def _register_values(self, counts: np.ndarray) -> dict[str, float]:
        getter = self._getter(counts)
        return {name: self.circuit.state_value(getter, name)
                for name in self.design.delays}
