"""The paper's primary contribution: synchronous molecular computation.

Layers, bottom to top:

- :mod:`repro.core.phases` -- the three-phase (red/green/blue) transfer
  protocol with absence indicators, in both the companion-faithful
  ``consuming`` gating mode and the sharpened ``catalytic`` mode that
  free-running machines use.
- :mod:`repro.core.clock` -- the molecular clock (RGB oscillator).
- :mod:`repro.core.memory` -- delay elements and delay lines.
- :mod:`repro.core.modules` / :mod:`repro.core.iterative` -- the
  rate-independent combinational library and the discrete iterative
  constructs (multiply, exponentiate, logarithm).
- :mod:`repro.core.dfg` -- the signal-flow-graph IR and its matrix form.
- :mod:`repro.core.synthesis` -- compilation of a linear design into a
  finalized chemical reaction network.
- :mod:`repro.core.machine` -- the cycle driver that streams input
  samples through a synthesized circuit and reads the outputs back out.
- :mod:`repro.core.analysis` -- trajectory measurement helpers.
"""

from repro.core.analysis import (color_totals, conservation_drift,
                                 effective_series, effective_value,
                                 indicator_exclusivity, rise_time,
                                 settling_time, transfer_fidelity)
from repro.core.clock import MolecularClock, build_clock
from repro.core.compose import cascade, parallel_sum, rename
from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.core.machine import (MachineRun, MachineStepper,
                                SynchronousMachine)
from repro.core.memory import DelayElement, DelayLine, build_delay_chain
from repro.core.phases import (ACCELERATION_MODES, CATALYTIC, CONSUMING,
                               DIMER, GATING_MODES, NONE, PhaseProtocol,
                               rational_gain)
from repro.core.stochastic_machine import StochasticMachine
from repro.core.synthesis import SynthesizedCircuit, synthesize
from repro.core.verify import VerificationReport, check_circuit, \
    verify_circuit

__all__ = [
    "ACCELERATION_MODES",
    "CATALYTIC",
    "CONSUMING",
    "DIMER",
    "DelayElement",
    "DelayLine",
    "GATING_MODES",
    "MachineRun",
    "MachineStepper",
    "MatrixDesign",
    "MolecularClock",
    "NONE",
    "PhaseProtocol",
    "SignalFlowGraph",
    "StochasticMachine",
    "SynchronousMachine",
    "SynthesizedCircuit",
    "build_clock",
    "cascade",
    "build_delay_chain",
    "color_totals",
    "conservation_drift",
    "effective_series",
    "effective_value",
    "indicator_exclusivity",
    "parallel_sum",
    "rational_gain",
    "rename",
    "rise_time",
    "settling_time",
    "synthesize",
    "transfer_fidelity",
    "VerificationReport",
    "check_circuit",
    "verify_circuit",
]
