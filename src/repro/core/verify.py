"""Static verification of synthesized circuits.

A synthesized machine is a few hundred reactions; before burning
simulation time (or, eventually, DNA), these checks catch structural
bugs the way a netlist linter would:

- **parking**: every colour-coded species must have a way out of its
  colour (a transfer, drain, or annihilation), or its standing quantity
  permanently blocks that colour's absence detection;
- **gate legality**: every gated transfer must use the indicator the
  protocol assigns to its source colour, and move quantities only to the
  next colour;
- **value conservation**: summed over a whole cycle, the reactions must
  realise exactly the design's coefficient matrix -- checked symbolically
  on the stoichiometry, path by path;
- **implementability**: reaction orders within what the DSD chassis can
  compile.

``verify_circuit`` returns a report; ``check_circuit`` raises on the
first failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.crn.analysis import reaction_order_histogram
from repro.crn.species import next_color
from repro.core.phases import INDICATOR_NAMES
from repro.core.synthesis import SynthesizedCircuit
from repro.errors import SynthesisError


@dataclass
class VerificationReport:
    """Outcome of the static checks."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"verification {status}: {len(self.checked)} checks, "
                 f"{len(self.errors)} errors, {len(self.warnings)} "
                 f"warnings"]
        lines.extend(f"  error: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def verify_circuit(circuit: SynthesizedCircuit) -> VerificationReport:
    """Run all static checks on a synthesized circuit."""
    report = VerificationReport()
    _check_parking(circuit, report)
    _check_gate_legality(circuit, report)
    _check_coefficient_realisation(circuit, report)
    _check_implementability(circuit, report)
    return report


def check_circuit(circuit: SynthesizedCircuit) -> None:
    """Raise :class:`SynthesisError` if verification fails."""
    report = verify_circuit(circuit)
    if not report.ok:
        raise SynthesisError(report.summary())


# -- individual checks -------------------------------------------------------------

def _check_parking(circuit: SynthesizedCircuit,
                   report: VerificationReport) -> None:
    """Every coloured species needs a quantity-consuming reaction."""
    network = circuit.network
    indicator_names = set(INDICATOR_NAMES.values())
    for species in network.species:
        if species.color is None or species.name in indicator_names:
            continue
        consuming = [r for r in network.reactions
                     if r.reactants.get(species, 0)
                     > r.products.get(species, 0)]
        if not consuming:
            report.errors.append(
                f"coloured species {species.name!r} has no way out of "
                f"its colour: standing quantity would block the "
                f"{species.color}-absence indicator forever")
    report.checked.append("parking")


def _check_gate_legality(circuit: SynthesizedCircuit,
                         report: VerificationReport) -> None:
    """Gated transfers use the right indicator and advance one colour."""
    network = circuit.network
    protocol = circuit.protocol
    indicator_names = set(INDICATOR_NAMES.values())
    for reaction in network.reactions:
        gates = [s for s in reaction.reactants
                 if s.name in indicator_names]
        if not gates:
            continue
        gate = gates[0]
        colored_inputs = [s for s in reaction.reactants
                          if s.color is not None
                          and s.name not in indicator_names]
        if not colored_inputs:
            continue  # indicator generation/consumption bookkeeping
        if reaction.is_catalytic_in(colored_inputs[0]):
            continue  # consumption reaction (species kills indicator)
        source_color = colored_inputs[0].color
        own_indicator = protocol.indicator_name(source_color)
        if (gate.name == own_indicator
                and reaction.is_catalytic_in(gate)
                and all(p.name == gate.name for p in reaction.products)):
            continue  # scavenger: the colour's own indicator flushes
            # sub-threshold residue once it has switched on -- legal.
        expected = protocol.gate_indicator(source_color).name
        if gate.name != expected:
            report.errors.append(
                f"reaction {reaction} gates a {source_color} source "
                f"with {gate.name!r}; the protocol assigns {expected!r}")
        for product in reaction.products:
            if product.color is None or product.name in indicator_names:
                continue
            if product.color not in (source_color,
                                     next_color(source_color)):
                report.errors.append(
                    f"reaction {reaction} moves {source_color} quantity "
                    f"to {product.color} -- not an adjacent colour")
    report.checked.append("gate legality")


def _check_coefficient_realisation(circuit: SynthesizedCircuit,
                                   report: VerificationReport) -> None:
    """The reactions must realise the design matrix exactly.

    For each (sink, source) pair, multiply the per-stage ratios along
    the synthesized path: fan-out emits one copy per source unit, the
    gain stage turns q copies into p accumulator units, and landing is
    one-to-one.  The product must equal |coefficient|.
    """
    design = circuit.design
    network = circuit.network
    for (sink, source), coefficient in design.coefficients.items():
        for rail in circuit.rails():
            copy_name = f"c_{source}__{sink}_{rail}"
            if copy_name not in network:
                report.errors.append(
                    f"missing copy species {copy_name!r} for "
                    f"coefficient ({sink}, {source})")
                continue
            realised = _gain_ratio(circuit, copy_name)
            if realised is None:
                report.errors.append(
                    f"no gain stage consumes {copy_name!r}")
            elif realised != abs(coefficient):
                report.errors.append(
                    f"coefficient ({sink}, {source}) is "
                    f"{coefficient} but the reactions realise "
                    f"{realised}")
    report.checked.append("coefficient realisation")


def _gain_ratio(circuit: SynthesizedCircuit,
                copy_name: str) -> Fraction | None:
    """Units of accumulator produced per unit of copy consumed."""
    network = circuit.network
    copy = network.get_species(copy_name)
    direct = [r for r in network.reactions
              if r.reactants.get(copy, 0) > r.products.get(copy, 0)
              and "scavenges" not in r.label]
    if not direct:
        return None
    consumed = Fraction(0)
    produced = Fraction(0)
    # Follow the linearised-division chain: count total copy consumption
    # and accumulator production over one full q-unit bite.
    stages = sorted(direct, key=lambda r: r.label)
    for reaction in stages:
        consumed += reaction.reactants.get(copy, 0) \
            - reaction.products.get(copy, 0)
        for product, coeff in reaction.products.items():
            if product.name.startswith("a_"):
                produced += coeff
    if consumed == 0:
        return None
    return produced / consumed


def _check_implementability(circuit: SynthesizedCircuit,
                            report: VerificationReport) -> None:
    histogram = reaction_order_histogram(circuit.network)
    for order, count in sorted(histogram.items()):
        if order > 3:
            report.errors.append(
                f"{count} reactions of order {order}: not compilable "
                f"to the strand-displacement chassis (max order 3)")
        elif order == 3:
            report.warnings.append(
                f"{count} trimolecular reactions: compiled via a "
                f"pre-pairing step (extra fuel complexes)")
    report.checked.append("implementability")
