"""Static verification of synthesized circuits.

A synthesized machine is a few hundred reactions; before burning
simulation time (or, eventually, DNA), these checks catch structural
bugs the way a netlist linter would:

- **parking**: every colour-coded species must have a way out of its
  colour (a transfer, drain, or annihilation), or its standing quantity
  permanently blocks that colour's absence detection;
- **gate legality**: every gated transfer must use the indicator the
  protocol assigns to its source colour, and move quantities only to the
  next colour;
- **value conservation**: summed over a whole cycle, the reactions must
  realise exactly the design's coefficient matrix -- checked symbolically
  on the stoichiometry, path by path;
- **implementability**: reaction orders within what the DSD chassis can
  compile.

The checks themselves now live in :mod:`repro.lint` as registered rules
(``parking``, ``gate-legality``, ``coefficient-realisation``,
``implementability`` -- codes REPRO-E101..E105, REPRO-W106); this module
is the compatibility layer that runs exactly those four rules and
re-shapes their diagnostics into the original string report.

``verify_circuit`` returns a report; ``check_circuit`` raises on the
first failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.synthesis import SynthesizedCircuit
from repro.errors import SynthesisError

#: Lint rules behind the legacy checks, paired with their legacy labels.
#: Order matters: it is the historical check (and report) order, and it
#: matches lint registry order, so diagnostics come out pre-sorted.
_LEGACY_CHECKS = (
    ("parking", "parking"),
    ("gate-legality", "gate legality"),
    ("coefficient-realisation", "coefficient realisation"),
    ("implementability", "implementability"),
)


@dataclass
class VerificationReport:
    """Outcome of the static checks."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"verification {status}: {len(self.checked)} checks, "
                 f"{len(self.errors)} errors, {len(self.warnings)} "
                 f"warnings"]
        lines.extend(f"  error: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def verify_circuit(circuit: SynthesizedCircuit) -> VerificationReport:
    """Run all static checks on a synthesized circuit."""
    from repro.lint import LintConfig, Severity, lint_circuit

    config = LintConfig(
        select=frozenset(name for name, _ in _LEGACY_CHECKS))
    lint_report = lint_circuit(circuit, config)
    report = VerificationReport()
    for diagnostic in lint_report.diagnostics:
        if diagnostic.severity >= Severity.ERROR:
            report.errors.append(diagnostic.message)
        else:
            report.warnings.append(diagnostic.message)
    report.checked.extend(label for _, label in _LEGACY_CHECKS)
    return report


def check_circuit(circuit: SynthesizedCircuit) -> None:
    """Raise :class:`SynthesisError` if verification fails."""
    report = verify_circuit(circuit)
    if not report.ok:
        raise SynthesisError(report.summary())
