"""The three-phase transfer protocol with absence indicators.

This module implements the paper's central mechanism (reactions (1)-(6) of
the companion abstract).  Every *signal* type is colour-coded red, green or
blue.  All operations transfer quantities between consecutive colours:

    red -> green,   green -> blue,   blue -> red.

A transfer from colour ``c`` is enabled by the **absence** of colour
``previous(c)`` -- e.g. red-to-green transfers may fire only when no blue
remains, which means the preceding blue-to-red phase has completed.  Absence
is detected by indicator species ``r``, ``g``, ``b``:

    0 -> r   (slow, zeroth order)        r + R_i -> R_i   (fast)
    0 -> g   (slow)                      g + G_i -> G_i   (fast)
    0 -> b   (slow)                      b + B_i -> B_i   (fast)

An indicator accumulates only while *every* species of its colour is absent,
because any present species consumes it quickly.  There are only three
indicators regardless of design size, and through them the phases of **all**
transfers are ordered: no element may advance to the next phase until every
element has completed the current one.  That global ordering is exactly what
makes the computation synchronous.

Each transfer can optionally carry the companion abstract's
positive-feedback accelerator so that once a phase begins it runs to
completion quickly:

    2 G_i <-> I_G_i            (slow forward / fast backward)
    I_G_i + R_j -> 2 G_i + G_j (fast)

**Reproduction finding -- the accelerator is one-shot only.**  The fire
reaction ``I_G_i + R_j -> ...`` is not gated by any indicator; its standing
rate is ``k_slow * [G_i]**2 * [R_j]``.  In a one-shot transfer chain (the
companion's Figure 1) all products start at zero, so the accelerator is
inert until the gated seed reaction lights it -- correct behaviour.  In a
*free-running* synchronous machine, however, products hold standing mass
across cycles (registers, clock types), so the accelerator fires through
closed gates, the rotation decouples from the absence indicators, and the
system wedges in a mixed-residual state.  Dropping acceleration entirely
does not work either: indicator-consuming seed reactions alone give phase
tails that decay only as a power law (the indicator is pinned at
``gen/(k_fast * residual)``), and the leaked residue of one colour poisons
the next gate.

We therefore default to a **gated accelerator**: a transfer additionally
fires through

    gate + source + product -> gate + 2 product        (slow)

which is autocatalytic in the product, catalytic in the gate, and --
crucially -- carries a *slow* rate constant, so it stays within the
paper's two-category robustness story.  Its rate is the product of three
quantities that are simultaneously large only while the phase is genuinely
active; in every off-window at least one factor sits at its residual floor
and the leak is second-order small.  The ablation benchmark
``bench_acceleration.py`` measures all three modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.crn.network import Network
from repro.crn.rates import AMP, DAMP, FAST, GEN, SLOW
from repro.crn.reaction import Reaction
from repro.crn.species import COLORS, Species, as_species, next_color, \
    previous_color
from repro.errors import NetworkError

#: Default indicator names, matching the companion abstract.
INDICATOR_NAMES = {"red": "r", "green": "g", "blue": "b"}

#: Acceleration modes (see the module docstring for the analysis):
#: ``gated``  -- gate-catalysed autocatalysis at a *slow* rate constant,
#:               sound for free-running cyclic designs (our default);
#: ``dimer``  -- the companion abstract's reversible-dimer accelerator,
#:               faithful to the published reactions but one-shot only;
#: ``none``   -- un-accelerated (seed reactions only); phase tails then
#:               decay as a power law and cyclic designs eventually wedge.
GATED = "gated"
DIMER = "dimer"
NONE = "none"
ACCELERATION_MODES = (GATED, DIMER, NONE)

#: Gating modes:
#: ``catalytic``  -- transfers *read* the gate (``gate + src -> gate +
#:                   products``) and the indicators are sharpened into
#:                   bistable absence detectors by self-amplification
#:                   (``b -> 2b`` at rate ``amp``) with logistic damping
#:                   (``2b -> b`` slow).  A colour whose total mass exceeds
#:                   the threshold ``amp/k_fast`` pins its indicator at a
#:                   floor ~``gen/(k_fast * mass)``; once the mass drains
#:                   below threshold the indicator switches on within a
#:                   fraction of a slow time unit and drives the next phase
#:                   at rate ``k_slow * b_max * src``.  This mode is what
#:                   free-running synchronous machines use.
#: ``consuming``  -- the companion abstract's literal reactions: transfers
#:                   consume one indicator unit per firing.  Throughput is
#:                   then capped by indicator generation, so this mode is
#:                   paired with an acceleration mode (``dimer`` for the
#:                   published one-shot constructs).
CATALYTIC = "catalytic"
CONSUMING = "consuming"
GATING_MODES = (CATALYTIC, CONSUMING)


@dataclass
class PhaseProtocol:
    """Factory for phase-ordered transfer reactions on one network.

    One protocol instance manages one set of absence indicators.  Build the
    design by repeated :meth:`add_transfer` calls, then call
    :meth:`finalize` once; finalisation emits the indicator generation
    reactions and one fast consumption reaction per colour-coded species in
    the network (including species added by other builders, e.g. the clock).

    Parameters
    ----------
    prefix:
        optional prefix for indicator names, allowing several independent
        protocols (e.g. an isolated sub-design) in one network.
    acceleration:
        one of :data:`ACCELERATION_MODES`.  ``gated`` (default) is sound
        for free-running cyclic designs; ``dimer`` reproduces the companion
        abstract's published accelerator (one-shot transfers only);
        ``none`` disables acceleration (ablation).
    """

    prefix: str = ""
    gating: str = CATALYTIC
    acceleration: str | None = None
    generation_rate: float | str | None = None
    consumption_rate: float | str = FAST
    transfer_rate: float | str = SLOW
    amplification_rate: float | str = AMP
    damping_rate: float | str = DAMP
    acceleration_rate: float | str = SLOW
    feedback_forward: float | str = SLOW
    feedback_backward: float | str = FAST
    feedback_fire: float | str = FAST
    _finalized: bool = field(default=False, repr=False)

    def __post_init__(self):
        if self.gating not in GATING_MODES:
            raise NetworkError(
                f"unknown gating mode {self.gating!r}; "
                f"expected one of {GATING_MODES}")
        if self.acceleration is None:
            # Catalytic gates are strong enough on their own; consuming
            # gates need the companion's accelerator for throughput.
            self.acceleration = NONE if self.gating == CATALYTIC else DIMER
        if self.generation_rate is None:
            # Catalytic indicators are amplified, so generation only seeds
            # them (small); the companion's consuming indicators are
            # generated "constantly, at a slow rate" -- i.e. at k_slow.
            self.generation_rate = GEN if self.gating == CATALYTIC else SLOW
        if self.acceleration not in ACCELERATION_MODES:
            raise NetworkError(
                f"unknown acceleration mode {self.acceleration!r}; "
                f"expected one of {ACCELERATION_MODES}")

    # -- indicators -------------------------------------------------------------

    def indicator_name(self, color: str) -> str:
        if color not in COLORS:
            raise NetworkError(f"unknown colour {color!r}")
        return self.prefix + INDICATOR_NAMES[color]

    def indicator(self, color: str) -> Species:
        return Species(self.indicator_name(color), role="indicator")

    def gate_indicator(self, source_color: str) -> Species:
        """Indicator gating transfers *out of* ``source_color``.

        A transfer from colour ``c`` to ``next(c)`` is enabled by the
        absence of ``previous(c)``: red->green waits for blue to clear,
        green->blue waits for red, blue->red waits for green.
        """
        return self.indicator(previous_color(source_color))

    # -- transfers ---------------------------------------------------------------

    def add_transfer(self, network: Network, source, products,
                     consume: int = 1, label: str = "",
                     acceleration: str | None = None) -> None:
        """Add a phase-ordered transfer out of ``source``.

        Parameters
        ----------
        source:
            a colour-coded species (red, green or blue).
        products:
            the species produced per firing -- a single species, an
            iterable, or a ``{species: coeff}`` mapping.  Every product must
            carry the colour following the source's colour; bare names are
            auto-coloured.
        consume:
            reactant stoichiometry of the source (``q`` in a rational gain
            ``p/q``): each firing consumes ``consume`` units of the source.

        The emitted reactions (for a red source, gate indicator ``b``, and
        ``P`` the first product, acting as the acceleration anchor) are the
        gated seed

            b + q R_s -> products                       (slow)

        plus, in ``gated`` acceleration mode (default),

            b + q R_s + P -> b + P + products           (slow)

        -- autocatalytic in the product and catalytic in the gate, so its
        rate is large exactly when the phase is active (gate present,
        source and product both substantial) and negligible in every other
        phase window, where at least one factor is at its residual floor.
        In ``dimer`` mode the companion abstract's accelerator is emitted
        instead::

            2 P <-> I_P                                 (slow / fast)
            I_P + q R_s -> 2 P + products               (fast)
        """
        if self._finalized:
            raise NetworkError("protocol already finalized; create transfers "
                               "before calling finalize()")
        source = as_species(source)
        source = network.get_species(source.name) if source.name in (
            set(network.species_names)) else source
        if source.color is None:
            raise NetworkError(
                f"transfer source {source.name!r} has no colour")
        if consume < 1:
            raise NetworkError("consume must be >= 1")
        target_color = next_color(source.color)
        product_map = self._normalize_products(network, products,
                                               target_color)
        network.add_species(source)
        gate = network.add_species(self.gate_indicator(source.color))

        reactants = {source: consume, gate: 1}
        if self.gating == CATALYTIC:
            products = dict(product_map)
            products[gate] = products.get(gate, 0) + 1
        else:
            products = product_map
        network.add_reaction(Reaction(reactants, products,
                                      self.transfer_rate, label=label))
        mode = acceleration if acceleration is not None else self.acceleration
        if mode not in ACCELERATION_MODES:
            raise NetworkError(f"unknown acceleration mode {mode!r}")
        if mode == GATED:
            self._add_gated_acceleration(network, gate, source, consume,
                                         product_map, label)
        elif mode == DIMER:
            self._add_dimer_feedback(network, source, consume, product_map,
                                     label)

    def _normalize_products(self, network: Network, products,
                            target_color: str) -> dict[Species, int]:
        if isinstance(products, (Species, str)):
            products = [products]
        if isinstance(products, dict):
            items = [(as_species(k), int(v)) for k, v in products.items()]
        else:
            items = [(as_species(p), 1) for p in products]
        result: dict[Species, int] = {}
        for species, coeff in items:
            if coeff < 1:
                raise NetworkError("product coefficients must be >= 1")
            if species.name in set(network.species_names):
                species = network.get_species(species.name)
            if species.color is None:
                species = Species(species.name, color=target_color,
                                  role=species.role)
            if species.color != target_color:
                raise NetworkError(
                    f"product {species.name!r} is {species.color}, expected "
                    f"{target_color}")
            species = network.add_species(species)
            result[species] = result.get(species, 0) + coeff
        if not result:
            raise NetworkError("transfer must have at least one product")
        return result

    def _add_gated_acceleration(self, network: Network, gate: Species,
                                source: Species, consume: int,
                                product_map: dict[Species, int],
                                label: str) -> None:
        anchor = next(iter(product_map))
        reactants = {gate: 1, source: consume, anchor: 1}
        products = dict(product_map)
        products[gate] = products.get(gate, 0) + 1
        products[anchor] = products.get(anchor, 0) + 1
        reaction = Reaction(reactants, products, self.acceleration_rate,
                            label=f"{label} accel" if label else "")
        if reaction not in set(network.reactions):
            network.add_reaction(reaction)

    def _add_dimer_feedback(self, network: Network, source: Species,
                            consume: int, product_map: dict[Species, int],
                            label: str) -> None:
        anchor = next(iter(product_map))
        inter = network.add_species(Species(f"I_{anchor.name}",
                                            role="feedback"))
        dimer_fwd = Reaction({anchor: 2}, {inter: 1}, self.feedback_forward,
                             label=f"{label} feedback dimer" if label else "")
        dimer_bwd = Reaction({inter: 1}, {anchor: 2}, self.feedback_backward,
                             label=f"{label} feedback undimer" if label else "")
        fire_products = dict(product_map)
        fire_products[anchor] = fire_products.get(anchor, 0) + 2
        fire = Reaction({inter: 1, source: consume}, fire_products,
                        self.feedback_fire,
                        label=f"{label} feedback fire" if label else "")
        for reaction in (dimer_fwd, dimer_bwd, fire):
            if reaction not in set(network.reactions):
                network.add_reaction(reaction)

    def add_drain(self, network: Network, source, sink,
                  label: str = "") -> None:
        """Phase-ordered transfer out of the colour rotation.

        Drains a colour-coded species into an *uncoloured* accumulator --
        the molecular readout.  The drain is an ordinary gated transfer
        whose product simply leaves the rotation: for a blue source it is
        ``g + B -> g + sink`` (catalytic gating) or ``g + B -> sink``
        (consuming gating), firing during the source's normal phase.

        Outputs of a synthesized machine exit this way from their *blue*
        accumulator during phase 3, instead of landing in a red register:
        a standing red output register would deadlock against the
        red-absence indicator that is supposed to flush it (the indicator
        cannot switch on while the register holds the value it is waiting
        to export).
        """
        if self._finalized:
            raise NetworkError("protocol already finalized")
        source = as_species(source)
        if source.name in set(network.species_names):
            source = network.get_species(source.name)
        if source.color is None:
            raise NetworkError(f"drain source {source.name!r} has no colour")
        sink = as_species(sink)
        if sink.color is not None:
            raise NetworkError(
                f"drain sink {sink.name!r} must be uncoloured")
        source = network.add_species(source)
        sink = network.add_species(Species(sink.name, role="aux"))
        gate = network.add_species(self.gate_indicator(source.color))
        reactants = {source: 1, gate: 1}
        products = {sink: 1}
        if self.gating == CATALYTIC:
            products[gate] = 1
        network.add_reaction(Reaction(reactants, products,
                                      self.transfer_rate,
                                      label=label or
                                      f"drain {source.name}"))
        if self.gating == CONSUMING and self.acceleration == DIMER:
            # Without acceleration a consuming drain moves one unit per
            # indicator generated; anchor the companion accelerator on the
            # (uncoloured, terminal) sink.  Early export through the
            # standing-sink dimer is harmless for a terminal output.
            self._add_dimer_feedback(network, source, 1, {sink: 1}, label)

    # -- annihilation (signed signals) ---------------------------------------------

    def add_annihilation(self, network: Network, positive, negative,
                         label: str = "") -> None:
        """Fast mutual annihilation of a dual-rail pair.

        Used for subtraction and signed arithmetic: the value is the
        difference of the rails, which this reaction conserves while
        draining the smaller rail to zero.
        """
        positive = as_species(positive)
        negative = as_species(negative)
        network.add_reaction(Reaction({positive: 1, negative: 1}, None,
                                      self.consumption_rate,
                                      label=label or "annihilation"))

    # -- finalisation -----------------------------------------------------------

    def finalize(self, network: Network) -> None:
        """Emit indicator generation and consumption reactions.

        Must be called exactly once, after all colour-coded species exist in
        the network.
        """
        if self._finalized:
            raise NetworkError("protocol already finalized")
        for color in COLORS:
            indicator = network.add_species(self.indicator(color))
            network.add_reaction(Reaction(
                None, {indicator: 1}, self.generation_rate,
                label=f"generate {indicator.name}"))
            if self.gating == CATALYTIC:
                network.add_reaction(Reaction(
                    {indicator: 1}, {indicator: 2},
                    self.amplification_rate,
                    label=f"amplify {indicator.name}"))
                network.add_reaction(Reaction(
                    {indicator: 2}, {indicator: 1}, self.damping_rate,
                    label=f"damp {indicator.name}"))
            for species in network.species_with_color(color):
                network.add_reaction(Reaction(
                    {indicator: 1, species: 1}, {species: 1},
                    self.consumption_rate,
                    label=f"{species.name} consumes {indicator.name}"))
                if self.gating == CATALYTIC:
                    # Scavenging: once the colour's total quantity falls
                    # below the absence threshold and the indicator
                    # switches on, the indicator flushes the residue.
                    # Transfers with reactant stoichiometry q >= 2 have
                    # power-law tails that would otherwise freeze just
                    # above the threshold and wedge the rotation; the cost
                    # is a quantisation floor of order amp/k_fast per
                    # species per cycle, analogous to a hardware noise
                    # floor.
                    network.add_reaction(Reaction(
                        {indicator: 1, species: 1}, {indicator: 1},
                        self.transfer_rate,
                        label=f"{indicator.name} scavenges "
                              f"{species.name}"))
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized


def landing_map(network: Network, protocol: PhaseProtocol,
                color: str = "blue") -> dict[str, list[tuple[str, float]]]:
    """Where each ``color`` species' mass lands when its phase completes.

    For every colour-coded species, find its gated *seed* transfer (the
    reaction whose reactants are exactly the species plus its phase
    gate) and report the per-unit landing: a list of ``(product_name,
    units_produced_per_unit_consumed)``.  The adaptive-clocking driver
    uses this to complete a settled transfer algebraically -- the
    residual tail of the drain is a deterministic 1:q -> p relocation,
    so once the transfer has digitally settled the remaining mass can
    be moved to its destination without integrating the tail out.

    Species with no seed transfer are absent from the map; a species
    with *several* seed transfers (ambiguous landing) raises, because
    mass would split rate-dependently and no algebraic completion
    exists.
    """
    gate_name = protocol.gate_indicator(color).name
    result: dict[str, list[tuple[str, float]]] = {}
    for species in network.species_with_color(color):
        for reaction in network.reactions:
            consumed = reaction.reactants.get(species, 0)
            if not consumed:
                continue
            names = {s.name for s in reaction.reactants}
            if names != {species.name, gate_name}:
                continue  # scavenge/consumption/acceleration, not the seed
            if reaction.reactants.get(as_species(gate_name), 0) != 1:
                continue
            targets = [(product.name, coeff / consumed)
                       for product, coeff in reaction.products.items()
                       if product.name not in (gate_name, species.name)]
            if not targets:
                continue
            if species.name in result:
                raise NetworkError(
                    f"{species.name!r} has several gated transfers; its "
                    f"landing is ambiguous")
            result[species.name] = targets
    return result


def rational_gain(value) -> Fraction:
    """Coerce a gain coefficient to an exact rational.

    Floats are snapped to the nearest rational with denominator <= 64;
    exact rational coefficients are what the stoichiometric gain construct
    implements, so callers should prefer :class:`fractions.Fraction`.
    """
    if isinstance(value, Fraction):
        fraction = value
    elif isinstance(value, int):
        fraction = Fraction(value)
    else:
        fraction = Fraction(value).limit_denominator(64)
    return fraction
