"""Rate-independent combinational modules.

These are the memoryless building blocks of the paper series (Senum &
Riedel, PSB 2011; Jiang et al., ICCAD 2010): one-shot constructs that
compute a function of input quantities into an output quantity, exactly
and independently of rate constants (only fast >> slow is assumed).

Continuous-valued rate-independent CRNs compute exactly the
(superadditive, concave, ...) piecewise-linear functions; this module
provides that family:

================  =============================  ==========================
function          reactions (schematic)          notes
================  =============================  ==========================
move              X -> Z                         Z := X, X consumed
duplicate         X -> Z1 + Z2                   fan-out
add               X1 -> Z; X2 -> Z               Z := X1 + X2
scale p/q         linearised division            Z := (p/q) X
subtract          X1 -> Z; X2 -> W; Z+W -> 0     Z := max(0, X1-X2)
minimum           X1 + X2 -> Z                   Z := min(X1, X2)
maximum           add + min + annihilate         Z := max(X1, X2)
compare           X1 + X2 -> 0, leftovers        sign(X1 - X2) as presence
================  =============================  ==========================

Nonlinear functions (multiplication, exponentiation, logarithm) are
*iterative* constructs over discrete counts -- see
:mod:`repro.core.iterative`.

Each builder appends its reactions to a network and returns the output
species name(s).  The constructs are one-shot: inputs are initial
quantities, and the outputs settle to the computed values.
"""

from __future__ import annotations



from repro.crn.network import Network
from repro.crn.rates import FAST, SLOW
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.core.phases import rational_gain
from repro.errors import NetworkError


def _species(network: Network, name: str) -> Species:
    return network.add_species(Species(name))


def move(network: Network, source: str, target: str,
         rate: float | str = SLOW) -> str:
    """``target := source`` (source consumed)."""
    src = _species(network, source)
    dst = _species(network, target)
    network.add_reaction(Reaction({src: 1}, {dst: 1}, rate,
                                  label=f"move {source} -> {target}"))
    return target


def duplicate(network: Network, source: str, targets: list[str],
              rate: float | str = SLOW) -> list[str]:
    """Fan a quantity out into several equal copies (source consumed).

    A single reaction produces all copies: competing parallel reactions
    would split the quantity rate-dependently.
    """
    if len(targets) < 2:
        raise NetworkError("duplicate needs at least two targets")
    src = _species(network, source)
    products = {_species(network, t): 1 for t in targets}
    network.add_reaction(Reaction({src: 1}, products, rate,
                                  label=f"duplicate {source}"))
    return targets


def add(network: Network, sources: list[str], target: str,
        rate: float | str = SLOW) -> str:
    """``target := sum(sources)``."""
    if not sources:
        raise NetworkError("add needs at least one source")
    for source in sources:
        move(network, source, target, rate)
    return target


def scale(network: Network, source: str, target: str, factor,
          rate: float | str = SLOW) -> str:
    """``target := factor * source`` for an exact rational factor.

    Uses the linearised division construct (seed one unit slowly, complete
    the q-unit bite with fast pairings) so the kinetics stay first-order
    in the input; see :mod:`repro.core.synthesis` for the analysis.
    """
    factor = rational_gain(factor)
    if factor <= 0:
        raise NetworkError("scale factor must be positive")
    p, q = factor.numerator, factor.denominator
    src = _species(network, source)
    dst = _species(network, target)
    if q == 1:
        network.add_reaction(Reaction({src: 1}, {dst: p}, rate,
                                      label=f"scale {factor} {source}"))
        return target
    stages = [_species(network, f"h{i}_{source}__{target}")
              for i in range(1, q)]
    network.add_reaction(Reaction({src: 1}, {stages[0]: 1}, rate,
                                  label=f"scale {factor} {source} seed"))
    for i in range(1, q - 1):
        network.add_reaction(Reaction({stages[i - 1]: 1, src: 1},
                                      {stages[i]: 1}, FAST,
                                      label=f"scale {factor} pair {i}"))
    network.add_reaction(Reaction({stages[-1]: 1, src: 1}, {dst: p}, FAST,
                                  label=f"scale {factor} close"))
    return target


def subtract(network: Network, minuend: str, subtrahend: str, target: str,
             rate: float | str = SLOW) -> str:
    """``target := max(0, minuend - subtrahend)``.

    Both inputs transfer slowly into intermediates that annihilate fast,
    so the surplus of the larger side survives regardless of rates.
    """
    pos = _species(network, f"{target}__pos")
    neg = _species(network, f"{target}__neg")
    move(network, minuend, pos.name, rate)
    move(network, subtrahend, neg.name, rate)
    network.add_reaction(Reaction({pos: 1, neg: 1}, None, FAST,
                                  label=f"annihilate {target}"))
    move(network, pos.name, target, rate)
    return target


def minimum(network: Network, first: str, second: str, target: str,
            rate: float | str = FAST) -> str:
    """``target := min(first, second)`` -- one molecule of each per output."""
    a = _species(network, first)
    b = _species(network, second)
    dst = _species(network, target)
    network.add_reaction(Reaction({a: 1, b: 1}, {dst: 1}, rate,
                                  label=f"min {first},{second}"))
    return target


def maximum(network: Network, first: str, second: str, target: str,
            rate: float | str = SLOW) -> str:
    """``target := max(first, second) = first + second - min``.

    The inputs are first duplicated so both the sum and the min see the
    full quantities; the min then annihilates one unit of sum per unit.
    """
    a_sum = f"{target}__a_sum"
    b_sum = f"{target}__b_sum"
    a_min = f"{target}__a_min"
    b_min = f"{target}__b_min"
    duplicate(network, first, [a_sum, a_min], rate)
    duplicate(network, second, [b_sum, b_min], rate)
    total = _species(network, f"{target}__total")
    move(network, a_sum, total.name, rate)
    move(network, b_sum, total.name, rate)
    low = _species(network, f"{target}__min")
    minimum(network, a_min, b_min, low.name)
    network.add_reaction(Reaction({total: 1, low: 1}, None, FAST,
                                  label=f"max cancel {target}"))
    move(network, total.name, target, rate)
    return target


def compare(network: Network, first: str, second: str,
            greater: str = "GT", less: str = "LT") -> tuple[str, str]:
    """Leave ``first - second`` surplus in ``greater`` (or the reverse in
    ``less``): presence of one output type signals the comparison result,
    its quantity the magnitude of the difference."""
    a = _species(network, first)
    b = _species(network, second)
    network.add_reaction(Reaction({a: 1, b: 1}, None, FAST,
                                  label=f"compare {first},{second}"))
    move(network, first, greater, SLOW)
    move(network, second, less, SLOW)
    g = network.get_species(greater)
    l_species = network.get_species(less)
    network.add_reaction(Reaction({g: 1, l_species: 1}, None, FAST,
                                  label="compare residue annihilation"))
    return greater, less


def threshold(network: Network, source: str, level: int, target: str,
              rate: float | str = SLOW) -> str:
    """``target := max(0, source - level)`` against a constant.

    The constant is realised as an initial quantity of a reference type.
    """
    if level < 0:
        raise NetworkError("threshold level must be non-negative")
    reference = _species(network, f"{target}__ref")
    network.set_initial(reference, float(level))
    return subtract(network, source, reference.name, target, rate)


def weighted_sum(network: Network, terms: dict[str, object],
                 target: str) -> str:
    """``target := sum(coeff * source)`` with positive rational weights."""
    if not terms:
        raise NetworkError("weighted_sum needs at least one term")
    for index, (source, coeff) in enumerate(sorted(terms.items())):
        coeff = rational_gain(coeff)
        scaled = f"{target}__t{index}"
        scale(network, source, scaled, coeff)
        move(network, scaled, target)
    return target
