"""Synchronous machine driver: run a synthesized circuit over input streams.

The driver integrates the mass-action ODEs cycle by cycle.  A cycle
boundary is *detected from the chemistry*, not assumed from wall-clock
time: the boundary event fires when the clock's red type has re-accumulated
(>= ``boundary_fraction`` of the clock mass) *and* the blue category has
drained (phase 3 complete).  At each boundary the driver

1. samples every output's cumulative readout (uncoloured accumulator +
   still-draining register + landing dimer), differencing consecutive
   boundaries to obtain per-sample outputs, and
2. injects the next input sample into the input's red rail(s), modelling
   the external stimulus stream.

Because boundaries are event-detected, the driver is agnostic to absolute
rates: the same code runs a k_fast/k_slow = 10 system and a 10000 system;
only the simulated time span differs.  Output sample ``y[n]`` becomes
observable at boundary ``n + 1`` (one cycle of latency).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.ode import OdeSimulator
from repro.crn.simulation.result import Trajectory
from repro.crn.species import COLORS
from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.core.phases import landing_map
from repro.core.synthesis import SynthesizedCircuit, synthesize
from repro.errors import SimulationError, SynthesisError
from repro.obs.metrics import ensure_metrics
from repro.obs.monitors import (MonitorConfig, ProtocolMonitor,
                                ProtocolView, RuntimeDiagnostic)
from repro.obs.records import CycleSpan
from repro.obs.tracer import ensure_tracer
from repro.waves.probe import ensure_probe, signal_key

#: Colour rotation order: transfers move mass colour -> next colour.
_ROTATION = ("red", "green"), ("green", "blue"), ("blue", "red")

#: Recognised cycle-advance strategies for :class:`MachineOptions`.
CLOCKING_MODES = ("fixed", "adaptive")


@dataclass(frozen=True)
class MachineOptions:
    """Machine-level strategy knobs, separate from rate/tolerance numbers.

    clocking:
        ``"fixed"`` (default) ends each cycle on the classic worst-case
        boundary event -- clock red back above ``boundary_fraction`` of
        the nominal mass *and* every blue species drained below
        ``blue_tolerance``.  ``"adaptive"`` ends the cycle as soon as the
        state has *digitally* settled: clock red above
        ``settle_fraction`` of nominal (phase 3 underway), the green
        category drained, and the signal blues below the settling
        residual.  The sub-threshold blue tail that fixed clocking waits
        out is then completed algebraically at the boundary (each
        remaining blue moved along its unique gated seed transfer), so
        quantized digital state and readouts are identical while the
        simulated cycle time shrinks.
    settle_fraction:
        clock-red fraction arming the adaptive settling event.  Must
        exceed 0.5 (so the event stays negative until the departure
        region is left and cannot fire spuriously) and stay below the
        machine's ``boundary_fraction`` (otherwise adaptive clocking
        would wait on the same worst-case schedule it replaces).
    settle_residual:
        signal-blue residual fraction (of the cycle's signal mass)
        regarded as settled -- an R104-style boundary residual, kept
        under the monitor's ``boundary_residual_warn`` default (0.05) so
        an adaptive boundary never carries a residual that the fixed
        monitor would have warned about.
    oscillator:
        registered clock chemistry to synthesize with (see
        :func:`repro.core.clock.make_clock`).  Ignored when a pre-built
        :class:`SynthesizedCircuit` is supplied, since its clock was
        already chosen at synthesis time.
    """

    clocking: str = "fixed"
    settle_fraction: float = 0.55
    settle_residual: float = 0.04
    oscillator: str = "molecular"

    def __post_init__(self) -> None:
        if self.clocking not in CLOCKING_MODES:
            raise SimulationError(
                f"unknown clocking mode {self.clocking!r}: expected one "
                f"of {', '.join(CLOCKING_MODES)}")
        if not 0.5 < self.settle_fraction < 1.0:
            raise SimulationError(
                f"settle_fraction must lie in (0.5, 1.0), got "
                f"{self.settle_fraction!r}")
        if not 0.0 < self.settle_residual < 1.0:
            raise SimulationError(
                f"settle_residual must lie in (0, 1), got "
                f"{self.settle_residual!r}")

    @property
    def adaptive(self) -> bool:
        return self.clocking == "adaptive"


@dataclass
class MachineRun:
    """Result of driving a machine over input streams.

    Cycle timing is stored once, as the list of recorded
    :class:`~repro.obs.records.CycleSpan` -- the same spans the tracer
    emits -- and ``boundary_times`` / ``mean_cycle_time`` are derived
    from it, so the run result and a recorded trace can never disagree
    about where the boundaries were.
    """

    outputs: dict[str, np.ndarray]
    reference: dict[str, np.ndarray]
    cycles: list[CycleSpan]
    trajectory: Trajectory | None = None
    state_history: list[dict[str, float]] = field(default_factory=list)
    diagnostics: list[RuntimeDiagnostic] = field(default_factory=list)

    @property
    def boundary_times(self) -> np.ndarray:
        """Cycle-boundary times (t=0 plus each cycle's end)."""
        if not self.cycles:
            return np.array([0.0])
        return np.array([self.cycles[0].t0]
                        + [span.t1 for span in self.cycles])

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @staticmethod
    def _comparable(name: str, measured: np.ndarray,
                    expected: np.ndarray) -> np.ndarray:
        """Per-sample deviations over the reference-length prefix.

        The measured stream is *by design* longer than the reference --
        the driver appends ``extra_cycles`` flush samples after the last
        input -- so a longer measurement is aligned by comparing the
        first ``len(expected)`` samples.  A *shorter* measurement means
        the run ended early (stall, crash, truncated stitching) and the
        error metrics would silently judge only the prefix that happens
        to exist, so conformance and fault scorers could not tell a
        short run from a good one: that case raises, naming both
        lengths.
        """
        if len(measured) < len(expected):
            raise SimulationError(
                f"output {name!r} has {len(measured)} samples but the "
                f"reference has {len(expected)}: the run ended before "
                f"every reference sample was produced, so its error "
                f"metrics would be judged on a truncated stream")
        n = len(expected)
        return measured[:n] - expected[:n]

    def max_error(self, name: str | None = None) -> float:
        """Worst absolute deviation from the discrete-time reference."""
        names = [name] if name else list(self.outputs)
        worst = 0.0
        for key in names:
            deviation = self._comparable(key, self.outputs[key],
                                         self.reference[key])
            if deviation.size:
                worst = max(worst, float(np.max(np.abs(deviation))))
        return worst

    def rms_error(self, name: str) -> float:
        deviation = self._comparable(name, self.outputs[name],
                                     self.reference[name])
        if deviation.size == 0:
            return 0.0
        return float(np.sqrt(np.mean(deviation ** 2)))

    @property
    def mean_cycle_time(self) -> float:
        if not self.cycles:
            raise SimulationError("no complete cycles")
        return float(np.mean([span.duration for span in self.cycles]))


class SynchronousMachine:
    """Drives one synthesized circuit under one rate scheme."""

    def __init__(self, design: MatrixDesign | SignalFlowGraph |
                 SynthesizedCircuit,
                 scheme: RateScheme | None = None,
                 rates: np.ndarray | None = None,
                 clock_mass: float = 20.0,
                 signed: bool | None = None,
                 gating: str = "catalytic",
                 boundary_fraction: float = 0.9,
                 blue_tolerance: float | None = None,
                 quantization: float | None = None,
                 max_cycle_time: float | None = None,
                 method: str = "LSODA",
                 rtol: float = 1e-7, atol: float = 1e-9,
                 tracer=None, metrics=None,
                 monitor: MonitorConfig | None = None,
                 faults=None, probe=None,
                 options: MachineOptions | None = None):
        self.options = options or MachineOptions()
        if isinstance(design, SynthesizedCircuit):
            self.circuit = design
        else:
            self.circuit = synthesize(design, clock_mass=clock_mass,
                                      signed=signed, gating=gating,
                                      oscillator=self.options.oscillator)
        self.scheme = scheme or RateScheme()
        # Fault injection: materialise the perturbed system up front so
        # every derived quantity below (tolerances, indices, simulator)
        # is computed against the *faulted* network and scheme.  Fault
        # models never add or remove species, so the index bookkeeping
        # is identical either way.
        self.faults = faults
        if faults is not None and faults.active:
            setup = faults.materialize(self.circuit.network, self.scheme,
                                       rates)
            self._network = setup.network
            self.scheme = setup.scheme
            rates = setup.rates
        else:
            self._network = self.circuit.network
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)
        self.probe = ensure_probe(probe)
        self.monitor_config = monitor
        # Telemetry (and the protocol monitor that rides on it) is active
        # when any of the hooks was supplied; otherwise every per-cycle
        # hook below is a single attribute check.
        self._telemetry = (self.tracer.enabled or self.metrics.enabled
                           or self.probe.enabled or monitor is not None)
        self.simulator = OdeSimulator(self.network, self.scheme,
                                      rates=rates, method=method,
                                      rtol=rtol, atol=atol,
                                      tracer=tracer, metrics=metrics)
        self.boundary_fraction = boundary_fraction
        # Absence threshold of the sharpened indicators: a colour with
        # more than this total quantity pins its indicator off.
        theta = (self.scheme.values.get("amp", 30.0 * self.scheme.slow)
                 / self.scheme.fast)
        # The boundary requires the blue category to drain to the
        # residual scale before a cycle ends.  The tolerance is a small
        # multiple of the absence threshold: anything under it is flushed
        # by the boundary quantisation below, and the headroom keeps the
        # boundary reachable when per-reaction jitter moves the actual
        # threshold around its nominal value.
        self.blue_tolerance = blue_tolerance if blue_tolerance is not None \
            else 3.0 * theta
        # Sub-threshold residues are rounded to zero at each boundary.
        # On the ODE's continuum they accumulate into mixed-residual
        # deadlocks; physically they are fractions of a single molecule
        # (an exact stochastic simulation has literally zero copies there
        # almost always), so flushing them models discreteness rather than
        # idealising the chemistry.
        self.quantization = quantization if quantization is not None \
            else 3.0 * theta
        # Default cycle timeout: generous multiple of the slow time scale.
        self.max_cycle_time = max_cycle_time or 500.0 / self.scheme.slow
        self._blue_indices = [
            self.network.species_index(s)
            for s in self.network.species_with_color("blue")]
        self._clock_red_index = self.network.species_index(
            self.circuit.clock.red.name)
        self._clock_indices = [self.network.species_index(name)
                               for name in self.circuit.clock.species_names()]
        # The positive-feedback accelerator parks part of the clock mass in
        # the red dimer I_C_red; the boundary test must count it, or the
        # raw C_red quantity never reaches the threshold.
        red_dimer = f"I_{self.circuit.clock.red.name}"
        self._clock_red_dimer_index = (
            self.network.species_index(red_dimer)
            if red_dimer in self.network else None)
        # Coloured signal species per colour category, for the phase
        # monitor and the transfer spans in the trace.
        self._signal_groups = {
            color: [s.name for s in self.network.species
                    if s.role == "signal" and s.color == color]
            for color in COLORS}
        # Adaptive-clocking bookkeeping (also feeds the fixed-mode
        # recoverable-dead-time attribution in telemetry): the green
        # category, the blue species outside the clock, and -- in
        # adaptive mode -- where each blue's boundary residual lands.
        self._green_indices = [
            self.network.species_index(s)
            for s in self.network.species_with_color("green")]
        clock_set = set(self._clock_indices)
        self._signal_blue_indices = [i for i in self._blue_indices
                                     if i not in clock_set]
        if self.options.adaptive:
            if not self.options.settle_fraction < self.boundary_fraction:
                raise SimulationError(
                    f"adaptive clocking needs settle_fraction "
                    f"({self.options.settle_fraction}) below "
                    f"boundary_fraction ({self.boundary_fraction}): "
                    f"otherwise it waits on the worst-case schedule it "
                    f"is meant to replace")
            self._landing = self._landing_plan()
        # Period estimate for sample-density planning (updated per cycle).
        self._last_period: float | None = None
        # Previous cycle's segment durations: time-to-event hints for the
        # solver's chunked event search (cycle jitter is a few percent, so
        # the previous duration is an excellent estimate).
        self._segment_estimates: dict[str, float] = {}

    def make_monitor(self) -> ProtocolMonitor | None:
        """A fresh protocol-health monitor for one run (or ``None``
        when telemetry is disabled)."""
        if not self._telemetry:
            return None
        config = self.monitor_config
        if config is None:
            # Sub-quantization residues are flushed at each boundary and
            # are "absent" to the protocol, so states carrying only
            # residue-scale mass must not be judged: scale the monitor's
            # floor to this machine's quantization threshold.
            config = MonitorConfig(
                min_signal_mass=10.0 * self.quantization)
        view = ProtocolView(
            color_groups=self._signal_groups,
            indicator_names={
                color: self.circuit.protocol.indicator_name(color)
                for color in COLORS},
            drained_color="blue",
            clock_mass=self.circuit.clock.mass)
        return ProtocolMonitor(view, config,
                               tracer=self.tracer, metrics=self.metrics)

    @property
    def network(self) -> Network:
        """The simulated network (the faulted copy when ``faults`` is
        active, the pristine synthesized network otherwise)."""
        return self._network

    @property
    def design(self) -> MatrixDesign:
        return self.circuit.design

    # -- cycle boundary event --------------------------------------------------------

    def _effective_clock_red(self):
        clock_index = self._clock_red_index
        dimer_index = self._clock_red_dimer_index

        def value(x: np.ndarray) -> float:
            red = float(x[clock_index])
            if dimer_index is not None:
                red += 2.0 * float(x[dimer_index])
            return red

        return value

    def _departure_event(self):
        """Fires when the clock red has drained -- phase 1 is underway.

        Run before arming the boundary event: at a fresh boundary the
        boundary condition is (by construction) exactly satisfied, so the
        driver must first leave the boundary region or the event would
        re-fire immediately, producing a zero-length cycle.
        """
        threshold = 0.5 * self.circuit.clock.mass
        clock_red = self._effective_clock_red()

        def event(t: float, x: np.ndarray) -> float:
            return clock_red(x) - threshold

        event.terminal = True
        event.direction = -1.0
        return event

    def _boundary_event(self, signal_mass: float):
        threshold = self.boundary_fraction * self.circuit.clock.mass
        epsilon = self.blue_tolerance
        blue_indices = self._blue_indices
        clock_red = self._effective_clock_red()

        def event(t: float, x: np.ndarray) -> float:
            blues = float(x[blue_indices].sum())
            return min(clock_red(x) - threshold, epsilon - blues)

        event.terminal = True
        event.direction = 1.0
        return event

    def _settle_event(self, signal_mass: float):
        """Adaptive-boundary event: fires once the state has digitally
        settled, instead of waiting out the worst-case schedule.

        Three conditions, combined as a min so the event function
        crosses zero upward exactly when the last one is met:

        * clock red back above ``settle_fraction`` of nominal -- phase 3
          is underway (the fraction exceeds 0.5, so the value is
          negative right after departure and cannot re-fire at segment
          start);
        * the green category drained to ``blue_tolerance`` -- every
          green -> blue transfer has completed, so the signal-blue total
          below measures a *draining* tail, not one still being fed;
        * the signal blues below the settling residual (an R104-style
          boundary residual, kept under the monitor's warn fraction).

        The clock's own blue is deliberately absent: its tail is the
        slowest drain of all and carries no digital information -- the
        boundary landing and the quantisation top-up rotate it back to
        red exactly.
        """
        opts = self.options
        floor = opts.settle_fraction * self.circuit.clock.mass
        green_tol = self.blue_tolerance
        blue_tol = max(self.blue_tolerance,
                       opts.settle_residual * signal_mass)
        green_indices = self._green_indices
        signal_blues = self._signal_blue_indices
        clock_red = self._effective_clock_red()

        def event(t: float, x: np.ndarray) -> float:
            greens = float(x[green_indices].sum())
            blues = float(x[signal_blues].sum())
            return min(clock_red(x) - floor, green_tol - greens,
                       blue_tol - blues)

        event.terminal = True
        event.direction = 1.0
        return event

    def _landing_plan(self) -> list[tuple[int, list[tuple[int, float]]]]:
        """Index-resolved blue seed transfers for the adaptive boundary.

        Adaptive clocking ends the cycle while each blue species still
        carries a sub-threshold residual; the residual is completed
        algebraically by moving it along the species' unique gated seed
        transfer -- the very reaction fixed clocking sits through.  A
        blue species with no (or an ambiguous) seed transfer leaves
        nowhere sound to land that residual, so adaptive mode refuses
        such circuits up front rather than corrupting their state.
        """
        transfers = landing_map(self.network, self.circuit.protocol,
                                color="blue")
        plan: list[tuple[int, list[tuple[int, float]]]] = []
        for index in self._blue_indices:
            name = self.network.species[index].name
            targets = transfers.get(name)
            if not targets:
                raise SynthesisError(
                    f"adaptive clocking needs a gated seed transfer for "
                    f"every blue species, but {name!r} has none: its "
                    f"boundary residual cannot be landed")
            plan.append((index, [(self.network.species_index(target),
                                  ratio) for target, ratio in targets]))
        return plan

    def _land_residuals(self, state: np.ndarray) -> np.ndarray:
        """Complete the sub-threshold blue tail algebraically.

        At an adaptive boundary every blue species holds at most its
        settling residual; the chemistry that would finish draining it
        is its gated seed transfer, whose completion fixed clocking
        waits for.  Moving the residual to the transfer's products keeps
        the readout identical (readouts count in-flight blues and landed
        targets alike) and hands :meth:`_quantize` a state with the same
        digital content as a fixed boundary would have.
        """
        state = state.copy()
        for index, targets in self._landing:
            amount = float(state[index])
            if amount <= 0.0:
                continue
            state[index] = 0.0
            for target_index, ratio in targets:
                state[target_index] += amount * ratio
        return state

    # -- driving ------------------------------------------------------------------------

    def run(self, inputs: Mapping[str, Sequence[float]],
            extra_cycles: int = 1,
            record: bool = False,
            samples_per_cycle: int = 60) -> MachineRun:
        """Stream input samples through the machine.

        Parameters
        ----------
        inputs:
            one equal-length sample sequence per design input.
        extra_cycles:
            flush cycles appended after the last sample so the final
            outputs drain to the readout (>= 1 for full coverage).
        record:
            keep the stitched full trajectory (memory-heavy; off by
            default).
        """
        streams = self._check_streams(inputs)
        n_samples = len(next(iter(streams.values()))) if streams else 0
        n_cycles = n_samples + max(int(extra_cycles), 1)

        state = self.network.initial_vector()
        spans: list[CycleSpan] = []
        cumulative = {name: [self._readout(state, name)]
                      for name in self.design.outputs}
        state_history = [self._register_values(state)]
        trajectory: Trajectory | None = None
        monitor = self.make_monitor()

        t = 0.0
        for cycle in range(n_cycles):
            if cycle < n_samples:
                state = self._inject(state, {name: streams[name][cycle]
                                             for name in streams})
            state, span, segment = self._advance_cycle(
                state, t, cycle, record, samples_per_cycle, monitor)
            t = span.t1
            spans.append(span)
            for name in self.design.outputs:
                cumulative[name].append(self._readout(state, name))
            state_history.append(self._register_values(state))
            state = self._quantize(state)
            state = self._boundary_faults(cycle, state)
            if record:
                trajectory = segment if trajectory is None else \
                    trajectory.concat(segment)

        # cumulative[k] = sum of y[j] for j < k, so consecutive differences
        # recover the per-cycle output samples y[0], y[1], ...
        outputs = {name: np.diff(np.array(series))
                   for name, series in cumulative.items()}
        reference = {name: np.array(values) for name, values in
                     self.design.reference_run(
                         {k: list(v) for k, v in streams.items()}).items()}
        diagnostics = monitor.finish() if monitor else []
        if self.probe.enabled:
            diagnostics = diagnostics + self.probe.finish(t)
        return MachineRun(outputs=outputs, reference=reference,
                          cycles=spans,
                          trajectory=trajectory,
                          state_history=state_history,
                          diagnostics=diagnostics)

    def stepper(self) -> "MachineStepper":
        """An incremental driver for closed-loop use.

        Unlike :meth:`run`, which needs the whole input stream up front,
        a stepper advances one cycle per call and returns that cycle's
        output increments -- so the caller can compute the next input
        from the previous output (feedback through an external plant,
        adaptive stimulus, etc.).
        """
        return MachineStepper(self)

    def _advance_cycle(self, state: np.ndarray, t_start: float,
                       index: int, record: bool, samples_per_cycle: int,
                       monitor: ProtocolMonitor | None
                       ) -> tuple[np.ndarray, CycleSpan, Trajectory]:
        """Run one cycle and record its span (plus telemetry if on).

        This is the single path both :meth:`run` and the stepper go
        through, so cycle bookkeeping cannot diverge between them.
        """
        telemetry = self._telemetry
        wall_start = perf_counter() if telemetry else 0.0
        segment = self._run_cycle(state, t_start, record,
                                  samples_per_cycle)
        wall = perf_counter() - wall_start if telemetry else 0.0
        span = CycleSpan(index, t_start, segment.t_final, wall)
        self._last_period = span.duration
        state = segment.final()
        if self.options.adaptive:
            state = self._land_residuals(state)
        if telemetry:
            self._emit_cycle_telemetry(span, segment, state, monitor)
        return state, span, segment

    def _emit_cycle_telemetry(self, span: CycleSpan, segment: Trajectory,
                              state: np.ndarray,
                              monitor: ProtocolMonitor | None) -> None:
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("machine.cycles")
            metrics.observe("machine.cycle_sim_time", span.duration)
            metrics.observe("machine.cycle_wall_seconds", span.wall)
        tracer = self.tracer
        probe = self.probe
        if tracer.enabled or probe.enabled:
            # The phase/transfer decomposition feeds both the trace and
            # the waveform probe; compute it once.  ``boundary_wait`` is
            # the recoverable dead time: how long the cycle kept running
            # after the adaptive settling condition first held.
            phases = self._phase_spans(segment, span)
            transfers = self._transfer_spans(segment, span, phases)
            boundary_wait = self._boundary_wait(segment)
            if metrics.enabled:
                metrics.observe("machine.boundary_wait", boundary_wait)
        if tracer.enabled:
            tracer.emit_cycle(span)
            for color, t0, t1 in phases:
                tracer.emit_span(f"phase:{color}", "protocol", t0, t1,
                                 {"cycle": span.index, "color": color})
                if metrics.enabled:
                    metrics.observe(f"machine.phase_sim_time[{color}]",
                                    t1 - t0)
            for name, t0, t1, args in transfers:
                tracer.emit_span(name, "protocol", t0, t1, args)
            tracer.emit_event("boundary", "machine", span.t1,
                              {"cycle": span.index,
                               "boundary_wait": boundary_wait})
        if probe.enabled:
            self._probe_cycle(span, segment, state, phases, transfers,
                              boundary_wait)
        if monitor is not None:
            # Conservation is judged on the pre-replenishment state: the
            # boundary top-up in _quantize would mask the drift.
            monitor.observe_cycle(span, segment,
                                  clock_total=self._clock_total(state))

    def _boundary_wait(self, segment: Trajectory) -> float:
        """Recoverable dead time within one cycle segment.

        Simulated time between the first post-departure sample at which
        the adaptive settling condition holds and the cycle's actual
        end.  Under fixed clocking this is the margin adaptive clocking
        recovers; under adaptive clocking it is ~0 by construction
        (bounded by the sample spacing).  Sample-grid resolution is
        deliberate: this is attribution telemetry, not an event.
        """
        states = segment.states
        times = segment.times
        if times.size == 0:
            return 0.0
        reds = states[:, self._clock_red_index].astype(float)
        if self._clock_red_dimer_index is not None:
            reds = reds + 2.0 * states[:, self._clock_red_dimer_index]
        mass = self.circuit.clock.mass
        departed = np.nonzero(reds < 0.5 * mass)[0]
        if departed.size == 0:
            return 0.0
        start = int(departed[0])
        greens = states[:, self._green_indices].sum(axis=1)
        blues = states[:, self._signal_blue_indices].sum(axis=1)
        opts = self.options
        blue_tol = max(self.blue_tolerance,
                       opts.settle_residual * self._signal_mass(states[0]))
        settled = ((reds >= opts.settle_fraction * mass)
                   & (greens <= self.blue_tolerance)
                   & (blues <= blue_tol))
        hits = np.nonzero(settled[start:])[0]
        if hits.size == 0:
            return 0.0
        t_settle = float(times[start + int(hits[0])])
        return max(float(times[-1]) - t_settle, 0.0)

    def _probe_cycle(self, span: CycleSpan, segment: Trajectory,
                     state: np.ndarray, phases, transfers,
                     boundary_wait: float = 0.0) -> None:
        """Chart registers and clock mass on the waveform probe and
        stream the boundary sample (the assertion namespace).

        Runs on the *pre-quantisation* state, before
        :meth:`_boundary_faults` -- so a clock glitch injected at this
        boundary is visible in the *next* boundary's ``clock_total``
        sample, and an assertion fires the cycle after the fault, long
        before any end-of-run scorer compares outputs.
        """
        probe = self.probe
        probe.observe_cycle(span, phases, transfers, boundary_wait)
        # Adaptive within-cycle sampling: at most ``samples_per_cycle``
        # rows of the integrated segment; the change-list compresses
        # plateaus away.
        times = segment.times
        if times.size:
            stride = max(1, times.size // max(probe.samples_per_cycle, 1))
            for i in range(0, times.size, stride):
                self._probe_state_sample(float(times[i]),
                                         segment.states[i])
        values = {"cycle": span.index, "t": span.t1,
                  "period": span.duration}
        values.update(self._probe_state_sample(span.t1, state))
        probe.boundary(span.index, span.t1, values)

    def _probe_state_sample(self, t: float,
                            state: np.ndarray) -> dict[str, float]:
        """Record one waveform row; returns identifier-safe values."""
        probe = self.probe
        values: dict[str, float] = {}
        getter = self._getter(state)
        for name in self.design.delays:
            value = self.circuit.state_value(getter, name)
            probe.record(f"reg_{name}", t, value, kind="real")
            values[signal_key(f"reg_{name}")] = value
        clock_total = self._clock_total(state)
        probe.record("clock_total", t, clock_total, kind="real")
        values["clock_total"] = clock_total
        return values

    def _phase_spans(self, segment: Trajectory, span: CycleSpan
                     ) -> list[tuple[str, float, float]]:
        """Dominant-clock-colour windows within one cycle segment."""
        columns = np.stack([segment.column(name) for name in
                            self.circuit.clock.species_names()])
        dominant = np.argmax(columns, axis=0)
        times = segment.times
        spans: list[tuple[str, float, float]] = []
        start = 0
        for i in range(1, len(dominant) + 1):
            if i < len(dominant) and dominant[i] == dominant[start]:
                continue
            t0 = max(float(times[start]), span.t0)
            t1 = span.t1 if i == len(dominant) \
                else min(float(times[i]), span.t1)
            if t1 > t0:
                spans.append((COLORS[dominant[start]], t0, t1))
            start = i
        return spans

    def _transfer_spans(self, segment: Trajectory, span: CycleSpan,
                        phases: list[tuple[str, float, float]]
                        ) -> list[tuple[str, float, float, dict]]:
        """Signal hand-off windows, nested inside their phase spans.

        The ``source -> target`` transfer window starts when the source
        colour's signal mass begins to drain (below 95% of its in-cycle
        peak, after the peak) and ends when the drain completes (below
        10%); it is clamped into the phase span containing its start so
        the trace nests cycle > phase > transfer.
        """
        results = []
        for source, target in _ROTATION:
            members = self._signal_groups[source]
            if not members:
                continue
            series = segment.total(members)
            peak_index = int(np.argmax(series))
            peak = float(series[peak_index])
            if peak < self.quantization:
                continue
            tail = series[peak_index:]
            below = np.nonzero(tail < 0.1 * peak)[0]
            if below.size == 0:
                continue
            end = peak_index + int(below[0])
            draining = np.nonzero(tail[:end - peak_index + 1]
                                  < 0.95 * peak)[0]
            start = peak_index + int(draining[0]) if draining.size else end
            t0 = float(segment.times[start])
            t1 = float(segment.times[end])
            for color, p0, p1 in phases:
                if p0 <= t0 <= p1:
                    t1 = min(max(t1, t0), p1)
                    break
            if t1 <= t0:
                continue
            results.append((f"transfer:{source}->{target}", t0, t1,
                            {"cycle": span.index, "quantity": peak}))
        return results

    def _run_cycle(self, state: np.ndarray, t_start: float, record: bool,
                   samples_per_cycle: int) -> Trajectory:
        signal_mass = self._signal_mass(state)
        # Each segment's sample grid spans max_cycle_time (the event cuts
        # it short), so hitting ``samples_per_cycle`` points *inside* the
        # actual cycle needs the grid spacing planned from a period
        # estimate -- the previous cycle's duration.  Telemetry and the
        # monitors need that density for the phase and drain statistics;
        # without them only the final state matters.
        if record or self._telemetry:
            period = self._last_period or 10.0 / self.scheme.slow
            spacing = period / max(samples_per_cycle, 8)
            n_samples = min(int(self.max_cycle_time / spacing) + 2, 50_000)
        else:
            n_samples = 8
        estimates = self._segment_estimates
        departure = self.simulator.simulate(
            t_start + self.max_cycle_time, t_start=t_start, initial=state,
            n_samples=n_samples, events=[self._departure_event()],
            event_hint=estimates.get("departure"))
        if "event" not in departure.meta:
            raise SimulationError(
                f"clock did not leave the boundary within "
                f"{self.max_cycle_time:g} time units after t={t_start:g}: "
                f"the oscillator appears stalled")
        # The LSODA fast path supports exactly one terminal directional
        # event per segment, so the adaptive settle event *replaces* the
        # fixed boundary event rather than racing it.  Separate hint keys
        # keep the warm-start estimates honest if a caller alternates.
        if self.options.adaptive:
            closing = self._settle_event(signal_mass)
            estimate_key = "settle"
        else:
            closing = self._boundary_event(signal_mass)
            estimate_key = "boundary"
        boundary = self.simulator.simulate(
            departure.t_final + self.max_cycle_time,
            t_start=departure.t_final, initial=departure.final(),
            n_samples=n_samples,
            events=[closing],
            event_hint=estimates.get(estimate_key))
        if "event" not in boundary.meta:
            raise SimulationError(
                f"no cycle boundary within {self.max_cycle_time:g} time "
                f"units after t={departure.t_final:g}: machine appears "
                f"stalled (check rate separation and blue_tolerance)")
        estimates["departure"] = departure.t_final - t_start
        estimates[estimate_key] = boundary.t_final - departure.t_final
        return departure.concat(boundary)

    def _quantize(self, state: np.ndarray) -> np.ndarray:
        """Round sub-threshold residues to zero (boundary discreteness).

        Applied once per cycle boundary, after outputs are sampled, so the
        flushed amount (at most ``quantization`` per species) shows up as
        bounded readout noise rather than silent drift.  The clock is then
        topped back up to its nominal mass: scavenging and quantisation
        erode the pacemaker by a few hundredths of a unit per cycle, and
        without replenishment (chemically, a reservoir species feeding the
        clock) the oscillator amplitude would drift below any fixed
        boundary threshold after enough cycles.
        """
        if self.quantization <= 0:
            return state
        state = state.copy()
        state[state < self.quantization] = 0.0
        deficit = self.circuit.clock.mass - self._clock_total(state)
        if deficit > 0:
            state[self._clock_red_index] += deficit
        return state

    def _boundary_faults(self, cycle: int, state: np.ndarray) -> np.ndarray:
        """Apply runtime fault hooks (clock glitches...) at a boundary.

        Runs *after* quantisation, so an injected perturbation survives
        until the chemistry (or the next boundary's replenishment)
        responds to it.
        """
        if self.faults is not None and self.faults.active:
            state = np.maximum(
                self.faults.on_boundary(cycle, state, self.network), 0.0)
        return state

    def _clock_total(self, state: np.ndarray) -> float:
        total = 0.0
        for index in self._clock_indices:
            total += float(state[index])
        if self._clock_red_dimer_index is not None:
            total += 2.0 * float(state[self._clock_red_dimer_index])
        return total

    # -- state accessors -----------------------------------------------------------------

    def _check_streams(self, inputs: Mapping[str, Sequence[float]]
                       ) -> dict[str, Sequence[float]]:
        expected = set(self.design.inputs)
        provided = set(inputs)
        if provided != expected:
            raise SynthesisError(
                f"input streams {sorted(provided)} do not match design "
                f"inputs {sorted(expected)}")
        lengths = {len(v) for v in inputs.values()}
        if len(lengths) > 1:
            raise SynthesisError("input streams must have equal length")
        return dict(inputs)

    def _inject(self, state: np.ndarray,
                samples: Mapping[str, float]) -> np.ndarray:
        state = state.copy()
        for name, value in samples.items():
            value = float(value)
            rail = "p" if value >= 0 else "n"
            if rail == "n" and not self.circuit.signed:
                raise SynthesisError(
                    f"negative input sample for unsigned design: "
                    f"{name}={value}")
            index = self.network.species_index(
                self.circuit.source_species[name][rail])
            state[index] += abs(value)
        return state

    def _getter(self, state: np.ndarray):
        network = self.network

        def get(name: str) -> float:
            return float(state[network.species_index(name)])

        return get

    def _readout(self, state: np.ndarray, output: str) -> float:
        return self.circuit.readout_value(self._getter(state), output)

    def _register_values(self, state: np.ndarray) -> dict[str, float]:
        getter = self._getter(state)
        return {name: self.circuit.state_value(getter, name)
                for name in self.design.delays}

    def _signal_mass(self, state: np.ndarray) -> float:
        total = 0.0
        for species in self.network.species:
            if species.role == "signal" and species.color is not None:
                total += float(state[self.network.species_index(species)])
        return total


class MachineStepper:
    """Cycle-at-a-time driver (see :meth:`SynchronousMachine.stepper`).

    Because an output computed in cycle n is read out during cycle n+1,
    :meth:`step` returns the *previous* cycle's outputs; call
    :meth:`flush` once after the last input to collect the final sample.
    """

    def __init__(self, machine: SynchronousMachine):
        self.machine = machine
        self.state = machine.network.initial_vector()
        self.time = 0.0
        self.spans: list[CycleSpan] = []
        self.monitor = machine.make_monitor()
        self._previous = {name: machine._readout(self.state, name)
                          for name in machine.design.outputs}

    @property
    def cycles(self) -> int:
        return len(self.spans)

    def diagnostics(self) -> list[RuntimeDiagnostic]:
        """Protocol-health diagnostics accumulated so far (finalises the
        monitor, including the run-level jitter check, plus any
        waveform-assertion violations)."""
        found = self.monitor.finish() if self.monitor else []
        if self.machine.probe.enabled:
            found = found + self.machine.probe.diagnostics()
        return found

    def step(self, inputs: Mapping[str, float]) -> dict[str, float]:
        """Inject one sample per input, advance one cycle, and return
        the output increments observed during that cycle."""
        expected = set(self.machine.design.inputs)
        if set(inputs) != expected:
            raise SynthesisError(
                f"step inputs {sorted(inputs)} do not match design "
                f"inputs {sorted(expected)}")
        self.state = self.machine._inject(self.state, inputs)
        return self._advance()

    def flush(self) -> dict[str, float]:
        """Advance one cycle with zero input (drains the pipeline)."""
        return self._advance()

    def registers(self) -> dict[str, float]:
        """Current delay-register values."""
        return self.machine._register_values(self.state)

    def _advance(self) -> dict[str, float]:
        self.state, span, _ = self.machine._advance_cycle(
            self.state, self.time, len(self.spans), record=False,
            samples_per_cycle=60, monitor=self.monitor)
        self.time = span.t1
        self.spans.append(span)
        outputs = {}
        for name in self.machine.design.outputs:
            total = self.machine._readout(self.state, name)
            outputs[name] = total - self._previous[name]
            self._previous[name] = total
        self.state = self.machine._quantize(self.state)
        self.state = self.machine._boundary_faults(len(self.spans) - 1,
                                                   self.state)
        return outputs
