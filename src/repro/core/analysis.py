"""Measurement helpers for phase-protocol trajectories.

Signal accounting
-----------------
The positive-feedback accelerator reversibly parks part of a signal in its
dimer intermediate: at equilibrium roughly ``(k_slow/k_fast) * value**2``
units sit in ``I_S`` (each worth two units of ``S``).  The *effective value*
of a signal is therefore ``[S] + 2 [I_S]``; mass accounting over a transfer
chain is exact in this measure (one of the property tests asserts it).
"""

from __future__ import annotations

import numpy as np

from repro.crn.network import Network
from repro.crn.simulation.result import Trajectory
from repro.crn.species import COLORS
from repro.errors import SimulationError


def effective_series(trajectory: Trajectory, name: str) -> np.ndarray:
    """Time series of a signal including its dimer-bound share."""
    series = trajectory.column(name).copy()
    dimer = f"I_{name}"
    if dimer in trajectory:
        series = series + 2.0 * trajectory.column(dimer)
    return series


def effective_value(trajectory: Trajectory, name: str,
                    t: float | None = None) -> float:
    """Effective signal value at time ``t`` (default: final)."""
    series = effective_series(trajectory, name)
    if t is None:
        return float(series[-1])
    return float(np.interp(t, trajectory.times, series))


def effective_state_value(network: Network, state: np.ndarray,
                          name: str) -> float:
    """Effective value from a raw state vector."""
    value = float(state[network.species_index(name)])
    dimer = f"I_{name}"
    if dimer in network:
        value += 2.0 * float(state[network.species_index(dimer)])
    return value


def color_totals(network: Network, trajectory: Trajectory,
                 roles: tuple[str, ...] = ("signal", "clock")
                 ) -> dict[str, np.ndarray]:
    """Summed quantity per colour category over time."""
    totals = {}
    for color in COLORS:
        names = [s.name for s in network.species_with_color(color)
                 if s.role in roles]
        totals[color] = trajectory.total(names) if names else \
            np.zeros_like(trajectory.times)
    return totals


def transfer_fidelity(trajectory: Trajectory, source: str,
                      target: str) -> float:
    """Ratio of final effective target value to initial source value."""
    initial = float(trajectory.column(source)[0])
    if initial <= 0:
        raise SimulationError(f"source {source!r} starts empty")
    return effective_value(trajectory, target) / initial


def settling_time(trajectory: Trajectory, name: str,
                  tolerance: float = 0.01) -> float:
    """First time after which the effective signal stays within
    ``tolerance`` (relative) of its final value."""
    series = effective_series(trajectory, name)
    final = series[-1]
    scale = max(abs(final), 1e-12)
    outside = np.abs(series - final) > tolerance * scale
    if not outside.any():
        return float(trajectory.times[0])
    last_outside = np.nonzero(outside)[0][-1]
    if last_outside + 1 >= len(series):
        raise SimulationError(f"{name!r} has not settled")
    return float(trajectory.times[last_outside + 1])


def rise_time(trajectory: Trajectory, name: str, low: float = 0.1,
              high: float = 0.9) -> float:
    """10-90% rise time of a signal's effective series (crispness metric)."""
    series = effective_series(trajectory, name)
    final = series[-1]
    if final <= 0:
        raise SimulationError(f"{name!r} does not rise")
    t_low = _first_crossing(trajectory.times, series, low * final)
    t_high = _first_crossing(trajectory.times, series, high * final)
    return t_high - t_low


def _first_crossing(times: np.ndarray, series: np.ndarray,
                    level: float) -> float:
    above = series >= level
    if not above.any():
        raise SimulationError("series never crosses level")
    i = int(np.argmax(above))
    if i == 0:
        return float(times[0])
    t0, t1 = times[i - 1], times[i]
    y0, y1 = series[i - 1], series[i]
    if y1 == y0:
        return float(t1)
    return float(t0 + (level - y0) * (t1 - t0) / (y1 - y0))


def indicator_exclusivity(network: Network, trajectory: Trajectory,
                          protocol) -> float:
    """Mutual-exclusion metric for absence indicators.

    Returns the maximum over time of the *second largest* indicator
    quantity.  In a correctly phased system at most one indicator is ever
    substantially present, so this should stay near the indicator noise
    floor (~ k_slow / k_fast level relative to signal mass).
    """
    columns = np.stack(
        [trajectory.column(protocol.indicator_name(c)) for c in COLORS],
        axis=1)
    sorted_columns = np.sort(columns, axis=1)
    return float(sorted_columns[:, -2].max())


def conservation_drift(network: Network, trajectory: Trajectory) -> float:
    """Worst relative drift of any conservation law along the trajectory.

    Numerical-integrity check: mass-action ODEs preserve left null-space
    functionals exactly; solver error shows up here.
    """
    laws = network.conservation_laws()
    if laws.size == 0:
        return 0.0
    values = trajectory.states @ laws.T
    reference = values[0]
    scale = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(values - reference[None, :]) / scale[None, :]))
