"""Small-gain composition rules for certificates.

The algebra follows the ISS composition line: a cascade's ISS gain is
the product of the stage gains, and its disturbance amplification is
the first stage's disturbance pushed through the second stage's gain
plus the second stage's own disturbance:

.. math::

   g_{a \\to b} = g_a \\, g_b, \\qquad
   d_{a \\to b} = d_a \\, g_b + d_b.

Parallel sums add both.  Rate margins compose by worst case: the
slower settling rate and the smaller separation win.

These rules are deliberately *looser* than re-deriving the composite
design from scratch (the algebraic bound ignores cancellation across
the seam), so :func:`certify_composition` uses the direct derivation
when the composite design is at hand and the algebraic rule only as a
cross-check and fallback; both must stay inside the digital noise
margin or the composition is rejected with REPRO-C802.
"""

from __future__ import annotations

from fractions import Fraction

from repro.crn.rates import RateScheme
from repro.errors import CertifyError
from repro.certify.certificate import Certificate, CertifyConfig


def cascade_certificates(first: Certificate, second: Certificate,
                         module: str | None = None) -> Certificate:
    """Certificate of ``second(first(u))`` by the small-gain rule."""
    name = module or f"{first.module}->{second.module}"
    return Certificate(
        module=name,
        kind="cascade",
        gain=first.gain * second.gain,
        state_gain=max(first.state_gain,
                       first.gain * second.state_gain),
        contraction=max(first.contraction, second.contraction),
        horizon=max(first.horizon, second.horizon),
        transient=max(first.transient, second.transient),
        disturbance_gain=(first.disturbance_gain * second.gain
                          + second.disturbance_gain),
        settling_rate=min(first.settling_rate, second.settling_rate),
        separation=min(first.separation, second.separation),
    )


def parallel_certificates(first: Certificate, second: Certificate,
                          module: str | None = None) -> Certificate:
    """Certificate of the summing junction ``first(u) + second(v)``."""
    name = module or f"{first.module}+{second.module}"
    return Certificate(
        module=name,
        kind="parallel",
        gain=first.gain + second.gain,
        state_gain=first.state_gain + second.state_gain,
        contraction=max(first.contraction, second.contraction),
        horizon=max(first.horizon, second.horizon),
        transient=max(first.transient, second.transient),
        disturbance_gain=(first.disturbance_gain
                          + second.disturbance_gain),
        settling_rate=min(first.settling_rate, second.settling_rate),
        separation=min(first.separation, second.separation),
    )


_RULES = {
    "cascade": cascade_certificates,
    "parallel": parallel_certificates,
}


def compose_certificates(kind: str, first: Certificate,
                         second: Certificate,
                         module: str | None = None) -> Certificate:
    try:
        rule = _RULES[kind]
    except KeyError:
        raise CertifyError(
            f"unknown composition kind {kind!r}; "
            f"expected one of {sorted(_RULES)}") from None
    return rule(first, second, module)


def certify_composition(first: object, second: object,
                        composite: object | None, kind: str,
                        scheme: RateScheme | None = None,
                        config: CertifyConfig | None = None) -> Certificate:
    """Certify a composition; reject small-gain violations.

    Derives stage certificates and the composite's (directly, when the
    composed design is available -- tighter than the algebraic rule),
    then checks the certified error bound at the operating separation
    against the digital noise margin.  Raises
    :class:`~repro.errors.CertifyError` with REPRO-C802 phrasing when
    the bound escapes the margin, and propagates REPRO-C801 when any
    stage is uncertifiable.
    """
    from repro.certify.derive import certificate_for

    scheme = scheme if scheme is not None else RateScheme()
    config = config if config is not None else CertifyConfig()
    cert_a = certificate_for(first, scheme, config)
    cert_b = certificate_for(second, scheme, config)
    algebraic = compose_certificates(kind, cert_a, cert_b)
    if composite is not None:
        direct = certificate_for(composite, scheme, config)
        certificate = direct.renamed(direct.module)
    else:
        certificate = algebraic
    if not certificate.certified_at(certificate.separation, config):
        bound = certificate.error_bound(certificate.separation, config)
        raise CertifyError(
            f"composition {certificate.module!r} violates the "
            f"small-gain condition: certified error bound "
            f"{bound:.4g} exceeds the noise margin "
            f"{config.noise_margin:g} at separation "
            f"{certificate.separation:g} (needs >= "
            f"{certificate.min_separation(config):.4g}) (REPRO-C802)")
    return certificate


def cascade_gain(gains: list[Fraction]) -> Fraction:
    """End-to-end ISS gain of a chain of stages."""
    total = Fraction(1)
    for gain in gains:
        total *= gain
    return total
